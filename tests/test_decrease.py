"""Unit tests for Algorithm 2 (DecreaseESComputation).

The central correctness property is Theorem 6: per sampled graph, the
dominator-subtree size of ``u`` equals ``sigma->u``; averaged over
samples it estimates the expected-spread decrease of blocking ``u``
(Theorem 4).  We verify both the per-sample identity and the
convergence to exact values.
"""

import random

import numpy as np
import pytest

from repro.core import decrease_es_computation
from repro.datasets import figure1_graph, figure1_seed, V
from repro.dominator import dominator_tree_arrays, subtree_sizes
from repro.graph import DiGraph
from repro.sampling import ICSampler, sigma_through_all
from repro.spread import exact_expected_spread

from .conftest import random_digraph


class TestTheorem6PerSample:
    """Subtree sizes == sigma->u on individual sampled graphs."""

    def test_random_sampled_graphs(self):
        rnd = random.Random(31)
        for trial in range(25):
            graph = random_digraph(
                12, 0.25, rnd, prob_choices=(0.4, 0.8, 1.0)
            )
            sampler = ICSampler(graph, rng=trial)
            succ = sampler.sample_adjacency()
            order, idom = dominator_tree_arrays(succ, 0)
            sizes = subtree_sizes(idom)
            from_tree = {
                order[i]: sizes[i] for i in range(1, len(order))
            }
            assert from_tree == sigma_through_all(succ, 0)


class TestConvergenceToExact:
    def test_toy_graph_deltas(self):
        """Example 2's per-vertex decreases, estimated by Algorithm 2."""
        result = decrease_es_computation(
            figure1_graph(), figure1_seed, theta=30000, rng=0
        )
        expected = {
            V(2): 1.0, V(3): 1.0, V(4): 1.0, V(5): 4.66, V(6): 1.0,
            V(7): 0.06, V(8): 0.66, V(9): 1.11,
        }
        for vertex, value in expected.items():
            assert result.delta[vertex] == pytest.approx(value, abs=0.05)
        assert result.spread == pytest.approx(7.66, abs=0.05)
        assert result.delta[figure1_seed] == 0.0

    def test_matches_exact_difference_on_random_graph(self):
        rnd = random.Random(32)
        graph = random_digraph(9, 0.25, rnd, prob_choices=(0.5, 1.0))
        base = exact_expected_spread(graph, [0])
        result = decrease_es_computation(graph, 0, theta=20000, rng=1)
        for u in range(1, 9):
            exact_delta = base - exact_expected_spread(
                graph, [0], blocked=[u]
            )
            assert result.delta[u] == pytest.approx(
                exact_delta, abs=0.12
            )


class TestInterface:
    def test_accepts_graph_or_sampler(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        from_graph = decrease_es_computation(graph, 0, theta=10, rng=0)
        sampler = ICSampler(graph, rng=0)
        from_sampler = decrease_es_computation(sampler, 0, theta=10)
        assert np.allclose(from_graph.delta, from_sampler.delta)

    def test_deterministic_graph_exact_in_one_sample(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        result = decrease_es_computation(graph, 0, theta=1, rng=0)
        assert result.delta[1] == 3.0
        assert result.delta[2] == 1.0
        assert result.spread == 4.0

    def test_blocked_argument_applies(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        result = decrease_es_computation(
            graph, 0, theta=5, rng=0, blocked=[1]
        )
        assert result.spread == 1.0
        assert result.delta[1] == 0.0
        assert result.delta[2] == 0.0

    def test_blocking_source_rejected(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError, match="source"):
            decrease_es_computation(graph, 0, theta=5, blocked=[0])

    def test_invalid_theta_and_source(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            decrease_es_computation(graph, 0, theta=0)
        with pytest.raises(IndexError):
            decrease_es_computation(graph, 5, theta=1)

    def test_best_vertex_and_exclusion(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        result = decrease_es_computation(graph, 0, theta=1, rng=0)
        assert result.best_vertex(exclude={0}) == 1
        assert result.best_vertex(exclude={0, 1}) in (2, 3)

    def test_best_vertex_all_excluded(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        result = decrease_es_computation(graph, 0, theta=1, rng=0)
        assert result.best_vertex(exclude={0, 1}) == -1

    def test_isolated_source(self):
        graph = DiGraph(3)
        result = decrease_es_computation(graph, 0, theta=5, rng=0)
        assert result.spread == 1.0
        assert np.all(result.delta == 0.0)


class TestWithTriggeringSampler:
    """Algorithm 2 over LT triggering draws (Section V-E plumbing)."""

    def test_lt_two_vertex_closed_form(self):
        from repro.models import LinearThresholdSampler

        graph = DiGraph.from_edges(2, [(0, 1, 0.3)])
        sampler = LinearThresholdSampler(graph, rng=0)
        result = decrease_es_computation(sampler, 0, theta=8000)
        # LT: vertex 1 keeps its single in-edge with probability 0.3
        assert result.spread == pytest.approx(1.3, abs=0.03)
        assert result.delta[1] == pytest.approx(0.3, abs=0.03)

    def test_lt_competition_between_in_edges(self):
        from repro.models import LinearThresholdSampler

        # vertex 2 has two in-edges of weight 0.5; vertex 1 is only
        # reachable via 0 -> 1 (weight 1.0)
        graph = DiGraph.from_edges(
            3, [(0, 1, 1.0), (0, 2, 0.5), (1, 2, 0.5)]
        )
        sampler = LinearThresholdSampler(graph, rng=1)
        result = decrease_es_computation(sampler, 0, theta=8000)
        # vertex 2 always keeps exactly one in-edge; both lead back to
        # the source's component, so it is always reachable
        assert result.spread == pytest.approx(3.0, abs=0.01)
        # blocking 1 severs 2 only when 2 picked the 1 -> 2 edge (p=.5)
        assert result.delta[1] == pytest.approx(1.5, abs=0.05)
