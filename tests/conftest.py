"""Shared fixtures and strategies for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets import figure1_graph, figure1_seed
from repro.graph import DiGraph


@pytest.fixture
def toy_graph() -> DiGraph:
    """The paper's Figure 1 graph (seed = vertex 0 = v1)."""
    return figure1_graph()


@pytest.fixture
def toy_seed() -> int:
    return figure1_seed


@pytest.fixture
def diamond_graph() -> DiGraph:
    """0 -> {1, 2} -> 3: the smallest graph with a non-trivial idom."""
    return DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


def random_digraph(
    n: int,
    edge_prob: float,
    rnd: random.Random,
    prob_choices: tuple[float, ...] = (1.0,),
) -> DiGraph:
    """Dense-ish random digraph helper used across test modules."""
    graph = DiGraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rnd.random() < edge_prob:
                graph.add_edge(u, v, rnd.choice(prob_choices))
    return graph


def random_adjacency(
    n: int, edge_prob: float, rnd: random.Random
) -> dict[int, list[int]]:
    """Random adjacency mapping for dominator-algorithm tests."""
    return {
        u: [v for v in range(n) if v != u and rnd.random() < edge_prob]
        for u in range(n)
    }
