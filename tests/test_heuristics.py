"""Unit tests for the simple blocker heuristics."""

import pytest

from repro.core import (
    betweenness_blockers,
    degree_blockers,
    out_degree_blockers,
    out_neighbors_blockers,
    pagerank_blockers,
    random_blockers,
)
from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph


def hub_graph() -> DiGraph:
    """Vertex 1 is a hub with out-degree 3; vertex 2 has out-degree 1."""
    return DiGraph.from_edges(
        6, [(0, 1), (1, 2), (1, 3), (1, 4), (2, 5)]
    )


class TestRandomBlockers:
    def test_never_picks_seeds(self):
        graph = hub_graph()
        for trial in range(10):
            blockers = random_blockers(graph, [0], 3, rng=trial)
            assert 0 not in blockers
            assert len(blockers) == 3
            assert len(set(blockers)) == 3

    def test_budget_larger_than_pool(self):
        graph = DiGraph(3)
        assert sorted(random_blockers(graph, [0], 10, rng=0)) == [1, 2]

    def test_deterministic_given_seed(self):
        graph = hub_graph()
        assert random_blockers(graph, [0], 2, rng=5) == random_blockers(
            graph, [0], 2, rng=5
        )


class TestDegreeHeuristics:
    def test_out_degree_ranks_hub_first(self):
        assert out_degree_blockers(hub_graph(), [0], 1) == [1]

    def test_out_degree_excludes_seed(self):
        # make the seed the highest-out-degree vertex
        graph = DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert out_degree_blockers(graph, [0], 1) == [1]

    def test_total_degree_ordering(self):
        blockers = degree_blockers(hub_graph(), [0], 2)
        assert blockers[0] == 1  # degree 4
        assert blockers[1] == 2  # degree 2

    def test_tie_breaks_by_id(self):
        graph = DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert out_degree_blockers(graph, [0], 2) == [1, 2]


class TestPageRank:
    def test_sink_of_hub_ranks_high(self):
        # classic: a vertex fed by everything should outrank the rest
        graph = DiGraph.from_edges(
            5, [(0, 4), (1, 4), (2, 4), (3, 4), (4, 0)]
        )
        blockers = pagerank_blockers(graph, [0], 1)
        assert blockers == [4]

    def test_empty_graph(self):
        assert pagerank_blockers(DiGraph(0), [], 3) == []

    def test_excludes_seeds(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 1)])
        blockers = pagerank_blockers(graph, [1], 2)
        assert 1 not in blockers


class TestOutNeighbors:
    def test_restricted_to_seed_out_neighbors(self):
        blockers = out_neighbors_blockers(
            figure1_graph(), [figure1_seed], 2, theta=500, rng=0
        )
        assert sorted(blockers) == [V(2), V(4)]

    def test_budget_one_picks_one_out_neighbor(self):
        blockers = out_neighbors_blockers(
            figure1_graph(), [figure1_seed], 1, theta=500, rng=1
        )
        assert blockers[0] in (V(2), V(4))

    def test_budget_exceeding_out_degree(self):
        blockers = out_neighbors_blockers(
            figure1_graph(), [figure1_seed], 10, theta=200, rng=2
        )
        assert sorted(blockers) == [V(2), V(4)]


class TestBetweenness:
    def test_bridge_vertex_found(self):
        # two cliques joined through vertex 4
        edges = []
        for u in (0, 1, 2, 3):
            for v in (0, 1, 2, 3):
                if u != v:
                    edges.append((u, v))
        for u in (5, 6, 7, 8):
            for v in (5, 6, 7, 8):
                if u != v:
                    edges.append((u, v))
        edges += [(3, 4), (4, 5), (5, 4), (4, 3)]
        graph = DiGraph.from_edges(9, edges)
        assert betweenness_blockers(graph, [0], 1) == [4]

    def test_pivot_sampling_still_finds_bridge(self):
        graph = DiGraph.from_edges(
            7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        blockers = betweenness_blockers(graph, [0], 1, pivots=4, rng=0)
        assert blockers[0] in (2, 3, 4)

    def test_excludes_seeds(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert 0 not in betweenness_blockers(graph, [0], 3)
