"""Unit tests for dataset stand-ins and subgraph extraction."""

import pytest

from repro.datasets import (
    DATASETS,
    dataset_keys,
    extract_neighborhood_subgraph,
    extract_subgraphs,
    figure1_graph,
    load_dataset,
    V,
)
from repro.graph import reachable_set


class TestRegistry:
    def test_eight_datasets(self):
        assert len(DATASETS) == 8
        assert dataset_keys()[0] == "email-core"
        assert dataset_keys()[-1] == "youtube"

    def test_paper_statistics_recorded(self):
        info = DATASETS["facebook"]
        assert info.paper_n == 4039
        assert info.paper_m == 88234
        assert not info.directed

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_short_codes(self):
        g1 = load_dataset("ec", scale=0.1)
        g2 = load_dataset("email-core", scale=0.1)
        assert g1.n == g2.n and g1.m == g2.m

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("dblp", scale=0.0)


class TestStandIns:
    @pytest.mark.parametrize("key", list(DATASETS))
    def test_loads_and_is_nontrivial(self, key):
        graph = load_dataset(key, scale=0.05)
        assert graph.n >= 50
        assert graph.m > graph.n / 2

    @pytest.mark.parametrize("key", ["facebook", "dblp", "youtube"])
    def test_undirected_standins_are_bidirectional(self, key):
        graph = load_dataset(key, scale=0.05)
        for u, v, _ in graph.edges():
            assert graph.has_edge(v, u)

    def test_deterministic_builds(self):
        a = load_dataset("wiki-vote", scale=0.1)
        b = load_dataset("wiki-vote", scale=0.1)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_density_ordering_roughly_preserved(self):
        # email-core is the densest stand-in, email-all the sparsest
        dense = load_dataset("email-core", scale=0.2)
        sparse = load_dataset("email-all", scale=0.2)
        assert dense.average_degree() > 4 * sparse.average_degree()


class TestToyGraph:
    def test_vertex_name_mapping(self):
        assert V(1) == 0
        assert V(9) == 8
        with pytest.raises(ValueError):
            V(0)

    def test_structure(self):
        graph = figure1_graph()
        assert graph.n == 9
        assert graph.m == 10
        assert graph.probability(V(5), V(8)) == 0.5
        assert graph.probability(V(9), V(8)) == 0.2
        assert graph.probability(V(8), V(7)) == 0.1

    def test_everything_reachable_from_seed(self):
        graph = figure1_graph()
        assert reachable_set(graph, [V(1)]) == set(range(9))


class TestSubgraphExtraction:
    def test_target_size_reached(self):
        graph = load_dataset("email-core", scale=0.5)
        sub, ids = extract_neighborhood_subgraph(graph, 100, rng=0)
        assert sub.n >= 100
        assert len(ids) == sub.n
        assert len(set(ids)) == sub.n

    def test_edges_preserved(self):
        graph = load_dataset("dblp", scale=0.1)
        sub, ids = extract_neighborhood_subgraph(graph, 50, rng=1)
        for u, v, p in sub.edges():
            assert graph.probability(ids[u], ids[v]) == p

    def test_multiple_subgraphs_independent(self):
        graph = load_dataset("email-core", scale=0.5)
        subs = extract_subgraphs(graph, count=3, target_size=60, rng=2)
        assert len(subs) == 3
        sizes = {sub.n for sub, _ in subs}
        assert all(size >= 60 for size in sizes)

    def test_small_graph_terminates(self):
        graph = load_dataset("email-core", scale=0.05)
        sub, _ = extract_neighborhood_subgraph(graph, 10**6, rng=3)
        assert sub.n == graph.n
