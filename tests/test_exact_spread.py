"""Unit tests for exact spread computation by world enumeration."""

import random

import numpy as np
import pytest

from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.spread import (
    exact_activation_probabilities,
    exact_expected_spread,
    exact_spread_dag,
    MonteCarloEngine,
    UncertainEdgeLimitError,
)

from .conftest import random_digraph


class TestToyGraphGroundTruth:
    """Example 1 of the paper provides exact values."""

    def test_expected_spread(self):
        assert exact_expected_spread(
            figure1_graph(), [figure1_seed]
        ) == pytest.approx(7.66)

    def test_activation_probabilities(self):
        probs = exact_activation_probabilities(
            figure1_graph(), [figure1_seed]
        )
        assert probs[V(1)] == 1.0
        assert probs[V(8)] == pytest.approx(0.6)
        assert probs[V(7)] == pytest.approx(0.06)
        for i in (2, 3, 4, 5, 6, 9):
            assert probs[V(i)] == 1.0

    def test_blocking_v5(self):
        assert exact_expected_spread(
            figure1_graph(), [figure1_seed], blocked=[V(5)]
        ) == pytest.approx(3.0)

    def test_blocking_out_neighbors(self):
        graph = figure1_graph()
        assert exact_expected_spread(
            graph, [figure1_seed], blocked=[V(2), V(4)]
        ) == pytest.approx(1.0)


class TestSemantics:
    def test_deterministic_graph_is_reachability(self):
        graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        assert exact_expected_spread(graph, [0]) == 3.0
        assert exact_expected_spread(graph, [0, 3]) == 5.0

    def test_probability_zero_edge_ignored(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        assert exact_expected_spread(graph, [0]) == 1.0

    def test_independent_parallel_paths(self):
        # P(2) = 1 - (1 - 0.5)(1 - 0.5) = 0.75
        graph = DiGraph.from_edges(
            4, [(0, 1, 1.0), (0, 3, 1.0), (1, 2, 0.5), (3, 2, 0.5)]
        )
        probs = exact_activation_probabilities(graph, [0])
        assert probs[2] == pytest.approx(0.75)

    def test_blocking_seed_rejected(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError, match="seed"):
            exact_expected_spread(graph, [0], blocked=[0])

    def test_uncertain_edge_limit(self):
        graph = DiGraph(10)
        for u in range(9):
            graph.add_edge(u, u + 1, 0.5)
        with pytest.raises(UncertainEdgeLimitError):
            exact_expected_spread(graph, [0], max_uncertain_edges=5)


class TestAgainstMonteCarlo:
    def test_random_graphs_agree_with_mcs(self):
        rnd = random.Random(11)
        for trial in range(5):
            graph = random_digraph(
                8, 0.2, rnd, prob_choices=(0.3, 0.6, 1.0)
            )
            exact = exact_expected_spread(graph, [0])
            mcs = MonteCarloEngine(graph, rng=trial).expected_spread(
                [0], rounds=20000
            )
            assert mcs == pytest.approx(exact, rel=0.05, abs=0.05)


class TestTreeClosedForm:
    def test_path_products(self):
        tree = DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)])
        assert exact_spread_dag(tree, 0) == pytest.approx(1 + 0.5 + 0.25)

    def test_matches_world_enumeration(self):
        tree = DiGraph.from_edges(
            5, [(0, 1, 0.5), (0, 2, 0.3), (1, 3, 0.9), (1, 4, 0.2)]
        )
        assert exact_spread_dag(tree, 0) == pytest.approx(
            exact_expected_spread(tree, [0])
        )

    def test_blocking_removes_subtree(self):
        tree = DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 1.0)])
        assert exact_spread_dag(tree, 0, blocked=[1]) == 1.0

    def test_non_tree_rejected(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        with pytest.raises(ValueError, match="out-tree"):
            exact_spread_dag(graph, 0)
