"""Tests for declarative SLOs and burn-rate evaluation (``repro.obs.slo``).

Covers the spec grammar, the windowed snapshot differencing (driven
by an injected clock so no test sleeps), the bucket-interpolated
latency objective, the error-rate objective, and the exported
``repro_slo_*`` gauge families.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_WINDOW_SECONDS,
    MetricsRegistry,
    parse_slo,
    SLO,
    SLOTracker,
)


class TestParse:
    def test_latency_ms(self):
        slo = parse_slo("p99=250ms")
        assert slo.kind == "latency"
        assert slo.quantile == 0.99
        assert slo.threshold_s == 0.25
        assert slo.objective == pytest.approx(0.01)
        assert slo.window_s == DEFAULT_WINDOW_SECONDS

    def test_latency_seconds_with_window(self):
        slo = parse_slo("p95=1s@2m")
        assert slo.threshold_s == 1.0
        assert slo.window_s == 120.0
        assert slo.objective == pytest.approx(0.05)

    def test_error_rate_percent(self):
        slo = parse_slo("error_rate=1%")
        assert slo.kind == "error_rate"
        assert slo.objective == pytest.approx(0.01)

    def test_error_rate_fraction_and_hour_window(self):
        slo = parse_slo("error_rate=0.005@1h")
        assert slo.objective == pytest.approx(0.005)
        assert slo.window_s == 3600.0

    def test_fractional_quantile(self):
        assert parse_slo("p99.9=1s").quantile == pytest.approx(0.999)

    def test_whitespace_tolerated(self):
        assert parse_slo(" p99 = 250ms @ 5m ").threshold_s == 0.25

    @pytest.mark.parametrize(
        "bad",
        [
            "p99",
            "p99=250",  # latency without a unit
            "p0=1s",
            "p100=1s",
            "error_rate=0%",
            "error_rate=150%",
            "error_rate=250ms",  # duration on an error-rate SLO
            "latency=250ms",
            "p99=250ms@0s",
            "p99=-3ms",
            "",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="SLO|empty|budget|quantile"):
            parse_slo(bad)

    def test_name_is_label_safe(self):
        assert parse_slo("p99=250ms").name == "p99_250ms"
        assert parse_slo("error_rate=1%").name == "error_rate_1pct"
        assert parse_slo("p99.9=1s@5m").name == "p99p9_1s_5m"

    def test_as_dict_round_trips_the_essentials(self):
        info = parse_slo("p99=250ms").as_dict()
        assert info["threshold_ms"] == 250.0
        assert info["kind"] == "latency"
        assert info["window_seconds"] == DEFAULT_WINDOW_SECONDS


class _Clock:
    def __init__(self) -> None:
        self.t = 1000.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture()
def registry():
    return MetricsRegistry()


def _request_families(registry):
    latency = registry.histogram(
        "repro_request_duration_seconds", "lat", labels=("op",)
    )
    requests = registry.counter(
        "repro_requests_total", "req", labels=("op",)
    )
    errors = registry.counter("repro_request_errors_total", "err")
    return latency, requests, errors


class TestTracker:
    def test_needs_slos_and_rejects_duplicates(self, registry):
        with pytest.raises(ValueError, match="at least one"):
            SLOTracker([], registry=registry)
        slo = parse_slo("p99=250ms")
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([slo, slo], registry=registry)

    def test_latency_burn_rate_since_start(self, registry):
        clock = _Clock()
        latency, _, _ = _request_families(registry)
        tracker = SLOTracker(
            [parse_slo("p99=250ms")], registry=registry, now=clock
        )
        # 98 fast, 2 slow: bad fraction 2% against a 1% budget
        for _ in range(98):
            latency.labels("spread").observe(0.01)
        for _ in range(2):
            latency.labels("spread").observe(0.9)
        [result] = tracker.evaluate()
        assert result["requests"] == 100
        assert result["bad_requests"] == pytest.approx(2.0)
        assert result["bad_fraction"] == pytest.approx(0.02)
        assert result["burn_rate"] == pytest.approx(2.0, rel=1e-3)
        assert result["breached"] is True
        assert result["windowed"] is False  # no earlier snapshot yet

    def test_windowed_evaluation_forgets_old_badness(self, registry):
        clock = _Clock()
        latency, _, _ = _request_families(registry)
        tracker = SLOTracker(
            [parse_slo("p99=250ms@60s")], registry=registry, now=clock
        )
        for _ in range(10):
            latency.labels("spread").observe(0.9)  # a bad burst
        tracker.evaluate()
        clock.advance(30.0)
        # half a window later: only good requests since the snapshot
        for _ in range(200):
            latency.labels("spread").observe(0.01)
        [result] = tracker.evaluate()
        assert result["windowed"] is True
        assert result["requests"] == 200
        assert result["bad_requests"] == 0.0
        assert result["breached"] is False

    def test_latency_threshold_interpolates_between_bounds(
        self, registry
    ):
        clock = _Clock()
        latency, _, _ = _request_families(registry)
        # threshold 0.375s sits midway inside the (0.25, 0.5] bucket
        tracker = SLOTracker(
            [parse_slo("p50=375ms")], registry=registry, now=clock
        )
        for _ in range(100):
            latency.labels("spread").observe(0.3)  # lands in (0.25, 0.5]
        [result] = tracker.evaluate()
        # linear interpolation credits half the straddling bucket
        assert result["bad_requests"] == pytest.approx(50.0)

    def test_error_rate_slo(self, registry):
        clock = _Clock()
        _, requests, errors = _request_families(registry)
        tracker = SLOTracker(
            [parse_slo("error_rate=1%")], registry=registry, now=clock
        )
        requests.labels("spread").inc(400)
        errors.inc(2)
        [result] = tracker.evaluate()
        assert result["requests"] == 400
        assert result["bad_fraction"] == pytest.approx(0.005)
        assert result["burn_rate"] == pytest.approx(0.5)
        assert result["breached"] is False

    def test_no_traffic_is_zero_burn(self, registry):
        tracker = SLOTracker(
            [parse_slo("p99=250ms"), parse_slo("error_rate=1%")],
            registry=registry,
            now=_Clock(),
        )
        for result in tracker.evaluate():
            assert result["burn_rate"] == 0.0
            assert result["breached"] is False

    def test_evaluation_is_memoised_within_a_scrape(self, registry):
        clock = _Clock()
        latency, _, _ = _request_families(registry)
        tracker = SLOTracker(
            [parse_slo("p99=250ms")], registry=registry, now=clock
        )
        first = tracker.evaluate()
        latency.labels("spread").observe(0.9)
        assert tracker.evaluate() is first  # same scrape, cached
        clock.advance(1.0)
        assert tracker.evaluate() is not first

    def test_gauges_land_in_the_registry(self, registry):
        clock = _Clock()
        latency, _, _ = _request_families(registry)
        SLOTracker(
            [parse_slo("p99=250ms")], registry=registry, now=clock
        )
        for _ in range(10):
            latency.labels("spread").observe(0.9)
        text = registry.render()
        assert 'repro_slo_burn_rate{slo="p99_250ms"}' in text
        assert 'repro_slo_bad_fraction{slo="p99_250ms"}' in text
        assert 'repro_slo_breached{slo="p99_250ms"} 1' in text

    def test_snapshot_ring_stays_bounded(self, registry):
        clock = _Clock()
        tracker = SLOTracker(
            [parse_slo("p99=250ms@60s")], registry=registry, now=clock
        )
        for _ in range(500):
            clock.advance(1.0)
            tracker.evaluate()
        # one pre-horizon base + at most a window's worth of snapshots
        assert len(tracker._snapshots) <= 62

    def test_tracker_shares_server_families(self):
        """Construction order must not matter: the tracker
        get-or-creates the exact families the service registers."""
        from repro.service import BlockerService

        registry = MetricsRegistry()
        tracker = SLOTracker(
            [parse_slo("p99=250ms")], registry=registry
        )
        service = BlockerService(metrics=registry)
        try:
            service.handle({"op": "ping"})
        finally:
            service.close()
        [result] = tracker.evaluate()
        assert result["requests"] >= 1
