"""Unit tests for the unified solve_imin façade."""

import pytest

from repro.core.solve import ALGORITHMS, solve_imin
from repro.datasets import figure1_graph, figure1_seed, V
from repro.spread import exact_expected_spread


class TestDispatch:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_runs(self, algorithm):
        result = solve_imin(
            figure1_graph(),
            [figure1_seed],
            budget=2,
            algorithm=algorithm,
            theta=300,
            mcs_rounds=200,
            rng=0,
        )
        assert result.algorithm == algorithm
        assert 1 <= len(result.blockers) <= 2
        assert figure1_seed not in result.blockers

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            solve_imin(figure1_graph(), [figure1_seed], 1, "magic")

    def test_case_insensitive(self):
        result = solve_imin(
            figure1_graph(), [figure1_seed], 1,
            algorithm="Greedy-Replace", theta=500, rng=1,
        )
        assert result.algorithm == "greedy-replace"


class TestResultSemantics:
    def test_sampling_methods_estimate_spread(self):
        result = solve_imin(
            figure1_graph(), [figure1_seed], 1,
            algorithm="greedy-replace", theta=2000, rng=2,
        )
        assert result.estimated_spread == pytest.approx(3.0, abs=0.2)

    def test_ranking_heuristics_return_none_estimate(self):
        result = solve_imin(
            figure1_graph(), [figure1_seed], 2, algorithm="out-degree"
        )
        assert result.estimated_spread is None

    def test_exact_returns_optimum(self):
        result = solve_imin(
            figure1_graph(), [figure1_seed], 2, algorithm="exact"
        )
        assert sorted(result.blockers) == [V(2), V(4)]
        assert result.estimated_spread == pytest.approx(1.0)

    def test_quality_ordering_on_toy_graph(self):
        """greedy-replace must not lose to random on the toy graph."""
        graph = figure1_graph()

        def spread_of(algorithm):
            result = solve_imin(
                graph, [figure1_seed], 2,
                algorithm=algorithm, theta=1500, mcs_rounds=300, rng=3,
            )
            return exact_expected_spread(
                graph, [figure1_seed], blocked=result.blockers
            )

        assert spread_of("greedy-replace") <= spread_of("random")
