"""Unit tests for the CSR graph snapshot."""

import numpy as np
import pytest

from repro.graph import CSRGraph, DiGraph


@pytest.fixture
def graph() -> DiGraph:
    return DiGraph.from_edges(
        4, [(0, 1, 0.5), (0, 2, 0.25), (2, 3, 1.0), (3, 0, 0.1)]
    )


class TestLayout:
    def test_shapes(self, graph):
        csr = CSRGraph(graph)
        assert csr.n == 4
        assert csr.m == 4
        assert csr.indptr.shape == (5,)
        assert csr.indices.shape == (4,)
        assert csr.probs.shape == (4,)
        assert csr.src.shape == (4,)

    def test_edge_slices_match_adjacency(self, graph):
        csr = CSRGraph(graph)
        for u in graph.vertices():
            targets = sorted(
                csr.indices[csr.indptr[u]: csr.indptr[u + 1]].tolist()
            )
            assert targets == sorted(graph.out_neighbors(u))

    def test_src_expands_indptr(self, graph):
        csr = CSRGraph(graph)
        for j in range(csr.m):
            u = csr.src[j]
            assert csr.indptr[u] <= j < csr.indptr[u + 1]

    def test_probabilities_aligned(self, graph):
        csr = CSRGraph(graph)
        for j in range(csr.m):
            u, v = int(csr.src[j]), int(csr.indices[j])
            assert csr.probs[j] == graph.probability(u, v)

    def test_isolated_vertices_have_empty_slices(self):
        graph = DiGraph.from_edges(5, [(0, 4)])
        csr = CSRGraph(graph)
        for u in (1, 2, 3):
            assert csr.indptr[u] == csr.indptr[u + 1]

    def test_empty_graph(self):
        csr = CSRGraph(DiGraph(3))
        assert csr.m == 0
        assert csr.indptr.tolist() == [0, 0, 0, 0]


class TestAccessors:
    def test_out_edge_range(self, graph):
        csr = CSRGraph(graph)
        assert list(csr.out_edge_range(0)) == [0, 1]
        assert list(csr.out_edge_range(1)) == []

    def test_out_neighbors(self, graph):
        csr = CSRGraph(graph)
        assert sorted(csr.out_neighbors(0).tolist()) == [1, 2]

    def test_out_degrees(self, graph):
        csr = CSRGraph(graph)
        assert csr.out_degrees().tolist() == [2, 0, 1, 1]

    def test_list_mirrors_match_arrays(self, graph):
        csr = CSRGraph(graph)
        assert csr.indptr_list == csr.indptr.tolist()
        assert csr.indices_list == csr.indices.tolist()
        assert csr.probs_list == csr.probs.tolist()
        assert csr.src_list == csr.src.tolist()

    def test_list_mirrors_are_cached(self, graph):
        csr = CSRGraph(graph)
        assert csr.indptr_list is csr.indptr_list
