"""Unit tests for the random-graph generators."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    directed_scale_free,
    erdos_renyi,
    forest_fire,
    is_out_tree,
    powerlaw_cluster,
    random_dag,
    random_out_tree,
    reachable_set,
    watts_strogatz,
)


def _is_bidirectional(graph) -> bool:
    return all(graph.has_edge(v, u) for u, v, _ in graph.edges())


class TestErdosRenyi:
    def test_exact_edge_count_directed(self):
        graph = erdos_renyi(30, 100, rng=0)
        assert graph.n == 30
        assert graph.m == 100

    def test_undirected_doubles_directed_edges(self):
        graph = erdos_renyi(20, 40, rng=0, directed=False)
        assert graph.m == 80
        assert _is_bidirectional(graph)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(3, 100, rng=0)

    def test_deterministic_given_seed(self):
        a = erdos_renyi(15, 40, rng=7)
        b = erdos_renyi(15, 40, rng=7)
        assert sorted(a.edges()) == sorted(b.edges())


class TestBarabasiAlbert:
    def test_edge_count_and_symmetry(self):
        graph = barabasi_albert(100, 3, rng=1)
        assert graph.n == 100
        # clique core + 3 undirected edges per later vertex
        expected_und = 4 * 3 // 2 + (100 - 4) * 3
        assert graph.m == 2 * expected_und
        assert _is_bidirectional(graph)

    def test_heavy_tail(self):
        graph = barabasi_albert(500, 2, rng=2)
        degrees = sorted(graph.out_degree(v) for v in graph.vertices())
        # the max degree should far exceed the median in a BA graph
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)


class TestWattsStrogatz:
    def test_ring_degree_without_rewiring(self):
        graph = watts_strogatz(20, 4, 0.0, rng=0)
        assert graph.m == 2 * 20 * 2  # k/2 undirected edges per vertex
        assert _is_bidirectional(graph)

    def test_rewiring_preserves_edge_count(self):
        base = watts_strogatz(30, 4, 0.0, rng=1)
        rewired = watts_strogatz(30, 4, 0.5, rng=1)
        assert rewired.m == base.m

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)


class TestPowerlawCluster:
    def test_size_and_symmetry(self):
        graph = powerlaw_cluster(200, 3, 0.5, rng=3)
        assert graph.n == 200
        assert _is_bidirectional(graph)
        assert graph.m == 2 * (4 * 3 // 2 + (200 - 4) * 3)

    def test_invalid_triangle_probability(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(50, 2, 1.5)


class TestDirectedScaleFree:
    def test_reaches_edge_target(self):
        graph = directed_scale_free(200, 1500, rng=4)
        assert graph.m >= 1500
        assert graph.n == 200

    def test_no_self_loops(self):
        graph = directed_scale_free(100, 600, rng=5)
        assert all(u != v for u, v, _ in graph.edges())

    def test_skewed_in_degree(self):
        graph = directed_scale_free(400, 4000, rng=6)
        in_degrees = sorted(graph.in_degree(v) for v in graph.vertices())
        assert in_degrees[-1] >= 3 * max(1, in_degrees[len(in_degrees) // 2])


class TestForestFire:
    def test_connected_to_earlier_vertices(self):
        graph = forest_fire(150, 0.3, 0.2, rng=7)
        assert graph.n == 150
        # every non-initial vertex links to at least one ambassador
        for u in range(2, 150):
            assert graph.out_degree(u) >= 1

    def test_no_self_loops(self):
        graph = forest_fire(120, 0.35, 0.3, rng=8)
        assert all(u != v for u, v, _ in graph.edges())

    def test_invalid_forward_prob(self):
        with pytest.raises(ValueError):
            forest_fire(10, 1.0)


class TestRandomOutTree:
    def test_is_out_tree(self):
        tree = random_out_tree(60, rng=9)
        assert is_out_tree(tree, 0)

    def test_max_children_respected(self):
        tree = random_out_tree(100, rng=10, max_children=2)
        assert all(tree.out_degree(v) <= 2 for v in tree.vertices())


class TestRandomDag:
    def test_acyclic_by_construction(self):
        graph = random_dag(30, 0.3, rng=11)
        assert all(u < v for u, v, _ in graph.edges())

    def test_density_scales_with_probability(self):
        sparse = random_dag(40, 0.05, rng=12)
        dense = random_dag(40, 0.5, rng=12)
        assert dense.m > sparse.m
