"""Unit tests for propagation-probability assignment."""

import pytest

from repro.graph import DiGraph
from repro.models import (
    assign_constant,
    assign_trivalency,
    assign_uniform,
    assign_weighted_cascade,
    TRIVALENCY_VALUES,
)


def star_graph() -> DiGraph:
    return DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 3)])


class TestTrivalency:
    def test_values_from_the_trivalency_set(self):
        graph = assign_trivalency(star_graph(), rng=0)
        for _, _, p in graph.edges():
            assert p in TRIVALENCY_VALUES

    def test_all_three_values_appear_eventually(self):
        graph = DiGraph.from_edges(
            100, [(0, i) for i in range(1, 100)]
        )
        assign_trivalency(graph, rng=1)
        assert {p for _, _, p in graph.edges()} == set(TRIVALENCY_VALUES)

    def test_custom_values(self):
        graph = assign_trivalency(star_graph(), rng=2, values=(0.5,))
        assert all(p == 0.5 for _, _, p in graph.edges())

    def test_deterministic_given_seed(self):
        a = assign_trivalency(star_graph(), rng=3)
        b = assign_trivalency(star_graph(), rng=3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestWeightedCascade:
    def test_inverse_in_degree(self):
        graph = assign_weighted_cascade(star_graph())
        assert graph.probability(0, 1) == 1.0  # in-degree 1
        assert graph.probability(0, 3) == 0.5  # in-degree 2
        assert graph.probability(1, 3) == 0.5

    def test_in_probabilities_sum_to_one(self):
        graph = assign_weighted_cascade(star_graph())
        for v in graph.vertices():
            if graph.in_degree(v):
                total = sum(
                    graph.probability(u, v) for u in graph.in_neighbors(v)
                )
                assert total == pytest.approx(1.0)


class TestConstantAndUniform:
    def test_constant(self):
        graph = assign_constant(star_graph(), 0.2)
        assert all(p == 0.2 for _, _, p in graph.edges())

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            assign_constant(star_graph(), 1.2)

    def test_uniform_within_bounds(self):
        graph = assign_uniform(star_graph(), 0.2, 0.4, rng=4)
        for _, _, p in graph.edges():
            assert 0.2 <= p <= 0.4

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            assign_uniform(star_graph(), 0.5, 0.2)

    def test_returns_graph_for_chaining(self):
        graph = star_graph()
        assert assign_constant(graph, 0.1) is graph
