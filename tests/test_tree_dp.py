"""Unit tests for the optimal tree dynamic program."""

import pytest

from repro.core import exact_blockers, optimal_tree_blockers
from repro.graph import DiGraph, random_out_tree
from repro.models import assign_uniform
from repro.spread import exact_spread_dag


class TestSmallTrees:
    def test_path_blocks_first_vertex(self):
        tree = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        result = optimal_tree_blockers(tree, 0, 1)
        assert result.blockers == (1,)
        assert result.spread == 1.0
        assert result.removed_mass == pytest.approx(3.0)

    def test_star_picks_heaviest_children(self):
        tree = DiGraph.from_edges(
            4, [(0, 1, 1.0), (0, 2, 0.5), (0, 3, 0.25)]
        )
        result = optimal_tree_blockers(tree, 0, 2)
        assert result.blockers == (1, 2)
        assert result.spread == pytest.approx(1.25)

    def test_ancestor_subsumes_descendant(self):
        # blocking 1 already removes 2 and 3; budget 2 should use the
        # second blocker elsewhere
        tree = DiGraph.from_edges(
            5, [(0, 1), (1, 2), (1, 3), (0, 4, 0.5)]
        )
        result = optimal_tree_blockers(tree, 0, 2)
        assert set(result.blockers) == {1, 4}

    def test_budget_zero(self):
        tree = DiGraph.from_edges(2, [(0, 1, 0.5)])
        result = optimal_tree_blockers(tree, 0, 0)
        assert result.blockers == ()
        assert result.spread == pytest.approx(1.5)

    def test_budget_exceeding_tree(self):
        tree = DiGraph.from_edges(3, [(0, 1), (0, 2)])
        result = optimal_tree_blockers(tree, 0, 10)
        assert set(result.blockers) == {1, 2}
        assert result.spread == 1.0

    def test_probabilistic_path_weights(self):
        # blocking 1 removes 0.5 + 0.25; blocking 2 removes 0.25 only
        tree = DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)])
        result = optimal_tree_blockers(tree, 0, 1)
        assert result.blockers == (1,)
        assert result.removed_mass == pytest.approx(0.75)


class TestValidation:
    def test_non_tree_rejected(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        with pytest.raises(ValueError, match="out-tree"):
            optimal_tree_blockers(graph, 0, 1)

    def test_negative_budget_rejected(self):
        tree = DiGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            optimal_tree_blockers(tree, 0, -1)


class TestOptimality:
    """The DP must match exhaustive search on random trees."""

    @pytest.mark.parametrize("trial", range(6))
    def test_matches_exhaustive_search(self, trial):
        tree = random_out_tree(9, rng=trial, max_children=3)
        assign_uniform(tree, 0.3, 1.0, rng=trial + 100)
        for budget in (1, 2, 3):
            dp = optimal_tree_blockers(tree, 0, budget)
            brute = exact_blockers(tree, [0], budget)
            assert dp.spread == pytest.approx(brute.spread, abs=1e-9)

    def test_spread_consistent_with_closed_form(self):
        tree = random_out_tree(15, rng=42, max_children=4)
        assign_uniform(tree, 0.2, 0.9, rng=43)
        result = optimal_tree_blockers(tree, 0, 3)
        assert result.spread == pytest.approx(
            exact_spread_dag(tree, 0, blocked=result.blockers)
        )
        total = exact_spread_dag(tree, 0)
        assert result.spread == pytest.approx(
            total - result.removed_mass, abs=1e-9
        )
