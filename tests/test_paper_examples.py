"""Golden tests: every numeric claim of the paper's worked examples.

These pin the library to the paper:

* Example 1 — activation probabilities and E({v1}, G) = 7.66 on the
  Figure 1 graph; blocking v5 gives 3; blocking v2 or v4 gives 6.66.
* Example 2 — per-vertex expected-spread decreases via dominator trees
  (v5: 4.66, v9: 1.11, v8: 0.66, v7: 0.06, others: 1).
* Example 3 / Table III — Greedy, OutNeighbors and GreedyReplace
  outcomes for budgets 1 and 2.
* Theorem 2's proof — the supermodularity counterexample values.
"""

import pytest

from repro.core import (
    advanced_greedy,
    exact_blockers,
    greedy_replace,
    out_neighbors_blockers,
)
from repro.datasets import figure1_graph, figure1_seed, V
from repro.spread import (
    exact_activation_probabilities,
    exact_expected_spread,
)


@pytest.fixture(scope="module")
def graph():
    return figure1_graph()


SEED = figure1_seed


class TestExample1:
    def test_certain_activations(self, graph):
        probs = exact_activation_probabilities(graph, [SEED])
        for i in (1, 2, 3, 4, 5, 6, 9):
            assert probs[V(i)] == 1.0

    def test_v8_activation_probability(self, graph):
        probs = exact_activation_probabilities(graph, [SEED])
        assert probs[V(8)] == pytest.approx(0.6)

    def test_v7_activation_probability(self, graph):
        probs = exact_activation_probabilities(graph, [SEED])
        assert probs[V(7)] == pytest.approx(0.06)

    def test_expected_spread_766(self, graph):
        assert exact_expected_spread(graph, [SEED]) == pytest.approx(7.66)

    def test_blocking_v5_gives_3(self, graph):
        assert exact_expected_spread(
            graph, [SEED], blocked=[V(5)]
        ) == pytest.approx(3.0)

    def test_blocking_v2_or_v4_gives_666(self, graph):
        for i in (2, 4):
            assert exact_expected_spread(
                graph, [SEED], blocked=[V(i)]
            ) == pytest.approx(6.66)

    def test_v5_is_optimal_single_blocker(self, graph):
        result = exact_blockers(graph, [SEED], 1)
        assert result.blockers == (V(5),)


class TestExample2:
    """Exact spread decreases (the dominator-tree estimator's target)."""

    EXPECTED = {
        2: 1.0, 3: 1.0, 4: 1.0, 5: 4.66, 6: 1.0, 7: 0.06, 8: 0.66, 9: 1.11,
    }

    def test_exact_decreases(self, graph):
        base = exact_expected_spread(graph, [SEED])
        for i, expected in self.EXPECTED.items():
            decrease = base - exact_expected_spread(
                graph, [SEED], blocked=[V(i)]
            )
            assert decrease == pytest.approx(expected), f"v{i}"


class TestTableIII:
    """Blockers and expected spreads of Greedy / OutNeighbors / GR."""

    def test_greedy_b1(self, graph):
        result = advanced_greedy(graph, [SEED], 1, theta=2000, rng=0)
        assert result.blockers == [V(5)]
        assert exact_expected_spread(
            graph, [SEED], blocked=result.blockers
        ) == pytest.approx(3.0)

    def test_greedy_b2(self, graph):
        result = advanced_greedy(graph, [SEED], 2, theta=2000, rng=1)
        spread = exact_expected_spread(
            graph, [SEED], blocked=result.blockers
        )
        assert spread == pytest.approx(2.0)

    def test_out_neighbors_b1(self, graph):
        blockers = out_neighbors_blockers(graph, [SEED], 1, theta=500, rng=2)
        assert exact_expected_spread(
            graph, [SEED], blocked=blockers
        ) == pytest.approx(6.66)

    def test_out_neighbors_b2(self, graph):
        blockers = out_neighbors_blockers(graph, [SEED], 2, theta=500, rng=3)
        assert exact_expected_spread(
            graph, [SEED], blocked=blockers
        ) == pytest.approx(1.0)

    def test_greedy_replace_b1(self, graph):
        result = greedy_replace(graph, [SEED], 1, theta=2000, rng=4)
        assert result.blockers == [V(5)]

    def test_greedy_replace_b2(self, graph):
        result = greedy_replace(graph, [SEED], 2, theta=2000, rng=5)
        assert sorted(result.blockers) == [V(2), V(4)]
        assert exact_expected_spread(
            graph, [SEED], blocked=result.blockers
        ) == pytest.approx(1.0)

    def test_gr_beats_greedy_at_b2(self, graph):
        """The motivating observation: GR(2) < Greedy(2)."""
        gr = greedy_replace(graph, [SEED], 2, theta=2000, rng=6)
        ag = advanced_greedy(graph, [SEED], 2, theta=2000, rng=7)
        gr_spread = exact_expected_spread(graph, [SEED], blocked=gr.blockers)
        ag_spread = exact_expected_spread(graph, [SEED], blocked=ag.blockers)
        assert gr_spread < ag_spread


class TestTheorem2Counterexample:
    def test_marginals(self, graph):
        def f(blockers):
            return exact_expected_spread(graph, [SEED], blocked=blockers)

        x_set = [V(3)]
        y_set = [V(2), V(3)]
        x = V(4)
        assert f(x_set) == pytest.approx(6.66)
        assert f(y_set) == pytest.approx(5.66)
        assert f(x_set + [x]) == pytest.approx(5.66)
        assert f(y_set + [x]) == pytest.approx(1.0)
