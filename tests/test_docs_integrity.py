"""Docs-integrity checks: the documentation references real artifacts.

Keeps README/DESIGN/EXPERIMENTS honest as the code evolves: every
module path mentioned must exist, every bench target must be a file,
and the public API snippets must import.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def design_text() -> str:
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def readme_text() -> str:
    return (ROOT / "README.md").read_text(encoding="utf-8")


class TestFilesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/architecture.md",
            "docs/algorithms.md",
            "examples/quickstart.py",
        ],
    )
    def test_required_documents_present(self, name):
        assert (ROOT / name).is_file()

    def test_at_least_three_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3


class TestDesignReferences:
    def test_module_paths_exist(self, design_text):
        for match in re.finditer(r"`repro/([\w/]+\.py)`", design_text):
            path = ROOT / "src" / "repro" / match.group(1)
            assert path.is_file(), f"DESIGN.md references missing {path}"

    def test_bench_targets_exist(self, design_text):
        for match in re.finditer(
            r"`benchmarks/(bench_\w+\.py)`", design_text
        ):
            path = ROOT / "benchmarks" / match.group(1)
            assert path.is_file(), f"DESIGN.md references missing {path}"

    def test_paper_match_is_confirmed(self, design_text):
        # the reproduction must state the paper-text check result
        assert "Paper-text check" in design_text


class TestReadmeReferences:
    def test_example_commands_reference_real_files(self, readme_text):
        for match in re.finditer(
            r"python (examples/\w+\.py)", readme_text
        ):
            assert (ROOT / match.group(1)).is_file()

    def test_quickstart_snippet_imports(self, readme_text):
        # every `from repro... import ...` line in the README must work
        for line in readme_text.splitlines():
            line = line.strip()
            if line.startswith("from repro"):
                exec(line, {})  # noqa: S102 - controlled input


class TestPackageSurface:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.graph",
            "repro.dominator",
            "repro.models",
            "repro.sampling",
            "repro.spread",
            "repro.engine",
            "repro.core",
            "repro.theory",
            "repro.datasets",
            "repro.bench",
            "repro.imax",
            "repro.service",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"
