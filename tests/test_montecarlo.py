"""Unit tests for the Monte-Carlo IC engine."""

import pytest

from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.spread import (
    expected_spread_mcs,
    MonteCarloEngine,
    simulate_cascade,
)


class TestDeterministicGraphs:
    def test_all_one_probabilities_reach_everything(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        engine = MonteCarloEngine(graph, rng=0)
        assert engine.simulate([0]) == 4
        assert engine.expected_spread([0], rounds=10) == 4.0

    def test_zero_probability_edges_never_fire(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.0), (1, 2, 1.0)])
        engine = MonteCarloEngine(graph, rng=0)
        assert engine.expected_spread([0], rounds=50) == 1.0

    def test_seeds_always_counted(self):
        graph = DiGraph(3)
        engine = MonteCarloEngine(graph, rng=0)
        assert engine.expected_spread([0, 2], rounds=5) == 2.0

    def test_duplicate_seeds_counted_once(self):
        graph = DiGraph(2)
        engine = MonteCarloEngine(graph, rng=0)
        assert engine.simulate([0, 0]) == 1


class TestBlocking:
    def test_blocked_vertex_never_activates(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        engine = MonteCarloEngine(graph, rng=0)
        assert engine.expected_spread([0], rounds=20, blocked=[1]) == 1.0

    def test_blocking_seed_rejected(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        engine = MonteCarloEngine(graph, rng=0)
        with pytest.raises(ValueError, match="seed"):
            engine.expected_spread([0], rounds=5, blocked=[0])

    def test_blocked_state_does_not_leak_between_calls(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        engine = MonteCarloEngine(graph, rng=0)
        assert engine.expected_spread([0], 5, blocked=[1]) == 1.0
        assert engine.expected_spread([0], 5) == 2.0


class TestStatisticalAccuracy:
    def test_matches_exact_on_toy_graph(self):
        graph = figure1_graph()
        engine = MonteCarloEngine(graph, rng=42)
        estimate = engine.expected_spread([figure1_seed], rounds=20000)
        assert estimate == pytest.approx(7.66, abs=0.1)

    def test_single_edge_probability(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.3)])
        estimate = expected_spread_mcs(graph, [0], rounds=20000, rng=7)
        assert estimate == pytest.approx(1.3, abs=0.03)

    def test_activation_frequencies_match_exact(self):
        graph = figure1_graph()
        engine = MonteCarloEngine(graph, rng=3)
        freq = engine.activation_frequencies([figure1_seed], rounds=20000)
        assert freq[V(8)] == pytest.approx(0.6, abs=0.03)
        assert freq[V(7)] == pytest.approx(0.06, abs=0.015)
        assert freq[V(1)] == 1.0
        assert freq[V(5)] == 1.0


class TestValidation:
    def test_non_positive_rounds_rejected(self):
        engine = MonteCarloEngine(DiGraph(1), rng=0)
        with pytest.raises(ValueError):
            engine.expected_spread([0], rounds=0)
        with pytest.raises(ValueError):
            engine.activation_frequencies([0], rounds=-1)

    def test_one_shot_helper(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        assert simulate_cascade(graph, [0], rng=0) == 2
