"""Native-kernel loader (repro.native): gating, caching, fallback."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import native
from repro.native import native_build_available, native_cache_dir


def test_cache_dir_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "kern"))
    assert native_cache_dir() == tmp_path / "kern"


def test_cache_dir_default_is_per_user():
    assert "repro-native" in native_cache_dir().name


def test_disabled_env_gate(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert native._disabled()
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert not native._disabled()


def test_disabled_process_falls_back():
    # a fresh interpreter with REPRO_NATIVE=0 must report the kernel
    # unavailable and still build trees through the Python path
    code = (
        "from repro.native import native_build_available, "
        "native_build_trees\n"
        "import numpy as np\n"
        "assert not native_build_available()\n"
        "assert native_build_trees(0, *([np.zeros(0, dtype=np.int64)] "
        "* 6), np.zeros(0, dtype=np.uint8)) is None\n"
        "print('fallback-ok')\n"
    )
    env = dict(os.environ, REPRO_NATIVE="0")
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert "fallback-ok" in result.stdout


def test_compiled_object_is_cached():
    if not native_build_available():
        pytest.skip("no compiler on this host")
    cached = list(native_cache_dir().glob("lt_kernel-*.so"))
    assert cached, "expected a cached shared object after loading"


def test_kernel_empty_batch():
    if not native_build_available():
        pytest.skip("no compiler on this host")
    empty = np.zeros(0, dtype=np.int64)
    lengths, orders, sizes = native.native_build_trees(
        3,
        np.zeros(4, dtype=np.int64),
        empty,
        empty,
        np.zeros(1, dtype=np.int64),
        empty,
        empty,
        np.zeros(3, dtype=np.uint8),
    )
    assert lengths.shape[0] == 0
    assert orders.shape[0] == 0 and sizes.shape[0] == 0
