"""Tests for the sampling wall-clock profiler (``repro.obs.profile``).

The profiler's contract: a daemon thread walking every *other*
thread's stack at ``hz``, aggregating collapsed-stack counts in
flamegraph.pl's exact format, restartable, self-metering, and cheap
(its cost budget is asserted end-to-end by
``bench_service_saturation.py``; here we pin the semantics).
"""

from __future__ import annotations

import re
import threading
import time

import pytest

from repro.obs import DEFAULT_HZ, MetricsRegistry, SamplingProfiler
from repro.obs.profile import _frame_label


def _spin_thread(stop: threading.Event) -> threading.Thread:
    def loop() -> None:
        while not stop.wait(0.001):
            sum(range(50))

    thread = threading.Thread(
        target=loop, name="busy-loop", daemon=True
    )
    thread.start()
    return thread


class TestLifecycle:
    def test_hz_validation(self):
        for bad in (0, -1, 1001, float("inf")):
            with pytest.raises(ValueError, match="hz"):
                SamplingProfiler(hz=bad, registry=MetricsRegistry())

    def test_default_hz_is_primeish(self):
        # never phase-locked with millisecond-periodic work
        assert DEFAULT_HZ == 67.0

    def test_start_stop_collects_samples(self):
        profiler = SamplingProfiler(hz=500, registry=MetricsRegistry())
        stop = threading.Event()
        thread = _spin_thread(stop)
        try:
            profiler.start()
            assert profiler.active
            time.sleep(0.15)
            stats = profiler.stop()
        finally:
            stop.set()
            thread.join(timeout=2)
        assert not profiler.active
        assert stats["samples"] > 0
        assert stats["ticks"] > 0
        assert stats["distinct_stacks"] > 0
        assert stats["duration_seconds"] > 0
        assert stats["hz"] == 500.0

    def test_start_is_idempotent_and_restartable(self):
        profiler = SamplingProfiler(hz=500, registry=MetricsRegistry())
        with profiler:
            profiler.start()  # no-op while running
            time.sleep(0.05)
        first = profiler.stats()["ticks"]
        assert first > 0
        with profiler:  # restart accumulates
            time.sleep(0.05)
        assert profiler.stats()["ticks"] > first

    def test_reset_drops_aggregate(self):
        profiler = SamplingProfiler(hz=500, registry=MetricsRegistry())
        with profiler:
            time.sleep(0.05)
        assert profiler.stats()["samples"] > 0
        profiler.reset()
        stats = profiler.stats()
        assert stats["samples"] == 0
        assert stats["ticks"] == 0
        assert stats["distinct_stacks"] == 0
        assert stats["duration_seconds"] == 0.0

    def test_stop_without_start(self):
        profiler = SamplingProfiler(registry=MetricsRegistry())
        stats = profiler.stop()  # tolerated, returns zeroed stats
        assert stats["samples"] == 0
        assert not stats["active"]


class TestCollapsedOutput:
    def test_collapsed_format(self):
        profiler = SamplingProfiler(hz=500, registry=MetricsRegistry())
        stop = threading.Event()
        thread = _spin_thread(stop)
        try:
            with profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            thread.join(timeout=2)
        text = profiler.collapsed()
        assert text
        for line in text.splitlines():
            # frame;frame;...;frame <count> — flamegraph.pl input
            assert re.fullmatch(r"\S+(;\S+)* \d+", line), line
        # the root element of each stack is the thread name
        roots = {line.split(";")[0] for line in text.splitlines()}
        assert "busy-loop" in roots

    def test_collapsed_is_hottest_first_and_limited(self):
        profiler = SamplingProfiler(hz=500, registry=MetricsRegistry())
        stop = threading.Event()
        thread = _spin_thread(stop)
        try:
            with profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            thread.join(timeout=2)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in profiler.collapsed().splitlines()
        ]
        assert counts == sorted(counts, reverse=True)
        limited = profiler.collapsed(limit=1)
        assert len(limited.splitlines()) == 1

    def test_sampler_never_profiles_itself(self):
        profiler = SamplingProfiler(hz=500, registry=MetricsRegistry())
        with profiler:
            time.sleep(0.1)
        roots = {
            line.split(";")[0]
            for line in profiler.collapsed().splitlines()
        }
        assert "repro-profiler" not in roots

    def test_frame_label_is_module_qualname(self):
        import sys

        frame = sys._getframe()
        label = _frame_label(frame)
        assert label.startswith("tests.test_profile")
        assert "test_frame_label_is_module_qualname" in label


class TestMetrics:
    def test_profiler_meters_itself(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=500, registry=registry)
        with profiler:
            time.sleep(0.1)
            assert (
                registry.gauge("repro_profile_active").value == 1.0
            )
        assert registry.gauge("repro_profile_active").value == 0.0
        assert (
            registry.counter("repro_profile_samples_total").value
            == profiler.stats()["samples"]
        )
        text = registry.render()
        assert "repro_profile_samples_total" in text
        assert "repro_profile_overruns_total" in text
