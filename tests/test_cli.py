"""Smoke tests for the command-line interface."""

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.datasets.toy import figure1_graph
from repro.engine import BACKENDS, make_evaluator


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_block_defaults(self):
        args = build_parser().parse_args(["block"])
        assert args.algorithm == "greedy-replace"
        assert args.budget == 10
        assert args.model == "tr"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["block", "--algorithm", "magic"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "email-core" in out
        assert "youtube" in out
        assert "4039" in out  # Facebook's paper n

    @pytest.mark.parametrize("algorithm", ["ag", "gr", "rand", "outdeg"])
    def test_block_small_run(self, capsys, algorithm):
        code = main(
            [
                "block",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--budget", "3",
                "--theta", "30",
                "--seeds", "2",
                "--algorithm", algorithm,
                "--rng", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blockers=" in out
        assert "expected spread" in out

    def test_block_bg(self, capsys):
        code = main(
            [
                "block",
                "--dataset", "email-core",
                "--scale", "0.05",
                "--budget", "1",
                "--mcs-rounds", "20",
                "--seeds", "2",
                "--algorithm", "bg",
                "--rng", "2",
            ]
        )
        assert code == 0
        assert "algorithm=bg" in capsys.readouterr().out

    def test_spread_estimation(self, capsys):
        code = main(
            [
                "spread",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--theta", "50",
                "--seeds", "2",
                "--rng", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "expected spread" in out
        assert "95% CI" in out

    def test_spread_with_blocked_vertices(self, capsys):
        code = main(
            [
                "spread",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--theta", "30",
                "--seeds", "1",
                "--rng", "4",
                "--block", "0", "1",
            ]
        )
        assert code == 0


class TestEngineFlag:
    def test_engine_defaults_to_scalar(self):
        args = build_parser().parse_args(["block"])
        assert args.engine == "scalar"
        assert args.workers is None

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["block", "--engine", "quantum"])

    def test_workers_requires_parallel_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "spread", "--dataset", "email-core", "--scale", "0.06",
                    "--seeds", "2", "--workers", "2",
                ]
            )
        assert "--workers requires --engine parallel" in capsys.readouterr().out

    def test_workers_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "spread", "--dataset", "email-core", "--scale", "0.06",
                    "--seeds", "2", "--engine", "parallel", "--workers", "0",
                ]
            )
        assert "--workers must be >= 1" in capsys.readouterr().out

    def test_make_evaluator_unknown_engine_lists_backends(self):
        with pytest.raises(ValueError) as error:
            make_evaluator(figure1_graph(), "quantum")
        message = str(error.value)
        assert "quantum" in message
        for name in BACKENDS:
            assert name in message

    @pytest.mark.parametrize("engine", ["vectorized", "pooled", "sketch"])
    def test_block_with_engine(self, capsys, engine):
        code = main(
            [
                "block",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--budget", "2",
                "--theta", "30",
                "--seeds", "2",
                "--algorithm", "gr",
                "--rng", "1",
                "--engine", engine,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blockers=" in out
        assert "expected spread" in out

    def test_sketch_layouts_agree_end_to_end(self, capsys):
        outputs = []
        for layout in ("arena", "legacy"):
            code = main(
                [
                    "block",
                    "--dataset", "email-core",
                    "--scale", "0.08",
                    "--budget", "2",
                    "--theta", "30",
                    "--seeds", "2",
                    "--algorithm", "gr",
                    "--rng", "1",
                    "--engine", "sketch",
                    "--sketch-layout", layout,
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            outputs.append(
                [line for line in out.splitlines()
                 if line.startswith(("blockers=", "expected spread"))]
            )
        # the two layouts are the same estimator: identical blockers
        # and identical spread estimates, not just approximately
        assert outputs[0] == outputs[1]

    def test_spread_with_engine(self, capsys):
        code = main(
            [
                "spread",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--seeds", "2",
                "--theta", "200",
                "--rng", "1",
                "--engine", "vectorized",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=vectorized" in out
        assert "expected spread" in out


class TestServeQueryVerbs:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port is None
        assert args.cache_entries == 8
        assert args.edge_list == []

    def test_query_requires_known_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "teleport"])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "ping"])
        assert args.op == "ping"
        assert args.port is None
        assert args.graph is None

    def test_serve_rejects_malformed_edge_list(self, capsys):
        assert main(["serve", "--edge-list", "nopath"]) == 2
        assert "NAME=PATH" in capsys.readouterr().out

    def test_query_against_unreachable_server(self, capsys):
        code = main(
            ["query", "ping", "--port", "1", "--timeout", "0.5"]
        )
        assert code == 1
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is False

    def test_serve_query_round_trip(self, capsys):
        """`repro serve` + `repro query` end-to-end on the toy graph."""
        from repro.service import (
            ArtifactCache,
            BlockerService,
            default_registry,
            serve,
        )

        registry = default_registry(scale=0.05)
        service = BlockerService(
            registry=registry,
            cache=ArtifactCache(registry, max_entries=2),
        )
        server = serve(port=0, service=service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        port = str(server.server_address[1])
        try:
            code = main(
                [
                    "query", "block", "--port", port, "--graph", "toy",
                    "--theta", "100", "--budget", "2", "--seeds", "0",
                ]
            )
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            assert response["ok"] is True
            result = response["result"]
            assert result["budget"] == 2
            assert result["spread_blocked"] <= result["spread_unblocked"]

            code = main(["query", "spread", "--port", port,
                         "--graph", "toy", "--theta", "100",
                         "--seeds", "0", "--blocked", "4"])
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            assert response["result"]["spread"] == pytest.approx(3.0)

            # --stats attaches the warm artifact's description — the
            # block query above warmed the sketch index, so the arena
            # and postings gauges must be live
            code = main(["query", "spread", "--port", port,
                         "--graph", "toy", "--theta", "100",
                         "--seeds", "0", "--stats"])
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            assert response["ok"] is True
            sketch_stats = response["artifact_stats"]["sketch"]
            assert sketch_stats["trees_built"] > 0
            assert sketch_stats["arena_bytes"] > 0
            assert sketch_stats["postings_bytes"] > 0

            # the direct per-artifact form of the stats op
            code = main(["query", "stats", "--port", port,
                         "--graph", "toy", "--theta", "100"])
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            assert response["result"]["sketch"] == sketch_stats

            code = main(["query", "shutdown", "--port", port])
            assert code == 0
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            server.server_close()


class TestThetaFlags:
    def test_eps_derives_theta_from_theorem5(self, capsys):
        code = main(
            [
                "spread",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--seeds", "2",
                "--rng", "1",
                "--engine", "sketch",
                "--eps", "0.5",
                "--ell", "0.5",
                "--max-theta", "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "from Theorem 5" in out
        assert "eps=0.5" in out

    def test_theta_and_eps_conflict_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "spread",
                    "--dataset", "email-core",
                    "--scale", "0.08",
                    "--seeds", "2",
                    "--theta", "50",
                    "--eps", "0.3",
                ]
            )
        out = capsys.readouterr().out
        assert "either --theta or --eps" in out

    def test_block_accepts_eps(self, capsys):
        code = main(
            [
                "block",
                "--dataset", "email-core",
                "--scale", "0.08",
                "--budget", "2",
                "--seeds", "2",
                "--rng", "1",
                "--algorithm", "ag",
                "--engine", "sketch",
                "--eps", "0.5",
                "--max-theta", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "from Theorem 5" in out
        assert "blockers=" in out


class TestUpdateVerb:
    def test_parse_edge_formats(self):
        from repro.cli import _parse_edge

        assert _parse_edge("0:5", False) == (0, 5)
        assert _parse_edge("0:5:0.3", True) == (0, 5, 0.3)
        with pytest.raises(ValueError, match="U:V"):
            _parse_edge("0:5:0.3", False)
        with pytest.raises(ValueError, match="U:V:P"):
            _parse_edge("0:5", True)
        with pytest.raises(ValueError):
            _parse_edge("a:b", False)

    def test_update_defaults(self):
        args = build_parser().parse_args(
            ["update", "--graph", "toy", "--delete", "0:1"]
        )
        assert args.graph == "toy"
        assert args.delete == ["0:1"]
        assert args.insert == [] and args.reweight == []
        assert args.seq is None

    def test_update_requires_an_edit(self, capsys):
        code = main(["update", "--graph", "toy"])
        assert code == 2
        assert "at least one" in capsys.readouterr().out

    def test_update_rejects_malformed_edge(self, capsys):
        code = main(
            ["update", "--graph", "toy", "--delete", "0:1:0.5"]
        )
        assert code == 2
        assert "U:V" in capsys.readouterr().out

    def test_update_round_trip(self, capsys):
        """`repro update` against a live server: apply, dup-ack."""
        from repro.service import (
            ArtifactCache,
            BlockerService,
            default_registry,
            serve,
        )

        registry = default_registry(scale=0.05)
        service = BlockerService(
            registry=registry,
            cache=ArtifactCache(registry, max_entries=2),
        )
        server = serve(port=0, service=service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        port = str(server.server_address[1])
        try:
            code = main(["query", "spread", "--port", port,
                         "--graph", "toy", "--theta", "100",
                         "--seeds", "0"])
            assert code == 0
            before = json.loads(capsys.readouterr().out)

            code = main(["update", "--port", port, "--graph", "toy",
                         "--theta", "100", "--delete", "0:1",
                         "--seq", "1"])
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            assert response["applied"] is True
            assert response["seq"] == 1

            code = main(["query", "spread", "--port", port,
                         "--graph", "toy", "--theta", "100",
                         "--seeds", "0"])
            assert code == 0
            after = json.loads(capsys.readouterr().out)
            assert after["result"]["spread"] != \
                before["result"]["spread"]

            # an explicit resend of the same seq is acknowledged,
            # never double-applied
            code = main(["update", "--port", port, "--graph", "toy",
                         "--theta", "100", "--delete", "0:1",
                         "--seq", "1"])
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            assert response["applied"] is False

            code = main(["query", "shutdown", "--port", port])
            assert code == 0
            thread.join(timeout=5)
        finally:
            server.server_close()
