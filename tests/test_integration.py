"""End-to-end integration tests across modules.

Each test drives the full pipeline exactly as the experiments do:
dataset stand-in -> probability model -> seed selection -> algorithm ->
independent MCS evaluation, checking the qualitative claims of the
paper at miniature scale.
"""

import pytest

from repro.bench import evaluate_spread, pick_seeds, prepare_graph
from repro.core import (
    advanced_greedy,
    baseline_greedy,
    greedy_replace,
    out_degree_blockers,
    random_blockers,
)
from repro.datasets import extract_subgraphs, load_dataset
from repro.models import LinearThresholdSampler


@pytest.fixture(scope="module")
def tr_graph():
    return prepare_graph(load_dataset("email-core", scale=0.3), "tr", rng=0)


@pytest.fixture(scope="module")
def wc_graph():
    return prepare_graph(load_dataset("email-core", scale=0.3), "wc")


class TestPipelineTR:
    def test_greedy_algorithms_beat_simple_heuristics(self, tr_graph):
        seeds = pick_seeds(tr_graph, 5, rng=1)
        budget = 10
        spreads = {}
        spreads["rand"] = evaluate_spread(
            tr_graph, seeds,
            random_blockers(tr_graph, seeds, budget, rng=2),
            rounds=600, rng=9,
        )
        spreads["ag"] = evaluate_spread(
            tr_graph, seeds,
            advanced_greedy(tr_graph, seeds, budget, theta=150, rng=3).blockers,
            rounds=600, rng=9,
        )
        spreads["gr"] = evaluate_spread(
            tr_graph, seeds,
            greedy_replace(tr_graph, seeds, budget, theta=150, rng=4).blockers,
            rounds=600, rng=9,
        )
        assert spreads["ag"] < spreads["rand"]
        assert spreads["gr"] < spreads["rand"]

    def test_blocking_more_does_not_hurt(self, tr_graph):
        seeds = pick_seeds(tr_graph, 5, rng=5)
        small = greedy_replace(tr_graph, seeds, 5, theta=150, rng=6)
        large = greedy_replace(tr_graph, seeds, 15, theta=150, rng=6)
        spread_small = evaluate_spread(
            tr_graph, seeds, small.blockers, rounds=600, rng=9
        )
        spread_large = evaluate_spread(
            tr_graph, seeds, large.blockers, rounds=600, rng=9
        )
        # estimated, so allow a little noise
        assert spread_large <= spread_small + 1.0


class TestPipelineWC:
    def test_gr_competitive_with_ag(self, wc_graph):
        seeds = pick_seeds(wc_graph, 5, rng=1)
        ag = advanced_greedy(wc_graph, seeds, 10, theta=150, rng=2)
        gr = greedy_replace(wc_graph, seeds, 10, theta=150, rng=3)
        ag_spread = evaluate_spread(
            wc_graph, seeds, ag.blockers, rounds=600, rng=9
        )
        gr_spread = evaluate_spread(
            wc_graph, seeds, gr.blockers, rounds=600, rng=9
        )
        # the paper reports GR ~= AG or better; allow 15% noise
        assert gr_spread <= ag_spread * 1.15

    def test_out_degree_weaker_than_greedy(self, wc_graph):
        seeds = pick_seeds(wc_graph, 5, rng=4)
        od_spread = evaluate_spread(
            wc_graph, seeds,
            out_degree_blockers(wc_graph, seeds, 10),
            rounds=600, rng=9,
        )
        gr_spread = evaluate_spread(
            wc_graph, seeds,
            greedy_replace(wc_graph, seeds, 10, theta=150, rng=5).blockers,
            rounds=600, rng=9,
        )
        assert gr_spread <= od_spread + 0.5


class TestAGMatchesBGQuality:
    """Section V-C's claim at miniature scale."""

    def test_comparable_final_spread(self):
        graph = prepare_graph(
            load_dataset("email-core", scale=0.1), "tr", rng=7
        )
        seeds = pick_seeds(graph, 3, rng=7)
        bg = baseline_greedy(graph, seeds, 3, rounds=120, rng=8)
        ag = advanced_greedy(graph, seeds, 3, theta=120, rng=9)
        bg_spread = evaluate_spread(
            graph, seeds, bg.blockers, rounds=1500, rng=10
        )
        ag_spread = evaluate_spread(
            graph, seeds, ag.blockers, rounds=1500, rng=10
        )
        assert ag_spread <= bg_spread * 1.2 + 0.5


class TestTriggeringExtension:
    def test_lt_model_end_to_end(self):
        graph = prepare_graph(
            load_dataset("email-core", scale=0.15), "wc"
        )
        seeds = pick_seeds(graph, 3, rng=11)
        result = greedy_replace(
            graph,
            seeds,
            budget=5,
            theta=120,
            rng=12,
            sampler_factory=lambda g, rng: LinearThresholdSampler(g, rng),
        )
        assert len(result.blockers) == 5
        assert not set(result.blockers) & set(seeds)


class TestSubgraphPipeline:
    def test_exact_comparison_workflow(self):
        """The Tables V/VI workflow: subgraphs + GR vs exhaustive."""
        from repro.core import exact_blockers

        graph = prepare_graph(
            load_dataset("email-core", scale=0.15), "tr", rng=13
        )
        subs = extract_subgraphs(graph, count=1, target_size=30, rng=14)
        sub, _ = subs[0]
        seeds = pick_seeds(sub, 2, rng=15)
        gr = greedy_replace(sub, seeds, 1, theta=400, rng=16)
        exact = exact_blockers(
            sub, seeds, 1, evaluator="mcs", rounds=400, rng=17
        )
        gr_spread = evaluate_spread(
            sub, seeds, gr.blockers, rounds=2000, rng=18
        )
        # GR within 10% of optimal (paper reports >= 99.88%)
        assert gr_spread <= exact.spread * 1.10 + 0.5
