"""Tests for the hardness reduction (Theorems 1/3) and spread
properties (Theorem 2)."""

import random

import pytest

from repro.core import exact_blockers
from repro.datasets import figure1_graph, figure1_seed, V
from repro.spread import exact_expected_spread
from repro.theory import (
    check_monotonicity,
    densest_k_subgraph_bruteforce,
    DKSInstance,
    find_supermodularity_violation,
    imin_spread_for_blockers,
    reduce_dks_to_imin,
)


def square_dks() -> DKSInstance:
    """The 4-vertex, 4-edge example of Figure 2."""
    return DKSInstance(4, ((0, 1), (1, 2), (2, 3), (3, 0)), k=2)


class TestReductionStructure:
    def test_figure2_sizes(self):
        reduced = reduce_dks_to_imin(square_dks())
        assert reduced.graph.n == 1 + 4 + 4
        # n seed edges + 2 edges per DKS edge
        assert reduced.graph.m == 4 + 8
        assert reduced.budget == 2

    def test_all_probabilities_one(self):
        reduced = reduce_dks_to_imin(square_dks())
        assert all(p == 1.0 for _, _, p in reduced.graph.edges())

    def test_d_vertices_have_two_in_edges(self):
        reduced = reduce_dks_to_imin(square_dks())
        for d in reduced.d_vertex:
            assert reduced.graph.in_degree(d) == 2
            assert reduced.graph.out_degree(d) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DKSInstance(3, ((0, 0),), k=1)
        with pytest.raises(ValueError):
            DKSInstance(3, ((0, 5),), k=1)
        with pytest.raises(ValueError):
            DKSInstance(3, (), k=0)


class TestReductionSpreadFormula:
    def test_closed_form_matches_exact_spread(self):
        reduced = reduce_dks_to_imin(square_dks())
        for subset in ((), (0,), (0, 1), (1, 3)):
            blockers = reduced.blockers_for(subset)
            closed = imin_spread_for_blockers(reduced, blockers)
            exact = exact_expected_spread(
                reduced.graph, [reduced.seed], blocked=blockers
            )
            assert closed == exact

    def test_spread_counts_stranded_d_vertices(self):
        reduced = reduce_dks_to_imin(square_dks())
        # blocking adjacent vertices {0, 1} strands edge (0,1)'s vertex:
        # spread = 1 + (4 - 2) + (4 - 1) = 6
        assert reduced.spread_if_blocking([0, 1]) == 6.0
        # blocking opposite corners {0, 2} strands two edges... no:
        # each edge has one blocked endpoint only, so nothing stranded
        assert reduced.spread_if_blocking([0, 2]) == 7.0

    def test_blocking_seed_rejected(self):
        reduced = reduce_dks_to_imin(square_dks())
        with pytest.raises(ValueError):
            imin_spread_for_blockers(reduced, [reduced.seed])


class TestReductionEquivalence:
    """Optimal IMIN blocking == densest k-subgraph (Theorem 1)."""

    @pytest.mark.parametrize("trial", range(5))
    def test_random_instances(self, trial):
        rnd = random.Random(trial)
        n = rnd.randint(4, 6)
        edges = tuple(
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rnd.random() < 0.5
        )
        if not edges:
            pytest.skip("degenerate draw with no edges")
        k = rnd.randint(1, n - 1)
        dks = DKSInstance(n, edges, k)
        reduced = reduce_dks_to_imin(dks)

        _, best_edges = densest_k_subgraph_bruteforce(dks)
        optimal = exact_blockers(
            reduced.graph,
            [reduced.seed],
            reduced.budget,
            candidates=list(reduced.c_vertex),
        )
        # spread = 1 + (n - k) + (m - g)  =>  g = 1 + n + m - k - spread
        recovered = 1 + n + len(edges) - k - optimal.spread
        assert recovered == best_edges


class TestMonotonicity:
    def test_toy_graph_chain(self):
        graph = figure1_graph()
        chain = [[], [V(2)], [V(2), V(4)], [V(2), V(4), V(5)]]
        assert check_monotonicity(graph, [figure1_seed], chain)

    def test_detects_fabricated_violation(self):
        # a chain that is NOT ordered by inclusion can increase spread
        graph = figure1_graph()
        chain = [[V(5)], [V(2)]]  # spreads 3.0 then 6.66
        assert not check_monotonicity(graph, [figure1_seed], chain)


class TestSupermodularity:
    def test_theorem2_counterexample_on_figure1(self):
        """The paper's exact counterexample: X={v3}, Y={v2,v3}, x=v4."""
        graph = figure1_graph()
        seeds = [figure1_seed]

        def f(blockers):
            return exact_expected_spread(graph, seeds, blocked=blockers)

        assert f([V(3)]) == pytest.approx(6.66)
        assert f([V(2), V(3)]) == pytest.approx(5.66)
        assert f([V(3), V(4)]) == pytest.approx(5.66)
        assert f([V(2), V(3), V(4)]) == pytest.approx(1.0)
        gain_small = f([V(3), V(4)]) - f([V(3)])
        gain_large = f([V(2), V(3), V(4)]) - f([V(2), V(3)])
        assert gain_small == pytest.approx(-1.0)
        assert gain_large == pytest.approx(-4.66)
        assert gain_small > gain_large  # supermodularity violated

    def test_search_finds_violation_on_figure1(self):
        witness = find_supermodularity_violation(
            figure1_graph(), [figure1_seed], max_set_size=2, rng=0
        )
        assert witness is not None
        assert witness.marginal_small > witness.marginal_large
        assert "SupermodularityViolation" in repr(witness)

    def test_no_violation_on_disjoint_star(self):
        # blocking leaves of a star is modular: no violation exists
        from repro.graph import DiGraph

        star = DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        witness = find_supermodularity_violation(
            star, [0], max_set_size=2, rng=1
        )
        assert witness is None
