"""Tests for the service's ``update`` op — the serving-layer face of
the incremental graph-delta path.

The contracts under test: an update mutates the warm artifact through
``apply_delta`` (rebased, not rebuilt), serialises with in-flight
queries on the same artifact's executor, journals every applied delta
under a client-supplied monotone ``seq`` so a connection-reset resend
can never double-apply, evicts stale sibling artifacts of the same
graph, and — with a cache directory — leaves post-delta artifacts on
disk that a fresh cache (a restarted worker) rehydrates bit-identically
after replaying the journal.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    ArtifactCache,
    ArtifactKey,
    BadParamsError,
    BlockerService,
    default_registry,
    IDEMPOTENT_OPS,
    ServiceClient,
)

TOY = {"graph": "toy", "theta": 100, "seed": 7}


@pytest.fixture()
def registry():
    return default_registry(scale=0.05)


@pytest.fixture()
def service(registry):
    svc = BlockerService(
        registry=registry, cache=ArtifactCache(registry, max_entries=4)
    )
    try:
        yield svc
    finally:
        svc.close()


def spread_of(service, **overrides):
    request = {"op": "spread", "seeds": [0], "blocked": [], **TOY,
               **overrides}
    response = service.handle(request)
    assert response["ok"], response
    return response["result"]["spread"]


def update(service, **fields):
    return service.handle({"op": "update", **TOY, **fields})


class TestUpdateOp:
    def test_update_changes_the_served_answer(self, service):
        before = spread_of(service)
        response = update(service, deletes=[[0, 1]], seq=1)
        assert response["ok"], response
        result = response["result"]
        assert result["applied"] is True
        assert result["seq"] == 1
        assert result["deletes"] == 1
        assert result["touched_samples"] >= 0
        after = spread_of(service)
        assert after != before  # edge out of vertex 0 is load-bearing

    def test_update_result_reports_edit_counts(self, service):
        spread_of(service)
        response = update(
            service,
            deletes=[[0, 1]],
            reweights=[[0, 3, 0.9]],
            inserts=[[5, 0, 0.4]],
            seq=1,
        )
        result = response["result"]
        assert (result["inserts"], result["deletes"],
                result["reweights"]) == (1, 1, 1)
        assert result["graph"] == "toy"

    def test_duplicate_seq_is_acknowledged_not_reapplied(self, service):
        spread_of(service)
        first = update(service, deletes=[[0, 1]], seq=1)
        assert first["result"]["applied"] is True
        answer = spread_of(service)

        # the same request resent (a client retry after a dropped
        # connection) must not double-apply — and with the edge gone,
        # a real re-application would error, so the ack path is the
        # only way this returns ok
        again = update(service, deletes=[[0, 1]], seq=1)
        assert again["ok"], again
        assert again["result"]["applied"] is False
        assert again["result"]["last_seq"] == 1
        assert spread_of(service) == answer

    def test_stale_seq_is_acknowledged(self, service):
        spread_of(service)
        update(service, deletes=[[0, 1]], seq=5)
        response = update(service, inserts=[[0, 1, 0.5]], seq=3)
        assert response["result"]["applied"] is False
        assert response["result"]["last_seq"] == 5

    def test_seq_defaults_to_journal_head_plus_one(self, service):
        spread_of(service)
        first = update(service, deletes=[[0, 1]])
        assert first["result"]["seq"] == 1
        second = update(service, inserts=[[0, 1, 0.5]])
        assert second["result"]["seq"] == 2

    def test_update_is_not_idempotent_for_the_client(self):
        assert "update" not in IDEMPOTENT_OPS

    @pytest.mark.parametrize(
        "fields, fragment",
        [
            ({}, "at least one"),
            ({"deletes": [[0, 0]]}, "self loop"),
            ({"deletes": [[0, 1]], "seq": 0}, "seq must be >= 1"),
            ({"deletes": [[0, 1, 0.5]]}, "pairs"),
            ({"inserts": [[0, 1]]}, "triples"),
            ({"upserts": [[0, 1, 0.5]], "deletes": [[0, 1]],
              "unknown": 1}, None),
        ],
    )
    def test_malformed_updates_are_bad_params(
        self, service, fields, fragment
    ):
        if fragment is None:
            # unknown edit kinds are simply ignored by the wire
            # parser (only the three known fields are read)
            response = update(service, **fields)
            assert response["ok"]
            return
        response = update(service, **fields)
        assert not response["ok"]
        assert response["error"]["code"] == "bad_params"
        assert fragment in response["error"]["message"]

    def test_invalid_delta_does_not_consume_seq(self, service):
        spread_of(service)
        update(service, deletes=[[0, 1]], seq=1)
        # deleting the now-missing edge is the client's error...
        response = update(service, deletes=[[0, 1]], seq=2)
        assert not response["ok"]
        assert response["error"]["code"] == "bad_params"
        assert "missing edge" in response["error"]["message"]
        # ...and seq 2 is still free for the corrected request
        fixed = update(service, inserts=[[0, 1, 0.5]], seq=2)
        assert fixed["ok"]
        assert fixed["result"]["applied"] is True
        assert fixed["result"]["seq"] == 2

    def test_applied_seq_visible_in_artifact_stats(self, service):
        spread_of(service)
        update(service, deletes=[[0, 1]], seq=1)
        response = service.handle({"op": "stats", **TOY})
        assert response["ok"]
        assert response["result"]["applied_seq"] == 1

    def test_update_rebases_instead_of_rebuilding(self, service):
        spread_of(service)
        builds_before = service.cache.stats.builds
        response = update(service, deletes=[[0, 1]], seq=1)
        assert response["ok"]
        stats = service.handle({"op": "stats", **TOY})["result"]
        assert stats["sketch"]["deltas"] == 1
        assert service.cache.stats.builds == builds_before

    def test_update_evicts_stale_siblings(self, service):
        spread_of(service)  # theta=100 artifact
        spread_of(service, theta=60)  # sibling key, same graph
        evictions_before = service.cache.stats.evictions
        response = update(service, deletes=[[0, 1]], seq=1)
        assert response["result"]["invalidated_siblings"] == 1
        assert service.cache.stats.evictions == evictions_before + 1
        # the sibling rebuilds onto the post-delta graph via the
        # journal: same graph state, different theta
        assert spread_of(service, theta=60) > 0


class TestUpdateConcurrency:
    def test_updates_serialize_with_inflight_queries(self, service):
        """Concurrent spreads racing one update each observe either
        the whole delta or none of it — never a half-applied state."""
        before = spread_of(service)

        answers: list[float] = []
        errors: list[Exception] = []
        lock = threading.Lock()
        barrier = threading.Barrier(9)

        def query():
            barrier.wait()
            try:
                value = spread_of(service)
            except Exception as error:  # pragma: no cover - diagnostics
                with lock:
                    errors.append(error)
                return
            with lock:
                answers.append(value)

        def mutate():
            barrier.wait()
            response = update(service, deletes=[[0, 1]], seq=1)
            assert response["ok"], response

        threads = [threading.Thread(target=query) for _ in range(8)]
        threads.insert(4, threading.Thread(target=mutate))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        after = spread_of(service)
        assert after != before
        assert set(answers) <= {before, after}, (answers, before, after)


class TestUpdateDurability:
    def test_restarted_cache_replays_journal(self, registry, tmp_path):
        key = ArtifactKey("toy", "wc", 100, 7)
        cache = ArtifactCache(registry, cache_dir=tmp_path)
        artifact = cache.get(key)
        artifact.warm_sketch([0])
        from repro.graph import GraphDelta

        cache.apply_delta(key, GraphDelta(deletes=[(0, 1)]), 1)
        expected = artifact.spread_many([0], [[]], 100)[0]
        persisted_digest = artifact.pool.cache_digest
        cache.close()

        # a fresh process over the same directory: the journal replays
        # before the pool fingerprint is derived, so the rebuilt
        # artifact lands on the *post-delta* persisted pool
        again = ArtifactCache(registry, cache_dir=tmp_path)
        rebuilt = again.get(key)
        assert rebuilt.applied_seq == 1
        assert rebuilt.pool.cache_digest == persisted_digest
        assert rebuilt.spread_many([0], [[]], 100)[0] == expected
        assert rebuilt.pool.stats.disk_loads >= 1
        again.close()

    def test_journal_survives_for_new_seq_decisions(
        self, registry, tmp_path
    ):
        from repro.graph import GraphDelta

        key = ArtifactKey("toy", "wc", 100, 7)
        cache = ArtifactCache(registry, cache_dir=tmp_path)
        cache.get(key)
        cache.apply_delta(key, GraphDelta(deletes=[(0, 1)]), 4)
        cache.close()

        again = ArtifactCache(registry, cache_dir=tmp_path)
        again.get(key)
        # the resent duplicate is still recognised after restart
        outcome = again.apply_delta(
            key, GraphDelta(deletes=[(0, 1)]), 4
        )
        assert outcome == {
            "applied": False, "seq": 4, "last_seq": 4,
        }
        again.close()


class TestClientValidation:
    def test_client_update_requires_edits(self):
        client = ServiceClient(port=1)  # never connects: local checks
        with pytest.raises(BadParamsError, match="at least one"):
            client.update(graph="toy")

    def test_client_update_validates_edit_shapes(self):
        client = ServiceClient(port=1)
        with pytest.raises(BadParamsError, match="2 fields"):
            client.update(graph="toy", deletes=[[0, 1, 0.5]])
        with pytest.raises(BadParamsError, match="3 fields"):
            client.update(graph="toy", inserts=[[0, 1]])
        with pytest.raises(BadParamsError):
            client.update(graph="toy", deletes=[[0, 1]], seq=0)
        with pytest.raises(BadParamsError, match="list"):
            client.update(graph="toy", deletes="0:1")
