"""Unit tests for reverse influence sampling and greedy IMAX."""

import pytest

from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.imax import generate_rr_sets, greedy_imax
from repro.spread import exact_expected_spread


class TestRRSets:
    def test_deterministic_graph_rr_sets_are_ancestor_sets(self):
        # chain 0 -> 1 -> 2 with certain edges: RR(target) = {0..target}
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        collection = generate_rr_sets(graph, 200, rng=0)
        for rr in collection.sets:
            target = max(rr)
            assert rr == frozenset(range(target + 1))

    def test_spread_estimator_matches_exact_toy_graph(self):
        """Borgs et al.: E(S, G) == n * P[S hits a random RR set]."""
        graph = figure1_graph()
        collection = generate_rr_sets(graph, 30000, rng=1)
        estimate = collection.estimate_spread([figure1_seed])
        assert estimate == pytest.approx(7.66, abs=0.15)

    def test_spread_estimator_multiple_seeds(self):
        graph = DiGraph.from_edges(4, [(0, 1, 0.5), (2, 3, 0.5)])
        collection = generate_rr_sets(graph, 30000, rng=2)
        exact = exact_expected_spread(graph, [0, 2])
        assert collection.estimate_spread([0, 2]) == pytest.approx(
            exact, abs=0.15
        )

    def test_coverage_bounds(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        collection = generate_rr_sets(graph, 100, rng=3)
        assert collection.coverage([0]) <= 1.0
        assert collection.coverage([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_rr_sets(DiGraph(2), 0)
        with pytest.raises(ValueError):
            generate_rr_sets(DiGraph(0), 10)


class TestGreedyImax:
    def test_picks_the_obvious_influencer(self):
        # vertex 0 reaches everything deterministically; it must win
        graph = DiGraph.from_edges(
            5, [(0, 1), (0, 2), (1, 3), (2, 4)]
        )
        result = greedy_imax(graph, 1, rr_count=500, rng=0)
        assert result.seeds == [0]
        assert result.estimated_spread == pytest.approx(5.0, abs=0.3)

    def test_second_seed_covers_remaining_component(self):
        graph = DiGraph.from_edges(
            6, [(0, 1), (1, 2), (3, 4), (4, 5)]
        )
        result = greedy_imax(graph, 2, rr_count=2000, rng=1)
        assert sorted(result.seeds) == [0, 3]
        assert result.estimated_spread == pytest.approx(6.0, abs=0.3)

    def test_marginal_coverage_non_increasing(self):
        graph = figure1_graph()
        result = greedy_imax(graph, 4, rr_count=3000, rng=2)
        marginals = result.marginal_coverage
        assert marginals == sorted(marginals, reverse=True)

    def test_budget_zero(self):
        result = greedy_imax(figure1_graph(), 0, rr_count=100, rng=3)
        assert result.seeds == []
        assert result.estimated_spread == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_imax(DiGraph(2), -1)

    def test_imax_vs_imin_contrast(self):
        """The pair of problems on the toy graph: the best seed to ADD
        is upstream (v1 side), the best vertex to BLOCK is v5."""
        graph = figure1_graph()
        imax = greedy_imax(graph, 1, rr_count=4000, rng=4)
        # v1 reaches everything: it is the best single seed
        assert imax.seeds == [V(1)]
