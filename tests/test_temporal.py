"""Unit tests for temporal cascade analysis."""

import numpy as np
import pytest

from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.spread import (
    cascade_timeline,
    containment_report,
    exact_expected_spread,
    expected_activation_curve,
)


def chain(n: int = 5) -> DiGraph:
    return DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestCascadeTimeline:
    def test_deterministic_chain_one_per_step(self):
        levels = cascade_timeline(chain(), [0], rng=0)
        assert levels == [[0], [1], [2], [3], [4]]

    def test_seeds_at_step_zero(self):
        levels = cascade_timeline(chain(), [0, 3], rng=0)
        assert sorted(levels[0]) == [0, 3]

    def test_blocked_vertex_stops_cascade(self):
        levels = cascade_timeline(chain(), [0], rng=0, blocked=[2])
        assert levels == [[0], [1]]

    def test_blocking_seed_rejected(self):
        with pytest.raises(ValueError):
            cascade_timeline(chain(), [0], blocked=[0])

    def test_zero_probability_cascade_dies_at_seed(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        assert cascade_timeline(graph, [0], rng=0) == [[0]]

    def test_toy_graph_levels_match_paper_narrative(self):
        """Example 1: v2, v4 at step 1; v5 at step 2; v3, v6, v9 at 3."""
        graph = figure1_graph()
        # make the stochastic edges certain to fire by zeroing them out:
        # the certain part of the cascade is deterministic
        levels = cascade_timeline(graph, [figure1_seed], rng=0)
        assert sorted(levels[1]) == [V(2), V(4)]
        assert levels[2] == [V(5)]
        assert set(levels[3]) >= {V(3), V(6), V(9)}


class TestActivationCurve:
    def test_chain_curve_is_linear_then_flat(self):
        curve = expected_activation_curve(
            chain(), [0], rounds=5, rng=0, max_steps=8
        )
        assert curve.tolist() == [1, 2, 3, 4, 5, 5, 5, 5, 5]

    def test_converges_to_expected_spread(self):
        graph = figure1_graph()
        curve = expected_activation_curve(
            graph, [figure1_seed], rounds=8000, rng=1, max_steps=10
        )
        assert curve[-1] == pytest.approx(7.66, abs=0.1)
        assert curve[0] == 1.0

    def test_monotone_nondecreasing(self):
        graph = figure1_graph()
        curve = expected_activation_curve(
            graph, [figure1_seed], rounds=200, rng=2, max_steps=6
        )
        assert np.all(np.diff(curve) >= -1e-12)

    def test_blocked_curve_below_unblocked(self):
        graph = figure1_graph()
        full = expected_activation_curve(
            graph, [figure1_seed], rounds=2000, rng=3, max_steps=8
        )
        blocked = expected_activation_curve(
            graph, [figure1_seed], rounds=2000, rng=3, max_steps=8,
            blocked=[V(5)],
        )
        assert np.all(blocked <= full + 1e-9)
        assert blocked[-1] == pytest.approx(3.0, abs=0.05)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            expected_activation_curve(chain(), [0], rounds=0)


class TestContainmentReport:
    def test_reduction_matches_exact(self):
        graph = figure1_graph()
        report = containment_report(
            graph, [figure1_seed], [V(5)], rounds=4000, rng=4, max_steps=10
        )
        exact_reduction = 1.0 - (
            exact_expected_spread(graph, [figure1_seed], blocked=[V(5)])
            / exact_expected_spread(graph, [figure1_seed])
        )
        assert report.final_reduction == pytest.approx(
            exact_reduction, abs=0.03
        )

    def test_divergence_step(self):
        graph = figure1_graph()
        # blocking v5 first bites at step 2 (v5 would activate then)
        report = containment_report(
            graph, [figure1_seed], [V(5)], rounds=1500, rng=5, max_steps=10
        )
        assert report.divergence_step == 2

    def test_no_divergence_when_blocking_nothing_useful(self):
        graph = DiGraph.from_edges(3, [(0, 1)])
        report = containment_report(
            graph, [0], [2], rounds=50, rng=6, max_steps=4
        )
        assert report.divergence_step == -1
        assert report.final_reduction == 0.0
