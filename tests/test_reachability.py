"""Unit tests for sigma statistics on sampled graphs."""

import random

from repro.sampling import sigma, sigma_through, sigma_through_all

from .conftest import random_adjacency


class TestSigma:
    def test_counts_source(self):
        assert sigma({0: [1]}, 0) == 2
        assert sigma({}, 0) == 1

    def test_chain(self):
        succ = {0: [1], 1: [2], 2: [3]}
        assert sigma(succ, 0) == 4
        assert sigma(succ, 2) == 2


class TestSigmaThrough:
    def test_chain_midpoint_cuts_tail(self):
        succ = {0: [1], 1: [2], 2: [3]}
        # removing 1 strands 1, 2 and 3
        assert sigma_through(succ, 0, 1) == 3
        assert sigma_through(succ, 0, 3) == 1

    def test_parallel_paths_not_dominated(self):
        succ = {0: [1, 2], 1: [3], 2: [3]}
        # 3 stays reachable without 1
        assert sigma_through(succ, 0, 1) == 1

    def test_all_vertices_version_matches_single(self):
        rnd = random.Random(21)
        for _ in range(25):
            succ = random_adjacency(10, 0.25, rnd)
            full = sigma_through_all(succ, 0)
            for u, value in full.items():
                assert value == sigma_through(succ, 0, u)

    def test_unreachable_vertices_absent(self):
        succ = {0: [1], 2: [3]}
        assert set(sigma_through_all(succ, 0)) == {1}
