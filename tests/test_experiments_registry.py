"""Tests pinning the experiment registry to the benchmark files."""

from pathlib import Path

import pytest

from repro.bench import experiment_command, EXPERIMENTS

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


class TestRegistry:
    def test_every_experiment_has_a_bench_file(self):
        for experiment in EXPERIMENTS.values():
            assert (BENCH_DIR / experiment.bench_file).is_file(), (
                experiment.key
            )

    def test_every_bench_file_is_registered(self):
        registered = {e.bench_file for e in EXPERIMENTS.values()}
        on_disk = {
            p.name
            for p in BENCH_DIR.glob("bench_*.py")
        }
        assert on_disk == registered

    def test_paper_items_cover_all_eval_tables_and_figures(self):
        items = {e.paper_item for e in EXPERIMENTS.values()}
        for required in (
            "Table IV", "Table V", "Table VI", "Table VII",
            "Figure 5", "Figure 6", "Figure 7", "Figure 8",
            "Figure 9", "Figure 10", "Figure 11",
        ):
            assert required in items

    def test_command_construction(self):
        command = experiment_command("fig7")
        assert command[0] == "pytest"
        assert command[1].endswith("bench_fig7_runtime_tr.py")
        assert "--benchmark-only" in command

    def test_unknown_key_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            experiment_command("fig99")


class TestCliIntegration:
    def test_listing(self, capsys):
        from repro.cli import main

        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "Table VII" in out

    def test_unknown_key_exit_code(self, capsys):
        from repro.cli import main

        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out
