"""Unit tests for the sample-reuse (common random numbers) greedy."""

import pytest

from repro.core import advanced_greedy, static_sample_greedy
from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.models import assign_weighted_cascade, LinearThresholdSampler
from repro.spread import exact_expected_spread


class TestToyGraph:
    def test_budget_one_matches_ag(self):
        result = static_sample_greedy(
            figure1_graph(), [figure1_seed], 1, theta=2000, rng=0
        )
        assert result.blockers == [V(5)]

    def test_budget_two_quality(self):
        result = static_sample_greedy(
            figure1_graph(), [figure1_seed], 2, theta=2000, rng=1
        )
        spread = exact_expected_spread(
            figure1_graph(), [figure1_seed], blocked=result.blockers
        )
        assert spread == pytest.approx(2.0, abs=0.01)

    def test_estimated_spread_tracks_exact(self):
        result = static_sample_greedy(
            figure1_graph(), [figure1_seed], 1, theta=4000, rng=2
        )
        assert result.estimated_spread == pytest.approx(3.0, abs=0.15)


class TestDeterminismAndTraces:
    def test_same_rng_same_trajectory(self):
        graph = figure1_graph()
        a = static_sample_greedy(graph, [figure1_seed], 3, theta=200, rng=7)
        b = static_sample_greedy(graph, [figure1_seed], 3, theta=200, rng=7)
        assert a.blockers == b.blockers
        assert a.round_spreads == b.round_spreads

    def test_round_traces_consistent(self):
        result = static_sample_greedy(
            figure1_graph(), [figure1_seed], 3, theta=300, rng=3
        )
        assert len(result.round_deltas) == len(result.blockers)
        assert result.round_spreads == sorted(
            result.round_spreads, reverse=True
        )

    def test_budget_zero_reports_spread(self):
        result = static_sample_greedy(
            figure1_graph(), [figure1_seed], 0, theta=2000, rng=4
        )
        assert result.blockers == []
        assert result.estimated_spread == pytest.approx(7.66, abs=0.2)

    def test_stops_when_nothing_left(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        result = static_sample_greedy(graph, [0], 5, theta=50, rng=5)
        assert result.blockers == [1]


class TestCompatibility:
    def test_multi_seed(self):
        graph = DiGraph.from_edges(
            6, [(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)]
        )
        result = static_sample_greedy(graph, [0, 1], 1, theta=200, rng=6)
        assert result.blockers == [2]

    def test_comparable_quality_to_ag_on_random_graph(self):
        from repro.graph import directed_scale_free
        from repro.models import assign_constant

        graph = assign_constant(
            directed_scale_free(120, 700, rng=8), 0.15
        )
        ag = advanced_greedy(graph, [0], 8, theta=300, rng=9)
        static = static_sample_greedy(graph, [0], 8, theta=300, rng=10)
        from repro.spread import expected_spread_mcs

        ag_spread = expected_spread_mcs(graph, [0], 3000, rng=11,
                                        blocked=ag.blockers)
        st_spread = expected_spread_mcs(graph, [0], 3000, rng=11,
                                        blocked=static.blockers)
        # sample reuse should not cost more than ~15% quality here
        assert st_spread <= ag_spread * 1.15 + 0.5

    def test_triggering_sampler_factory(self):
        graph = assign_weighted_cascade(
            DiGraph.from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        )
        result = static_sample_greedy(
            graph, [0], 2, theta=300, rng=12,
            sampler_factory=lambda g, rng: LinearThresholdSampler(g, rng),
        )
        assert len(result.blockers) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            static_sample_greedy(DiGraph(2), [0], -1)
        with pytest.raises(ValueError):
            static_sample_greedy(DiGraph(2), [0], 1, theta=0)
