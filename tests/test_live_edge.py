"""Unit tests for the live-edge sampler."""

import numpy as np
import pytest

from repro.graph import CSRGraph, DiGraph
from repro.sampling import adjacency_from_edges, EdgeSampler, ICSampler


@pytest.fixture
def graph() -> DiGraph:
    return DiGraph.from_edges(
        4, [(0, 1, 1.0), (0, 2, 0.5), (1, 3, 0.0), (2, 3, 1.0)]
    )


class TestSampling:
    def test_certain_edges_always_survive(self, graph):
        sampler = ICSampler(graph, rng=0)
        csr = sampler.csr
        certain = {
            j for j in range(csr.m) if csr.probs[j] == 1.0
        }
        for _ in range(20):
            surviving = set(sampler.sample_surviving_edges().tolist())
            assert certain <= surviving

    def test_zero_probability_edges_never_survive(self, graph):
        sampler = ICSampler(graph, rng=0)
        csr = sampler.csr
        zero = {j for j in range(csr.m) if csr.probs[j] == 0.0}
        for _ in range(20):
            surviving = set(sampler.sample_surviving_edges().tolist())
            assert not (zero & surviving)

    def test_survival_frequency_matches_probability(self, graph):
        sampler = ICSampler(graph, rng=1)
        csr = sampler.csr
        half = next(j for j in range(csr.m) if csr.probs[j] == 0.5)
        hits = sum(
            half in sampler.sample_surviving_edges()
            for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.5, abs=0.03)

    def test_adjacency_from_edges(self, graph):
        csr = CSRGraph(graph)
        succ = adjacency_from_edges(csr, np.arange(csr.m))
        assert sorted(succ[0]) == [1, 2]
        assert succ[2] == [3]

    def test_sample_adjacency_contains_only_surviving(self, graph):
        sampler = ICSampler(graph, rng=2)
        succ = sampler.sample_adjacency()
        assert 1 in succ.get(0, [])  # certain edge
        assert 3 not in succ.get(1, [])  # zero-probability edge

    def test_implements_protocol(self, graph):
        assert isinstance(ICSampler(graph, rng=0), EdgeSampler)


class TestBlocking:
    def test_blocked_vertex_loses_in_and_out_edges(self, graph):
        sampler = ICSampler(graph, rng=3)
        sampler.block([2])
        for _ in range(20):
            succ = sampler.sample_adjacency()
            assert 2 not in succ.get(0, [])
            assert 2 not in succ
        assert sampler.blocked == frozenset({2})

    def test_block_is_idempotent(self, graph):
        sampler = ICSampler(graph, rng=4)
        sampler.block([1])
        sampler.block([1])
        assert sampler.blocked == frozenset({1})

    def test_unblock_restores_probabilities(self, graph):
        sampler = ICSampler(graph, rng=5)
        sampler.block([1, 2])
        sampler.unblock([1])
        assert sampler.blocked == frozenset({2})
        saw_edge_to_1 = False
        for _ in range(20):
            succ = sampler.sample_adjacency()
            assert 2 not in succ.get(0, [])
            if 1 in succ.get(0, []):
                saw_edge_to_1 = True
        assert saw_edge_to_1

    def test_unblock_unknown_vertex_is_noop(self, graph):
        sampler = ICSampler(graph, rng=6)
        sampler.block([1])
        sampler.unblock([3])
        assert sampler.blocked == frozenset({1})

    def test_unblock_preserves_other_blocks_shared_edge(self):
        # edge 1 -> 2 touches both blockers; unblocking 1 must keep it
        # dead because 2 is still blocked
        graph = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        sampler = ICSampler(graph, rng=7)
        sampler.block([1, 2])
        sampler.unblock([1])
        for _ in range(10):
            succ = sampler.sample_adjacency()
            assert 2 not in succ.get(1, [])
