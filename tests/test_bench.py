"""Unit tests for the experiment harness."""

import pytest

from repro.bench import (
    evaluate_spread,
    format_series,
    format_table,
    pick_seeds,
    prepare_graph,
    run_and_evaluate,
)
from repro.graph import DiGraph
from repro.models import TRIVALENCY_VALUES


def chain() -> DiGraph:
    return DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


class TestPrepareGraph:
    def test_tr_model(self):
        graph = prepare_graph(chain(), "tr", rng=0)
        assert all(p in TRIVALENCY_VALUES for _, _, p in graph.edges())

    def test_wc_model(self):
        graph = prepare_graph(chain(), "wc")
        assert all(p == 1.0 for _, _, p in graph.edges())  # in-degree 1

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            prepare_graph(chain(), "nope")


class TestPickSeeds:
    def test_count_and_uniqueness(self):
        seeds = pick_seeds(chain(), 3, rng=0)
        assert len(seeds) == len(set(seeds)) == 3

    def test_prefers_non_isolated(self):
        graph = DiGraph.from_edges(10, [(0, 1)])
        seeds = pick_seeds(graph, 1, rng=1)
        assert seeds == [0]

    def test_count_clamped_to_n(self):
        assert len(pick_seeds(chain(), 100, rng=2)) == 5

    def test_deterministic(self):
        assert pick_seeds(chain(), 2, rng=3) == pick_seeds(chain(), 2, rng=3)


class TestEvaluateSpread:
    def test_deterministic_chain(self):
        assert evaluate_spread(chain(), [0], [], rounds=5, rng=0) == 5.0
        assert evaluate_spread(chain(), [0], [2], rounds=5, rng=0) == 2.0


class TestRunAndEvaluate:
    def test_records_time_and_spread(self):
        run = run_and_evaluate(
            "static",
            lambda: [2],
            chain(),
            [0],
            eval_rounds=5,
        )
        assert run.name == "static"
        assert run.blockers == [2]
        assert run.spread == 2.0
        assert run.elapsed_seconds >= 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 7]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text
        assert "bb" in text

    def test_format_table_special_floats(self):
        text = format_table(["x"], [[float("nan")], [0.0], [123456.0]])
        assert "-" in text
        assert "0" in text
        assert "e+" in text  # large values in scientific notation

    def test_format_series_shapes(self):
        text = format_series(
            "theta", [10, 100], {"AG": [1.0, 2.0], "GR": [3.0, 4.0]}
        )
        lines = text.splitlines()
        assert lines[0].split() == ["theta", "AG", "GR"]
        assert len(lines) == 4
