"""Unit tests for graph statistics."""

import pytest

from repro.datasets import load_dataset
from repro.graph import barabasi_albert, DiGraph, erdos_renyi
from repro.graph.metrics import degree_gini, graph_stats, reciprocity


class TestGraphStats:
    def test_basic_counts(self):
        graph = DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        stats = graph_stats(graph)
        assert stats.n == 4
        assert stats.m == 3
        assert stats.average_degree == pytest.approx(1.5)
        assert stats.max_degree == 3

    def test_empty_graph(self):
        stats = graph_stats(DiGraph(0))
        assert stats.n == 0
        assert stats.average_degree == 0.0


class TestDegreeGini:
    def test_uniform_degrees_are_equal(self):
        # directed cycle: every vertex has degree 2
        graph = DiGraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert degree_gini(graph) == pytest.approx(0.0, abs=1e-9)

    def test_star_is_skewed(self):
        star = DiGraph.from_edges(10, [(0, v) for v in range(1, 10)])
        assert degree_gini(star) == pytest.approx(0.4, abs=1e-9)

    def test_ba_more_skewed_than_er(self):
        ba = barabasi_albert(300, 3, rng=0)
        er = erdos_renyi(300, ba.m // 2, rng=0, directed=False)
        assert degree_gini(ba) > degree_gini(er)

    def test_empty_graph(self):
        assert degree_gini(DiGraph(0)) == 0.0
        assert degree_gini(DiGraph(3)) == 0.0


class TestReciprocity:
    def test_bidirectional_graph_is_one(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert reciprocity(graph) == 1.0

    def test_one_way_graph_is_zero(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert reciprocity(graph) == 0.0

    def test_empty_graph(self):
        assert reciprocity(DiGraph(2)) == 0.0

    def test_undirected_standins_fully_reciprocal(self):
        graph = load_dataset("facebook", scale=0.05)
        assert reciprocity(graph) == 1.0

    def test_directed_standins_partially_reciprocal(self):
        graph = load_dataset("email-core", scale=0.1)
        assert reciprocity(graph) < 0.9


class TestStandInShape:
    """The stand-ins must be heavy-tailed like the SNAP originals."""

    @pytest.mark.parametrize(
        "key", ["email-core", "facebook", "wiki-vote", "twitter"]
    )
    def test_social_standins_are_skewed(self, key):
        # a uniform-degree graph has gini ~0; even small stand-ins must
        # show clear skew (full-size ones land around 0.3-0.5)
        graph = load_dataset(key, scale=0.25)
        assert degree_gini(graph) > 0.2
