"""Sketch-index backend (engine/sketch.py) and CELF lazy greedy tests.

Cross-validates the dominator-subtree estimator against the exact
possible-world enumeration and the vectorized Monte-Carlo backend on
the Figure 1 toy graph (where exact computation is tractable), pins
down the determinism guarantees of the chunk-seeded sample pool, and
checks that the lazy (CELF) selection paths of the greedy solvers agree
with their eager counterparts on common random worlds.
"""

import numpy as np
import pytest

from repro.core import (
    advanced_greedy,
    baseline_greedy,
    greedy_replace,
    solve_imin,
    static_sample_greedy,
)
from repro.core.lazy import celf_select, make_gain_fn, supports_marginal_gain
from repro.datasets.toy import figure1_graph, figure1_seed, V
from repro.dominator import dominator_order_sizes
from repro.engine import build_trees, make_evaluator, SketchIndex, TreeBuilder
from repro.engine.pool import SamplePool
from repro.engine.treebuild import auto_build_workers
from repro.graph import barabasi_albert, CSRGraph
from repro.models import assign_weighted_cascade
from repro.sampling import (
    adjacency_from_edges,
    ICSampler,
    required_samples,
    resolve_theta,
)
from repro.spread.exact import exact_expected_spread

EPS = 0.3  # Theorem-5 relative error targeted by the cross-validation


def legacy_sample_trees(csr, batch, seeds, blocked=frozenset()):
    """The pre-refactor per-sample Python build: dict adjacency +
    adjacency-based Lengauer–Tarjan, with blocked vertices filtered
    out of the mapping.  The reference the array-native batched path
    must match bit-for-bit."""
    trees = []
    for t in range(batch.theta):
        succ = adjacency_from_edges(csr, batch.surviving(t))
        succ[csr.n] = list(seeds)
        if blocked:
            succ = {
                u: [v for v in nbrs if v not in blocked]
                for u, nbrs in succ.items()
                if u not in blocked
            }
        trees.append(dominator_order_sizes(succ, csr.n))
    return trees


@pytest.fixture
def toy():
    return figure1_graph()


class TestCrossValidation:
    """Sketch, vectorized MC and exact agree within the Theorem-5 eps."""

    def test_unblocked_spread_within_epsilon(self, toy):
        exact = exact_expected_spread(toy, [figure1_seed])
        assert exact == pytest.approx(7.66)
        theta = required_samples(toy.n, EPS, opt_lower_bound=exact)
        sketch = make_evaluator(toy, "sketch", rng=11)
        vec = make_evaluator(toy, "vectorized", rng=11)
        assert sketch.expected_spread([figure1_seed], theta) == pytest.approx(
            exact, rel=EPS
        )
        assert vec.expected_spread([figure1_seed], theta) == pytest.approx(
            exact, rel=EPS
        )

    def test_blocked_spread_within_epsilon(self, toy):
        blocked = [V(5)]
        exact = exact_expected_spread(toy, [figure1_seed], blocked=blocked)
        assert exact == pytest.approx(3.0)
        theta = required_samples(toy.n, EPS, opt_lower_bound=exact)
        sketch = make_evaluator(toy, "sketch", rng=11)
        vec = make_evaluator(toy, "vectorized", rng=11)
        estimate = sketch.expected_spread([figure1_seed], theta, blocked)
        assert estimate == pytest.approx(exact, rel=EPS)
        estimate = vec.expected_spread([figure1_seed], theta, blocked)
        assert estimate == pytest.approx(exact, rel=EPS)

    def test_marginal_gain_is_exact_spread_difference(self, toy):
        # Theorem 6: on the *same* sampled worlds the subtree size is
        # exactly the blocked-off vertex count, so the identity holds
        # to float precision, not just statistically
        sketch = make_evaluator(toy, "sketch", rng=11)
        theta = 120
        for v in (V(2), V(4), V(5), V(9)):
            gain = sketch.marginal_gain(v, [figure1_seed], theta)
            before = sketch.expected_spread([figure1_seed], theta)
            after = sketch.expected_spread([figure1_seed], theta, [v])
            assert gain == pytest.approx(before - after, abs=1e-9)

    def test_decrease_estimates_match_marginal_gains(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=11)
        theta = 90
        sweep = sketch.decrease_estimates([figure1_seed], theta)
        assert sweep.shape == (toy.n,)
        for v in range(toy.n):
            if v == figure1_seed:
                continue
            gain = sketch.marginal_gain(v, [figure1_seed], theta)
            assert sweep[v] == pytest.approx(gain, abs=1e-12)

    def test_matches_pooled_backend_on_shared_worlds(self, toy):
        # Lemma 1 two ways: reachability count (pooled) vs dominator
        # tree size (sketch) over the *same* sample pool — identical
        pool = SamplePool(toy, rng=5)
        sketch = make_evaluator(toy, "sketch", pool=pool)
        pooled = make_evaluator(toy, "pooled", pool=pool)
        for blocked in ([], [V(5)], [V(2), V(4)]):
            a = sketch.expected_spread([figure1_seed], 80, blocked)
            b = pooled.expected_spread([figure1_seed], 80, blocked)
            assert a == b

    def test_multi_seed_joint_reachability(self, toy):
        pool = SamplePool(toy, rng=5)
        sketch = make_evaluator(toy, "sketch", pool=pool)
        pooled = make_evaluator(toy, "pooled", pool=pool)
        seeds = [figure1_seed, V(9)]
        assert sketch.expected_spread(seeds, 80) == pooled.expected_spread(
            seeds, 80
        )


class TestArrayNativeBuild:
    """The batched CSR build path vs the legacy per-sample Python path.

    The refactor's compatibility bar: blocker selections and spread
    estimates must stay bit-identical at fixed seeds, which reduces to
    per-sample dominator payloads (and hence the aggregated arrays)
    being identical between the two construction pipelines.
    """

    @pytest.mark.parametrize(
        "blocked", [frozenset(), frozenset({V(5)}), frozenset({V(2), V(4)})]
    )
    def test_trees_match_legacy_python_build(self, toy, blocked):
        csr = CSRGraph(toy)
        pool = SamplePool(csr, rng=17)
        batch = pool.get(120)
        seeds = (figure1_seed,)
        legacy = legacy_sample_trees(csr, batch, seeds, blocked)
        new = build_trees(
            csr, batch, range(batch.theta), seeds, sorted(blocked)
        )
        for (l_order, l_sizes), (n_order, n_sizes) in zip(legacy, new):
            assert np.array_equal(l_order, n_order)
            assert np.array_equal(l_sizes, n_sizes)

    def test_trees_match_legacy_on_wc_graph(self):
        # a mid-size weighted-cascade graph: multi-seed virtual root,
        # real merges in the dominator tree, probabilistic reachability
        graph = assign_weighted_cascade(barabasi_albert(300, 3, rng=5))
        csr = CSRGraph(graph)
        pool = SamplePool(csr, rng=5)
        batch = pool.get(60)
        seeds = (3, 41, 250)
        for blocked in (frozenset(), frozenset({7, 80, 123})):
            legacy = legacy_sample_trees(csr, batch, seeds, blocked)
            new = build_trees(
                csr, batch, range(batch.theta), seeds, sorted(blocked)
            )
            for (l_order, l_sizes), (n_order, n_sizes) in zip(legacy, new):
                assert np.array_equal(l_order, n_order)
                assert np.array_equal(l_sizes, n_sizes)

    def test_sketch_aggregates_match_legacy_aggregation(self, toy):
        # the view's delta_sum/spread_sum are exact integer sums in
        # float64, so the refactor must reproduce them bit-for-bit
        csr = CSRGraph(toy)
        pool = SamplePool(csr, rng=9)
        theta = 100
        sketch = SketchIndex(toy, pool=pool)
        sweep = sketch.decrease_estimates([figure1_seed], theta)
        spread = sketch.expected_spread([figure1_seed], theta)
        legacy = legacy_sample_trees(
            csr, pool.get(theta), (figure1_seed,)
        )
        delta = np.zeros(csr.n + 1, dtype=np.float64)
        total = 0
        for order, sizes in legacy:
            total += order.shape[0] - 1
            np.add.at(
                delta, order[1:], sizes[1:].astype(np.float64)
            )
        assert spread == total / theta
        assert np.array_equal(sweep, delta[: csr.n] / theta)

    def test_blocked_seed_matches_legacy_build(self, toy):
        # the legacy dict path filtered blocked vertices out of the
        # virtual root's target list too; a blocked seed must not stay
        # reachable through the super-source (SketchIndex forbids the
        # combination outright, but the public build_trees API must
        # still mirror the legacy semantics)
        csr = CSRGraph(toy)
        pool = SamplePool(csr, rng=21)
        batch = pool.get(30)
        seeds = (figure1_seed, V(9))
        blocked = frozenset({V(9), V(5)})
        legacy = legacy_sample_trees(csr, batch, seeds, blocked)
        new = build_trees(
            csr, batch, range(batch.theta), seeds, sorted(blocked)
        )
        for (l_order, l_sizes), (n_order, n_sizes) in zip(legacy, new):
            assert np.array_equal(l_order, n_order)
            assert np.array_equal(l_sizes, n_sizes)
            assert V(9) not in n_order

    def test_parallel_build_bit_identical(self):
        # big enough that auto_build_workers allows fan-out: the split
        # across worker processes must not change a single byte
        graph = assign_weighted_cascade(barabasi_albert(2100, 2, rng=3))
        csr = CSRGraph(graph)
        pool = SamplePool(csr, rng=3)
        batch = pool.get(70)
        seeds = (11, 900)
        serial = build_trees(csr, batch, range(70), seeds)
        parallel = build_trees(csr, batch, range(70), seeds, workers=2)
        for (s_order, s_sizes), (p_order, p_sizes) in zip(serial, parallel):
            assert np.array_equal(s_order, p_order)
            assert np.array_equal(s_sizes, p_sizes)

    def test_tree_builder_reuses_worker_pool(self):
        # the pool is created on the first fan-out and shared by later
        # builds; close() reaps it (and is idempotent)
        graph = assign_weighted_cascade(barabasi_albert(2100, 2, rng=3))
        csr = CSRGraph(graph)
        pool = SamplePool(csr, rng=3)
        batch = pool.get(70)
        with TreeBuilder(csr, workers=2) as builder:
            assert builder._pool is None  # lazy until a large build
            first = builder.build(batch, range(70), (11, 900))
            worker_pool = builder._pool
            assert worker_pool is not None
            second = builder.build(batch, range(70), (11, 900))
            assert builder._pool is worker_pool  # reused, not rebuilt
        assert builder._pool is None
        builder.close()
        for (a_order, a_sizes), (b_order, b_sizes) in zip(first, second):
            assert np.array_equal(a_order, b_order)
            assert np.array_equal(a_sizes, b_sizes)

    def test_sketch_close_reaps_builder(self, toy):
        sketch = SketchIndex(toy, rng=13, workers=2)
        assert sketch.builder.workers == 2
        sketch.expected_spread([figure1_seed], 50)  # tiny: stays serial
        assert sketch.builder._pool is None
        sketch.close()

    def test_auto_build_workers_guards(self):
        # None = serial; small batches and small graphs collapse to
        # serial; real requests are capped at one tree per worker
        assert auto_build_workers(None, 1000, 100_000) == 1
        assert auto_build_workers(8, 10, 100_000) == 1
        assert auto_build_workers(8, 1000, 64) == 1
        assert auto_build_workers(8, 100, 100_000) == 8
        assert auto_build_workers(200, 100, 100_000) == 100
        with pytest.raises(ValueError):
            auto_build_workers(0, 100, 100_000)

    def test_tree_bytes_gauge(self, toy):
        sketch = SketchIndex(toy, rng=13, layout="legacy")
        assert sketch.stats.tree_bytes == 0
        sketch.expected_spread([figure1_seed], 80)
        view = next(iter(sketch._views.values()))
        expected = sum(
            order.nbytes + sizes.nbytes
            for order, sizes in zip(view._orders, view._sizes)
        )
        assert expected > 0
        assert sketch.stats.tree_bytes == expected
        assert sketch.nbytes == expected
        # legacy views have no arena/postings state
        assert sketch.stats.arena_bytes == 0
        assert sketch.stats.postings_bytes == 0
        # a rebase replaces arrays; the gauge must track the live set
        sketch.expected_spread([figure1_seed], 80, [V(5)])
        live = sum(
            order.nbytes + sizes.nbytes
            for order, sizes in zip(view._orders, view._sizes)
        )
        assert sketch.stats.tree_bytes == live
        sketch.close()
        assert sketch.stats.tree_bytes == 0

    def test_arena_bytes_gauge(self, toy):
        sketch = SketchIndex(toy, rng=13, layout="arena")
        sketch.expected_spread([figure1_seed], 80)
        view = next(iter(sketch._views.values()))
        arena = view._arena_nbytes()
        postings = view._postings_nbytes()
        assert arena > 0 and postings > 0
        assert sketch.stats.arena_bytes == arena
        assert sketch.stats.postings_bytes == postings
        assert sketch.stats.tree_bytes == arena + postings
        assert sketch.nbytes == arena + postings
        # rebases re-sync the gauges to the live arrays
        sketch.expected_spread([figure1_seed], 80, [V(5)])
        assert sketch.stats.arena_bytes == view._arena_nbytes()
        assert sketch.stats.tree_bytes == (
            view._arena_nbytes() + view._postings_nbytes()
        )
        sketch.close()
        assert sketch.stats.tree_bytes == 0
        assert sketch.stats.arena_bytes == 0
        assert sketch.stats.postings_bytes == 0


class TestDeterminism:
    def test_bit_identical_across_theta_request_chunking(self, toy):
        # the pool is chunk-seeded: the first theta samples are the
        # same arrays whether requested at once or grown in stages
        direct = SketchIndex(toy, rng=5)
        staged = SketchIndex(toy, rng=5)
        for theta in (17, 60, 120):
            staged.expected_spread([figure1_seed], theta)
        a = direct.expected_spread([figure1_seed], 120)
        b = staged.expected_spread([figure1_seed], 120)
        assert a == b
        assert np.array_equal(
            direct.decrease_estimates([figure1_seed], 120),
            staged.decrease_estimates([figure1_seed], 120),
        )

    def test_fixed_seed_reproducible(self, toy):
        a = SketchIndex(toy, rng=9).expected_spread([figure1_seed], 70)
        b = SketchIndex(toy, rng=9).expected_spread([figure1_seed], 70)
        assert a == b

    def test_solver_results_reproducible(self, toy):
        runs = [
            advanced_greedy(
                toy,
                [figure1_seed],
                2,
                theta=100,
                evaluator=make_evaluator(toy, "sketch", rng=13),
            )
            for _ in range(2)
        ]
        assert runs[0].blockers == runs[1].blockers
        assert runs[0].estimated_spread == runs[1].estimated_spread


class TestLazySelection:
    def test_supports_marginal_gain_detection(self, toy):
        assert supports_marginal_gain(make_evaluator(toy, "sketch"))
        assert not supports_marginal_gain(make_evaluator(toy, "vectorized"))
        assert not supports_marginal_gain(None)

    def test_celf_matches_exhaustive_greedy_on_coverage(self):
        # deterministic submodular gains: weighted set cover
        sets = {
            0: {1, 2, 3},
            1: {3, 4},
            2: {5},
            3: {1, 2, 3, 4},
            4: set(),
        }

        def gain(v, picked):
            covered = set().union(*(sets[u] for u in picked)) if picked else set()
            return float(len(sets[v] - covered))

        calls = 0

        def counting_gain(v, picked):
            nonlocal calls
            calls += 1
            return gain(v, picked)

        selection = celf_select(list(sets), 3, counting_gain)
        # exhaustive greedy: 3 (covers {1,2,3,4}), then 2 (adds {5});
        # every other set is now fully covered, so selection stops
        # early despite budget 3
        assert selection.picks == [3, 2]
        assert selection.gains == [4.0, 1.0]
        assert selection.evaluations == calls
        # lazy must not evaluate more than exhaustive greedy would
        assert calls <= len(sets) * 3

    def test_lazy_equals_eager_baseline_greedy_on_sketch_worlds(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=3)
        lazy = baseline_greedy(
            toy, [figure1_seed], 2, rounds=200, evaluator=sketch
        )
        eager = baseline_greedy(
            toy, [figure1_seed], 2, rounds=200, evaluator=sketch, lazy=False
        )
        assert lazy.blockers == eager.blockers
        assert lazy.estimated_spread == pytest.approx(
            eager.estimated_spread, abs=1e-9
        )
        assert lazy.evaluations <= eager.evaluations

    def test_table3_budget1_blocks_v5(self, toy):
        # Example 1 / Table III: at budget 1 the best blocker is v5,
        # leaving expected spread 3
        for solver in (advanced_greedy, static_sample_greedy):
            result = solver(
                toy,
                [figure1_seed],
                1,
                theta=300,
                evaluator=make_evaluator(toy, "sketch", rng=7),
            )
            assert result.blockers == [V(5)]
            assert result.estimated_spread == pytest.approx(3.0, abs=0.2)
        result = greedy_replace(
            toy,
            [figure1_seed],
            1,
            theta=300,
            evaluator=make_evaluator(toy, "sketch", rng=7),
        )
        assert result.blockers == [V(5)]
        assert result.estimated_spread == pytest.approx(3.0, abs=0.2)

    def test_table3_budget2_greedy_replace_finds_out_neighbours(self, toy):
        # Table III: blocking {v2, v4} leaves spread 1 — GR's
        # replacement phase finds it, plain greedy does not
        sketch = make_evaluator(toy, "sketch", rng=7)
        gr = greedy_replace(
            toy, [figure1_seed], 2, theta=300, evaluator=sketch
        )
        assert sorted(gr.blockers) == [V(2), V(4)]
        assert gr.estimated_spread == pytest.approx(1.0, abs=1e-9)
        ag = advanced_greedy(
            toy, [figure1_seed], 2, theta=300, evaluator=sketch
        )
        assert gr.estimated_spread <= ag.estimated_spread

    def test_solve_imin_routes_lazy_flag(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        auto = solve_imin(
            toy, [figure1_seed], 1, algorithm="greedy-replace",
            theta=200, evaluator=sketch,
        )
        forced = solve_imin(
            toy, [figure1_seed], 1, algorithm="greedy-replace",
            theta=200, evaluator=sketch, lazy=True,
        )
        assert auto.blockers == forced.blockers == [V(5)]

    def test_forced_lazy_works_with_mc_evaluator(self, toy):
        # the CELF machinery is evaluator-agnostic: forcing lazy on a
        # backend without marginal_gain uses the two-query fallback
        vec = make_evaluator(toy, "vectorized", rng=5)
        result = advanced_greedy(
            toy, [figure1_seed], 1, theta=400, evaluator=vec, lazy=True
        )
        assert result.blockers == [V(5)]

    def test_lazy_requires_evaluator(self, toy):
        for solver in (advanced_greedy, static_sample_greedy, greedy_replace):
            with pytest.raises(ValueError, match="requires an evaluator"):
                solver(toy, [figure1_seed], 1, lazy=True)

    def test_lazy_rejects_sampler_factory(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        with pytest.raises(ValueError, match="sampler_factory"):
            advanced_greedy(
                toy,
                [figure1_seed],
                1,
                evaluator=sketch,
                sampler_factory=lambda graph, rng: ICSampler(graph, rng),
            )

    def test_budget_zero(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        result = advanced_greedy(
            toy, [figure1_seed], 0, theta=100, evaluator=sketch
        )
        assert result.blockers == []
        assert result.estimated_spread == pytest.approx(
            sketch.expected_spread([figure1_seed], 100)
        )

    def test_make_gain_fn_fallback_caches_current_spread(self, toy):
        calls = []

        class Spy:
            csr = make_evaluator(toy, "scalar").csr

            def expected_spread(self, seeds, rounds, blocked=()):
                calls.append(tuple(blocked))
                return float(10 - len(tuple(blocked)))

        gain = make_gain_fn(Spy(), [figure1_seed], 50)
        assert gain(V(2), []) == pytest.approx(1.0)
        assert gain(V(4), []) == pytest.approx(1.0)
        # the base spread for picked=() was computed once, not twice
        assert calls.count(()) == 1


class TestGuards:
    def test_seed_cannot_be_blocked(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        with pytest.raises(ValueError, match="cannot be blocked"):
            sketch.expected_spread([figure1_seed], 50, [figure1_seed])

    def test_seed_out_of_range(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        with pytest.raises(IndexError):
            sketch.expected_spread([toy.n], 50)

    def test_theta_must_be_positive(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        with pytest.raises(ValueError, match="theta"):
            sketch.expected_spread([figure1_seed], 0)
        with pytest.raises(ValueError, match="seed"):
            sketch.expected_spread([], 50)

    def test_stats_track_incremental_rebase(self, toy):
        sketch = make_evaluator(toy, "sketch", rng=7)
        theta = 100
        sketch.expected_spread([figure1_seed], theta)
        assert sketch.stats.trees_built == theta
        # v8 is reachable only through probabilistic edges, so blocking
        # it leaves the samples where it never activated untouched
        sketch.expected_spread([figure1_seed], theta, [V(8)])
        assert sketch.stats.samples_skipped > 0
        assert sketch.stats.trees_built < 2 * theta


class TestResolveTheta:
    def test_explicit_theta_wins(self):
        assert resolve_theta(100, theta=42) == 42

    def test_epsilon_maps_through_required_samples(self):
        expected = required_samples(100, 0.2, 1.0, confidence_exponent=2.0)
        assert resolve_theta(100, epsilon=0.2, ell=2.0) == expected

    def test_max_theta_caps_the_bound(self):
        assert resolve_theta(100, epsilon=0.1, max_theta=500) == 500

    def test_conflicting_arguments_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_theta(100, theta=10, epsilon=0.1)
        with pytest.raises(ValueError):
            resolve_theta(100)
        with pytest.raises(ValueError):
            resolve_theta(100, theta=0)
