"""Unit tests for edge-list I/O and networkx conversion."""

import gzip
import io

import pytest

from repro.graph import (
    DiGraph,
    from_networkx,
    read_edge_list,
    to_networkx,
    write_edge_list,
)


class TestReadEdgeList:
    def test_basic_directed(self):
        text = "# comment\n10 20\n20 30 0.5\n"
        graph, id_map = read_edge_list(io.StringIO(text))
        assert graph.n == 3
        assert graph.m == 2
        assert graph.probability(id_map[10], id_map[20]) == 1.0
        assert graph.probability(id_map[20], id_map[30]) == 0.5

    def test_undirected_adds_both_directions(self):
        graph, id_map = read_edge_list(
            io.StringIO("1 2\n"), directed=False
        )
        assert graph.m == 2
        assert graph.has_edge(id_map[1], id_map[2])
        assert graph.has_edge(id_map[2], id_map[1])

    def test_self_loops_skipped(self):
        graph, _ = read_edge_list(io.StringIO("5 5\n5 6\n"))
        assert graph.m == 1

    def test_default_probability_applied(self):
        graph, id_map = read_edge_list(
            io.StringIO("0 1\n"), default_probability=0.25
        )
        assert graph.probability(id_map[0], id_map[1]) == 0.25

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            read_edge_list(io.StringIO("42\n"))

    def test_roundtrip_through_file(self, tmp_path):
        graph = DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.125)])
        path = tmp_path / "edges.txt"
        write_edge_list(graph, path)
        loaded, id_map = read_edge_list(path)
        assert loaded.m == graph.m
        assert loaded.probability(id_map[0], id_map[1]) == 0.5
        assert loaded.probability(id_map[1], id_map[2]) == 0.125

    def test_gzip_compressed_path(self, tmp_path):
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("# SNAP download\n10 20\n20 30 0.5\n")
        graph, id_map = read_edge_list(path)
        assert (graph.n, graph.m) == (3, 2)
        assert graph.probability(id_map[20], id_map[30]) == 0.5

    def test_gzip_matches_plain(self, tmp_path):
        text = "0 1\n1 2 0.25\n2 0\n"
        plain = tmp_path / "edges.txt"
        plain.write_text(text, encoding="utf-8")
        compressed = tmp_path / "edges.txt.gz"
        with gzip.open(compressed, "wt", encoding="utf-8") as handle:
            handle.write(text)
        graph_a, map_a = read_edge_list(plain)
        graph_b, map_b = read_edge_list(compressed)
        assert map_a == map_b
        assert sorted(graph_a.edges()) == sorted(graph_b.edges())

    def test_gzip_accepts_string_path(self, tmp_path):
        path = tmp_path / "edges.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("3 4\n")
        graph, _ = read_edge_list(str(path))
        assert graph.m == 1


def _write_variant(tmp_path, text: str, compressed: bool):
    """Materialise ``text`` as a plain or gzip edge-list file."""
    if compressed:
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path = tmp_path / "edges.txt"
        path.write_text(text, encoding="utf-8")
    return path


MESSY_TEXT = (
    "\ufeff# SNAP-style comment\n"
    "   # indented comment\n"
    "% KONECT-style comment\n"
    "\n"
    "   \t \n"
    "10\t20\n"
    "20 30\t0.5\r\n"
    "\t30\t 40  \n"
)


class TestMessyEdgeLists:
    """Comment/blank/tab-space tolerance, identical for plain and .gz."""

    @pytest.mark.parametrize("compressed", [False, True])
    def test_messy_input_parses(self, tmp_path, compressed):
        path = _write_variant(tmp_path, MESSY_TEXT, compressed)
        graph, id_map = read_edge_list(path)
        assert (graph.n, graph.m) == (4, 3)
        assert graph.probability(id_map[20], id_map[30]) == 0.5
        assert graph.has_edge(id_map[30], id_map[40])

    def test_messy_gz_matches_plain(self, tmp_path):
        graph_a, map_a = read_edge_list(
            _write_variant(tmp_path, MESSY_TEXT, False)
        )
        graph_b, map_b = read_edge_list(
            _write_variant(tmp_path, MESSY_TEXT, True)
        )
        assert map_a == map_b
        assert sorted(graph_a.edges()) == sorted(graph_b.edges())

    @pytest.mark.parametrize("compressed", [False, True])
    def test_malformed_line_names_line_number(self, tmp_path, compressed):
        text = "# header\n1 2\nbroken\n"
        path = _write_variant(tmp_path, text, compressed)
        with pytest.raises(ValueError, match="line 3"):
            read_edge_list(path)

    @pytest.mark.parametrize("compressed", [False, True])
    def test_non_numeric_column_names_line_number(
        self, tmp_path, compressed
    ):
        text = "1 2\n3 four\n"
        path = _write_variant(tmp_path, text, compressed)
        with pytest.raises(ValueError, match="line 2"):
            read_edge_list(path)

    def test_stream_input_gets_same_tolerance(self):
        graph, id_map = read_edge_list(io.StringIO(MESSY_TEXT))
        assert (graph.n, graph.m) == (4, 3)

    def test_uppercase_gz_suffix(self, tmp_path):
        path = tmp_path / "edges.GZ"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("7 8\n")
        graph, _ = read_edge_list(path)
        assert graph.m == 1


class TestWriteEdgeList:
    def test_without_probabilities(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.5)])
        buffer = io.StringIO()
        write_edge_list(graph, buffer, include_probabilities=False)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("#")
        assert lines[1] == "0 1"


class TestNetworkxInterop:
    def test_roundtrip(self):
        graph = DiGraph.from_edges(4, [(0, 1, 0.3), (1, 2, 0.7), (3, 0, 1.0)])
        back = from_networkx(to_networkx(graph))
        assert sorted(back.edges()) == sorted(graph.edges())

    def test_undirected_networkx_graph(self):
        nx = pytest.importorskip("networkx")
        ug = nx.Graph()
        ug.add_edge(0, 1, probability=0.5)
        graph = from_networkx(ug)
        assert graph.m == 2
        assert graph.probability(0, 1) == 0.5
        assert graph.probability(1, 0) == 0.5

    def test_self_loops_dropped(self):
        nx = pytest.importorskip("networkx")
        dg = nx.DiGraph()
        dg.add_edge(0, 0)
        dg.add_edge(0, 1)
        graph = from_networkx(dg)
        assert graph.m == 1
