"""Unit tests for the exhaustive Exact blocker search."""

import pytest

from repro.core import exact_blockers
from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph


class TestToyGraph:
    def test_budget_one_is_v5(self):
        """Example 1: the optimal single blocker is v5."""
        result = exact_blockers(figure1_graph(), [figure1_seed], 1)
        assert result.blockers == (V(5),)
        assert result.spread == pytest.approx(3.0)
        assert result.evaluator == "exact"

    def test_budget_two_is_out_neighbors(self):
        """Table III: the optimal pair is {v2, v4} with spread 1."""
        result = exact_blockers(figure1_graph(), [figure1_seed], 2)
        assert tuple(sorted(result.blockers)) == (V(2), V(4))
        assert result.spread == pytest.approx(1.0)

    def test_combination_count(self):
        result = exact_blockers(figure1_graph(), [figure1_seed], 1)
        assert result.combinations_checked == 8  # C(8, 1)


class TestEvaluators:
    def test_mcs_fallback_on_many_uncertain_edges(self):
        graph = DiGraph(30)
        for u in range(29):
            graph.add_edge(u, u + 1, 0.5)
        result = exact_blockers(
            graph, [0], 1, evaluator="auto", rounds=300, rng=0
        )
        assert result.evaluator == "mcs"
        assert result.blockers == (1,)  # cutting right after the seed

    def test_forced_exact_raises_when_infeasible(self):
        graph = DiGraph(30)
        for u in range(29):
            graph.add_edge(u, u + 1, 0.5)
        with pytest.raises(Exception):
            exact_blockers(graph, [0], 1, evaluator="exact")

    def test_forced_mcs(self):
        result = exact_blockers(
            figure1_graph(), [figure1_seed], 1, evaluator="mcs",
            rounds=500, rng=1,
        )
        assert result.evaluator == "mcs"
        assert result.blockers == (V(5),)


class TestGuards:
    def test_combination_explosion_guarded(self):
        graph = DiGraph(40)
        with pytest.raises(ValueError, match="max_combinations"):
            exact_blockers(graph, [0], 15, max_combinations=1000)

    def test_candidate_restriction(self):
        result = exact_blockers(
            figure1_graph(), [figure1_seed], 1, candidates=[V(2), V(4)]
        )
        assert result.blockers[0] in (V(2), V(4))

    def test_budget_zero_returns_unblocked_spread(self):
        result = exact_blockers(figure1_graph(), [figure1_seed], 0)
        assert result.blockers == ()
        assert result.spread == pytest.approx(7.66)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            exact_blockers(DiGraph(2), [0], -1)
