"""Tests for the spread-evaluation engine (``repro.engine``).

Statistical parity: every backend estimates Definition 3's
``E(S, G[V \\ blocked])``, so on the Figure 1 toy graph each must agree
with the closed-form ``exact_expected_spread`` (7.66, Example 1) and
with the scalar reference engine within Monte-Carlo tolerance.
Determinism: fixed seeds (and, for the parallel backend, fixed worker
counts) must reproduce results bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import figure1_graph, figure1_seed
from repro.engine import (
    BACKENDS,
    batch_activation_counts,
    batch_cascades,
    default_workers,
    make_evaluator,
    ParallelEvaluator,
    PooledEvaluator,
    ragged_arange,
    SamplePool,
    SpreadEvaluator,
    split_rounds,
    VectorizedEvaluator,
)
from repro.graph import CSRGraph, DiGraph
from repro.spread import (
    exact_expected_spread,
    expected_spread_mcs,
    MonteCarloEngine,
    shared_engine,
)

EXACT = 7.66  # Example 1's expected spread of the Figure 1 graph
ROUNDS = 4000
TOL = 0.25  # ~5 standard errors at the toy graph's spread variance


@pytest.fixture(scope="module")
def toy():
    return figure1_graph()


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
class TestKernels:
    def test_ragged_arange(self):
        out = ragged_arange(np.array([2, 0, 3, 1]))
        assert out.tolist() == [0, 1, 0, 1, 2, 0]
        assert ragged_arange(np.zeros(0, dtype=np.int64)).size == 0

    def test_batch_cascades_shape_and_range(self, toy):
        counts = batch_cascades(toy, [figure1_seed], 100, rng=1)
        assert counts.shape == (100,)
        assert counts.min() >= 1  # the seed always counts
        assert counts.max() <= toy.n

    def test_small_batch_sizes_partition_rounds(self, toy):
        # batch_size smaller than rounds exercises the chunk loop
        counts = batch_cascades(toy, [figure1_seed], 37, rng=5,
                                batch_size=8)
        assert counts.shape == (37,)

    def test_blocked_seed_rejected(self, toy):
        with pytest.raises(ValueError):
            batch_cascades(toy, [figure1_seed], 10, rng=0,
                           blocked=[figure1_seed])

    def test_rounds_must_be_positive(self, toy):
        with pytest.raises(ValueError):
            batch_cascades(toy, [figure1_seed], 0, rng=0)

    def test_activation_counts_match_spread(self, toy):
        rounds = 2000
        counts = batch_activation_counts(toy, [figure1_seed], rounds, rng=3)
        # summing per-vertex frequencies recovers the expected spread
        assert counts[figure1_seed] == rounds
        assert abs(counts.sum() / rounds - EXACT) < TOL

    def test_deterministic_edge_probabilities(self):
        # p=1 edges always fire, p=0 never: exact spread regardless of rng
        graph = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 0.0)]
        )
        counts = batch_cascades(graph, [0], 50)
        assert (counts == 3).all()


# ----------------------------------------------------------------------
# statistical parity across backends
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_matches_exact_value(self, toy, backend):
        evaluator = make_evaluator(toy, backend, rng=7, workers=2)
        try:
            estimate = evaluator.expected_spread([figure1_seed], ROUNDS)
        finally:
            close = getattr(evaluator, "close", None)
            if close:
                close()
        assert estimate == pytest.approx(EXACT, abs=TOL)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_matches_exact_value_blocked(self, toy, backend):
        blocked = [2]  # v3: on the toy graph's dominant path
        expected = exact_expected_spread(
            toy, [figure1_seed], blocked=blocked
        )
        evaluator = make_evaluator(toy, backend, rng=11, workers=2)
        try:
            estimate = evaluator.expected_spread(
                [figure1_seed], ROUNDS, blocked
            )
        finally:
            close = getattr(evaluator, "close", None)
            if close:
                close()
        assert estimate == pytest.approx(expected, abs=TOL)

    def test_backends_agree_with_scalar_reference(self, toy):
        reference = MonteCarloEngine(toy, 5).expected_spread(
            [figure1_seed], ROUNDS
        )
        vectorized = VectorizedEvaluator(toy, 5).expected_spread(
            [figure1_seed], ROUNDS
        )
        assert vectorized == pytest.approx(reference, abs=2 * TOL)

    def test_protocol_runtime_checkable(self, toy):
        assert isinstance(MonteCarloEngine(toy), SpreadEvaluator)
        assert isinstance(VectorizedEvaluator(toy), SpreadEvaluator)
        assert isinstance(PooledEvaluator(toy), SpreadEvaluator)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_vectorized_fixed_seed(self, toy):
        a = VectorizedEvaluator(toy, 42).expected_spread([figure1_seed], 500)
        b = VectorizedEvaluator(toy, 42).expected_spread([figure1_seed], 500)
        assert a == b

    def test_parallel_fixed_seed_and_workers(self, toy):
        with ParallelEvaluator(toy, 42, workers=2) as a, \
                ParallelEvaluator(toy, 42, workers=2) as b:
            ra = a.expected_spread([figure1_seed], 64)
            rb = b.expected_spread([figure1_seed], 64)
        assert ra == rb

    def test_parallel_per_call_streams_differ(self, toy):
        with ParallelEvaluator(toy, 42, workers=2) as ev:
            first = ev.expected_spread([figure1_seed], 256)
            second = ev.expected_spread([figure1_seed], 256)
        # independent streams per call: a repeat is a fresh estimate
        assert first != second

    def test_parallel_inline_matches_pool_path_structure(self, toy):
        # workers=1 short-circuits in-process; same protocol semantics
        with ParallelEvaluator(toy, 9, workers=1) as ev:
            value = ev.expected_spread([figure1_seed], 200)
        assert value == pytest.approx(EXACT, abs=4 * TOL)

    def test_split_rounds(self):
        assert split_rounds(10, 3) == [4, 3, 3]
        assert split_rounds(2, 8) == [1, 1]
        assert sum(split_rounds(1000, default_workers())) == 1000
        with pytest.raises(ValueError):
            split_rounds(0, 2)


# ----------------------------------------------------------------------
# the sample pool
# ----------------------------------------------------------------------
class TestSamplePool:
    def test_prefix_reuse_and_stats(self, toy):
        pool = SamplePool(toy, rng=3)
        first = pool.get(100)
        again = pool.get(60)
        grown = pool.get(150)
        assert pool.stats.hits == 1 and pool.stats.misses == 2
        assert pool.stats.generated == 150
        # prefix property: the first 60 samples are shared verbatim
        assert np.array_equal(again.offsets, first.offsets[:61])
        assert np.array_equal(
            grown.positions[: first.offsets[100]], first.positions
        )

    def test_sample_layout_consistent(self, toy):
        pool = SamplePool(toy, rng=1)
        batch = pool.get(50)
        assert batch.offsets[0] == 0
        assert batch.offsets[-1] == batch.positions.shape[0]
        alive = batch.alive_matrix(0, 50)
        assert alive.shape == (50, toy.m)
        assert alive.sum() == batch.positions.shape[0]
        # row t marks exactly sample t's surviving edges
        t = 17
        assert np.array_equal(np.flatnonzero(alive[t]),
                              np.sort(batch.surviving(t)))

    def test_pack_matches_per_sample_surviving(self, toy):
        pool = SamplePool(toy, rng=4)
        batch = pool.get(40)
        picks = [3, 0, 17, 39]  # arbitrary order, duplicates of layout
        offsets, positions = batch.pack(picks)
        assert offsets.shape == (len(picks) + 1,)
        for i, t in enumerate(picks):
            assert np.array_equal(
                positions[offsets[i]: offsets[i + 1]],
                batch.surviving(t),
            )
        empty_offsets, empty_positions = batch.pack([])
        assert empty_offsets.shape == (1,)
        assert empty_positions.shape == (0,)

    def test_disk_cache_roundtrip(self, toy, tmp_path):
        pool = SamplePool(toy, rng=5, cache_dir=tmp_path)
        batch = pool.get(80)
        assert pool.stats.disk_saves == 1

        # a second pool (fresh process in spirit) attaches mmapped
        reloaded = SamplePool(toy, rng=5, cache_dir=tmp_path)
        assert reloaded.stats.disk_loads == 1
        assert reloaded.theta == 80
        batch2 = reloaded.get(80)
        assert reloaded.stats.hits == 1 and reloaded.stats.misses == 0
        assert np.array_equal(np.asarray(batch2.offsets),
                              np.asarray(batch.offsets))
        assert np.array_equal(np.asarray(batch2.positions),
                              np.asarray(batch.positions))

    def test_disk_cache_disabled_without_seed_identity(self, toy, tmp_path):
        import numpy.random as npr

        pool = SamplePool(toy, rng=npr.default_rng(3), cache_dir=tmp_path)
        pool.get(10)
        assert pool.stats.disk_saves == 0
        assert list(tmp_path.iterdir()) == []

    def test_pooled_evaluator_common_random_numbers(self, toy):
        evaluator = PooledEvaluator(toy, rng=2)
        a = evaluator.expected_spread([figure1_seed], 300)
        b = evaluator.expected_spread([figure1_seed], 300)
        assert a == b  # identical worlds, identical estimate

    def test_growth_history_independent(self, toy):
        # sample i is a pure function of the seed: growing in one step
        # or in many yields bit-identical pools
        one_shot = SamplePool(toy, rng=9).get(120)
        stepwise_pool = SamplePool(toy, rng=9)
        for theta in (30, 70, 120):
            stepwise = stepwise_pool.get(theta)
        assert np.array_equal(stepwise.offsets, one_shot.offsets)
        assert np.array_equal(stepwise.positions, one_shot.positions)

    def test_attached_pool_grows_with_fresh_worlds(self, toy, tmp_path):
        # regression: continuing a disk-attached pool must not replay
        # the persisted prefix as "new" samples
        SamplePool(toy, rng=5, cache_dir=tmp_path).get(50)
        attached = SamplePool(toy, rng=5, cache_dir=tmp_path)
        grown = attached.get(100)
        fresh = SamplePool(toy, rng=5).get(100)
        assert np.array_equal(np.asarray(grown.offsets),
                              np.asarray(fresh.offsets))
        assert np.array_equal(np.asarray(grown.positions),
                              np.asarray(fresh.positions))


# ----------------------------------------------------------------------
# dependency injection into algorithms and harness
# ----------------------------------------------------------------------
class TestInjection:
    def test_baseline_greedy_default_unchanged(self, toy):
        from repro.core import baseline_greedy

        explicit = baseline_greedy(toy, [figure1_seed], 1, rounds=300, rng=9)
        again = baseline_greedy(toy, [figure1_seed], 1, rounds=300, rng=9)
        assert explicit.blockers == again.blockers
        assert explicit.estimated_spread == again.estimated_spread

    def test_baseline_greedy_with_vectorized_evaluator(self, toy):
        from repro.core import baseline_greedy

        evaluator = VectorizedEvaluator(toy, 9)
        result = baseline_greedy(
            toy, [figure1_seed], 1, rounds=600, evaluator=evaluator
        )
        assert len(result.blockers) == 1
        assert figure1_seed not in result.blockers
        assert result.estimated_spread < EXACT  # blocking helps

    def test_solve_imin_accepts_evaluator(self, toy):
        from repro.core import solve_imin

        evaluator = VectorizedEvaluator(toy, 4)
        result = solve_imin(
            toy, [figure1_seed], 2, algorithm="advanced-greedy",
            theta=400, rng=4, evaluator=evaluator,
        )
        assert len(result.blockers) <= 2
        assert result.estimated_spread == pytest.approx(
            exact_expected_spread(
                toy, [figure1_seed], blocked=result.blockers
            ),
            abs=3 * TOL,
        )

    def test_evaluate_spread_accepts_evaluator(self, toy):
        from repro.bench import evaluate_spread

        evaluator = VectorizedEvaluator(toy, 8)
        value = evaluate_spread(
            toy, [figure1_seed], [], rounds=ROUNDS, evaluator=evaluator
        )
        assert value == pytest.approx(EXACT, abs=TOL)

    def test_greedy_replace_evaluator_reestimates(self, toy):
        from repro.core import greedy_replace

        evaluator = VectorizedEvaluator(toy, 12)
        result = greedy_replace(
            toy, [figure1_seed], 2, theta=400, rng=12, evaluator=evaluator
        )
        assert result.estimated_spread == pytest.approx(
            exact_expected_spread(
                toy, [figure1_seed], blocked=result.blockers
            ),
            abs=3 * TOL,
        )


# ----------------------------------------------------------------------
# the shared-engine cache behind the convenience wrappers
# ----------------------------------------------------------------------
class TestSharedEngine:
    def test_fixed_seed_matches_fresh_engine(self, toy):
        cached = expected_spread_mcs(toy, [figure1_seed], 300, rng=21)
        fresh = MonteCarloEngine(toy, 21).expected_spread(
            [figure1_seed], 300
        )
        assert cached == fresh

    def test_engine_object_reused(self, toy):
        first = shared_engine(toy, 1)
        second = shared_engine(toy, 2)
        assert first is second

    def test_csr_input_never_cached(self, toy):
        # a cached engine strongly references its own CSR key, which
        # would pin a weak entry forever — so CSR inputs bypass caching
        csr = CSRGraph(toy)
        assert shared_engine(csr, 1) is not shared_engine(csr, 1)

    def test_csr_input_stays_collectable(self, toy):
        import gc
        import weakref

        csr = CSRGraph(toy)
        shared_engine(csr, 1)
        ref = weakref.ref(csr)
        del csr
        gc.collect()
        assert ref() is None

    def test_mutated_graph_invalidated(self):
        graph = DiGraph.from_edges(3, [(0, 1, 1.0)])
        engine = shared_engine(graph, 1)
        graph.add_edge(1, 2, 1.0)
        assert shared_engine(graph, 1) is not engine
        assert expected_spread_mcs(graph, [0], 10, rng=0) == 3.0

    def test_probability_reassignment_invalidated(self):
        # in-place probability edits keep n and m unchanged; the
        # version counter must still invalidate the cached engine
        graph = DiGraph.from_edges(2, [(0, 1, 1.0)])
        assert expected_spread_mcs(graph, [0], 10, rng=0) == 2.0
        graph.add_edge(0, 1, 0.0)  # re-add: replaces the probability
        assert expected_spread_mcs(graph, [0], 10, rng=0) == 1.0


# ----------------------------------------------------------------------
# factory surface
# ----------------------------------------------------------------------
class TestFactory:
    def test_unknown_backend_rejected(self, toy):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_evaluator(toy, "quantum")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_factory_builds_protocol_instances(self, toy, backend):
        evaluator = make_evaluator(toy, backend, rng=0, workers=1)
        assert isinstance(evaluator, SpreadEvaluator)
        assert evaluator.csr.n == toy.n


class TestBuildEvaluator:
    """The ``build_evaluator`` helper shared by CLI and service."""

    def test_integer_seed_derives_stream(self, toy):
        from repro.engine import build_evaluator

        a0 = build_evaluator(toy, "vectorized", rng=42, stream=0)
        a0_again = build_evaluator(toy, "vectorized", rng=42, stream=0)
        a1 = build_evaluator(toy, "vectorized", rng=42, stream=1)
        same = a0.expected_spread([figure1_seed], 400)
        replay = a0_again.expected_spread([figure1_seed], 400)
        other = a1.expected_spread([figure1_seed], 400)
        assert same == replay  # same (seed, stream) replays exactly
        assert same != other  # different streams differ

    def test_matches_cli_seedsequence_derivation(self, toy):
        from repro.engine import build_evaluator

        derived = build_evaluator(toy, "vectorized", rng=7, stream=1)
        explicit = make_evaluator(
            toy,
            "vectorized",
            rng=np.random.default_rng(np.random.SeedSequence((7, 1))),
        )
        assert derived.expected_spread(
            [figure1_seed], 500
        ) == explicit.expected_spread([figure1_seed], 500)

    def test_generator_passthrough_ignores_stream(self, toy):
        from repro.engine import build_evaluator

        gen = np.random.default_rng(3)
        evaluator = build_evaluator(
            toy, "vectorized", rng=gen, stream=99
        )
        assert evaluator._gen is gen

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_is_a_context_manager(self, toy, backend):
        from repro.engine import build_evaluator

        with build_evaluator(
            toy, backend, rng=0, workers=1
        ) as evaluator:
            assert evaluator.expected_spread([figure1_seed], 50) > 0
        evaluator.close()  # idempotent after __exit__

    def test_parallel_context_manager_reaps_pool(self, toy):
        from repro.engine import build_evaluator

        with build_evaluator(
            toy, "parallel", rng=0, workers=2
        ) as evaluator:
            evaluator.expected_spread([figure1_seed], 64)
            assert evaluator._pool is not None
        assert evaluator._pool is None

    def test_integer_seed_keys_disk_cache(self, toy, tmp_path):
        from repro.engine import build_evaluator

        first = build_evaluator(
            toy, "pooled", rng=5, stream=0, cache_dir=tmp_path
        )
        first.expected_spread([figure1_seed], 40)
        assert first.pool.stats.disk_saves == 1
        second = build_evaluator(
            toy, "pooled", rng=5, stream=0, cache_dir=tmp_path
        )
        assert second.pool.stats.disk_loads == 1
        # a different stream must not attach the stream-0 pool
        other = build_evaluator(
            toy, "pooled", rng=5, stream=1, cache_dir=tmp_path
        )
        assert other.pool.stats.disk_loads == 0


class TestExpectedSpreadMany:
    def test_matches_individual_calls_bitwise(self, toy):
        evaluator = PooledEvaluator(toy, rng=11)
        seeds = [figure1_seed]
        blocked_sets = [[], [4], [1, 3], [4, 8], [2]]
        batched = evaluator.expected_spread_many(
            seeds, 300, blocked_sets
        )
        singles = [
            evaluator.expected_spread(seeds, 300, blocked)
            for blocked in blocked_sets
        ]
        assert batched == singles

    def test_empty_batch(self, toy):
        evaluator = PooledEvaluator(toy, rng=11)
        assert evaluator.expected_spread_many([figure1_seed], 10, []) == []

    def test_rejects_nonpositive_rounds(self, toy):
        evaluator = PooledEvaluator(toy, rng=11)
        with pytest.raises(ValueError):
            evaluator.expected_spread_many([figure1_seed], 0, [[]])

    def test_chunked_batch_still_matches(self, toy):
        # force many small chunks so the batched loop crosses windows
        evaluator = PooledEvaluator(toy, rng=2, batch_size=7)
        batched = evaluator.expected_spread_many(
            [figure1_seed], 100, [[], [4]]
        )
        singles = [
            evaluator.expected_spread([figure1_seed], 100, blocked)
            for blocked in ([], [4])
        ]
        assert batched == singles


class TestVersionedInvalidation:
    def test_add_vertex_invalidates_shared_engine(self):
        from repro.spread import simulate_cascade

        graph = DiGraph.from_edges(3, [(0, 1, 1.0)])
        simulate_cascade(graph, [0], rng=1)  # caches an n=3 engine
        w = graph.add_vertex()
        # regression: a stale cached engine raised IndexError here
        assert simulate_cascade(graph, [w], rng=1) == 1
