"""Persistence tests for the mmap-shared arena sketch artifacts.

The contract under test is the tentpole invariant: a sketch view
rehydrated from disk is *bit-identical* to the cold-built one — same
spread, same marginal gains, same blocker selections — including after
the copy-on-write promotion a rebase triggers, and the on-disk
artifact itself is never dirtied by mutation.  Identity failures here
are hard failures (never tolerance-based comparisons).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import assign_weighted_cascade, EngineSpec
from repro.engine import build_evaluator, SamplePool, SketchIndex
from repro.graph.generators import barabasi_albert

THETA = 48
SEEDS = [0, 7]


@pytest.fixture(scope="module")
def graph():
    return assign_weighted_cascade(barabasi_albert(400, 3, rng=2))


def spec_for(tmp_path, **overrides) -> EngineSpec:
    params = dict(
        engine="sketch", theta=THETA, seed=11, cache_dir=tmp_path
    )
    params.update(overrides)
    return EngineSpec(**params)


def build(graph, tmp_path, **overrides) -> SketchIndex:
    return build_evaluator(graph, spec_for(tmp_path, **overrides))


def sketch_files(tmp_path):
    return sorted(p.name for p in tmp_path.glob("sketch-*"))


def greedy_blockers(index, budget: int) -> tuple[list[int], list[float]]:
    """Plain greedy over decrease_estimates — exercises rebase (and
    therefore COW promotion on rehydrated views) every round."""
    blocked: list[int] = []
    trace: list[float] = []
    for _ in range(budget):
        gains = index.decrease_estimates(SEEDS, THETA, blocked)
        gains = gains.copy()
        gains[SEEDS] = -1.0
        if blocked:
            gains[blocked] = -1.0
        pick = int(np.argmax(gains))
        blocked.append(pick)
        trace.append(index.expected_spread(SEEDS, THETA, blocked))
    return blocked, trace


class TestPersistRoundTrip:
    def test_cold_build_persists_artifact(self, graph, tmp_path):
        with build(graph, tmp_path) as index:
            index.expected_spread(SEEDS, THETA)
            assert index.stats.persists == 1
            assert index.stats.rehydrations == 0
        names = sketch_files(tmp_path)
        assert sum(n.endswith(".meta.json") for n in names) == 1
        assert sum(n.endswith(".npy") for n in names) == 11

    def test_rehydrate_skips_build_and_matches_bitwise(
        self, graph, tmp_path
    ):
        with build(graph, tmp_path) as cold:
            base_spread = cold.expected_spread(SEEDS, THETA)
            base_gains = cold.decrease_estimates(SEEDS, THETA)
        with build(graph, tmp_path) as warm:
            spread = warm.expected_spread(SEEDS, THETA)
            assert warm.stats.rehydrations == 1
            assert warm.stats.trees_built == 0
            assert spread == base_spread
            assert np.array_equal(
                warm.decrease_estimates(SEEDS, THETA), base_gains
            )

    def test_rehydrated_view_survives_rebase(self, graph, tmp_path):
        """COW promotion: greedy (rebase per round) on a rehydrated
        view is bit-identical to greedy on a memory-only cold index."""
        with build(graph, tmp_path) as cold:
            cold.expected_spread(SEEDS, THETA)  # persist
        reference = build_evaluator(
            graph, EngineSpec(engine="sketch", theta=THETA, seed=11)
        )
        with reference, build(graph, tmp_path) as warm:
            ref_picks, ref_trace = greedy_blockers(reference, 4)
            warm_picks, warm_trace = greedy_blockers(warm, 4)
            assert warm.stats.rehydrations == 1
            assert warm_picks == ref_picks
            assert warm_trace == ref_trace
            # rebase back to the base state: exact base answer again
            assert warm.expected_spread(SEEDS, THETA) == (
                reference.expected_spread(SEEDS, THETA)
            )

    def test_mutation_never_dirties_the_artifact(self, graph, tmp_path):
        with build(graph, tmp_path) as cold:
            base_spread = cold.expected_spread(SEEDS, THETA)
        with build(graph, tmp_path) as warm:
            greedy_blockers(warm, 3)  # promote + mutate the view
        with build(graph, tmp_path) as again:
            # third process generation: artifact still the pristine base
            assert again.expected_spread(SEEDS, THETA) == base_spread
            assert again.stats.rehydrations == 1

    def test_third_load_counts_after_two_generations(
        self, graph, tmp_path
    ):
        with build(graph, tmp_path) as a:
            a.expected_spread(SEEDS, THETA)
            persists = a.stats.persists
        assert persists == 1
        with build(graph, tmp_path) as b:
            b.expected_spread(SEEDS, THETA)
            # rehydrate does not re-save
            assert b.stats.persists == 0


class TestArtifactKeying:
    def test_distinct_seed_sets_get_distinct_artifacts(
        self, graph, tmp_path
    ):
        with build(graph, tmp_path) as index:
            index.expected_spread(SEEDS, THETA)
            index.expected_spread([1], THETA)
        names = sketch_files(tmp_path)
        assert sum(n.endswith(".meta.json") for n in names) == 2

    def test_legacy_layout_is_not_persisted(self, graph, tmp_path):
        with build(graph, tmp_path, layout="legacy") as index:
            index.expected_spread(SEEDS, THETA)
            assert index.stats.persists == 0
        assert sketch_files(tmp_path) == []

    def test_layouts_agree_bitwise(self, graph, tmp_path):
        with build(graph, tmp_path) as arena:
            arena.expected_spread(SEEDS, THETA)
        with build(graph, tmp_path) as warm, build(
            graph, tmp_path, layout="legacy"
        ) as legacy:
            assert np.array_equal(
                warm.decrease_estimates(SEEDS, THETA),
                legacy.decrease_estimates(SEEDS, THETA),
            )
            assert warm.stats.rehydrations == 1

    def test_memory_only_pool_never_persists(self, graph):
        spec = EngineSpec(engine="sketch", theta=THETA, seed=11)
        with build_evaluator(graph, spec) as index:
            index.expected_spread(SEEDS, THETA)
            assert index.stats.persists == 0
            assert index.stats.rehydrations == 0


class TestCorruptionFallback:
    def _persist_one(self, graph, tmp_path):
        with build(graph, tmp_path) as index:
            spread = index.expected_spread(SEEDS, THETA)
        return spread

    def test_truncated_array_falls_back_to_cold_build(
        self, graph, tmp_path
    ):
        spread = self._persist_one(graph, tmp_path)
        victim = next(tmp_path.glob("sketch-*.order.npy"))
        victim.write_bytes(b"not numpy")
        with build(graph, tmp_path) as index:
            assert index.expected_spread(SEEDS, THETA) == spread
            assert index.stats.rehydrations == 0
            assert index.stats.trees_built == THETA
            # the fallback re-persists a good artifact
            assert index.stats.persists == 1
        with build(graph, tmp_path) as again:
            again.expected_spread(SEEDS, THETA)
            assert again.stats.rehydrations == 1

    def test_missing_meta_falls_back_to_cold_build(
        self, graph, tmp_path
    ):
        spread = self._persist_one(graph, tmp_path)
        next(tmp_path.glob("sketch-*.meta.json")).unlink()
        with build(graph, tmp_path) as index:
            assert index.expected_spread(SEEDS, THETA) == spread
            assert index.stats.rehydrations == 0

    def test_format_version_mismatch_falls_back(self, graph, tmp_path):
        spread = self._persist_one(graph, tmp_path)
        meta_path = next(tmp_path.glob("sketch-*.meta.json"))
        meta = json.loads(meta_path.read_text())
        meta["format"] = 999
        meta_path.write_text(json.dumps(meta))
        with build(graph, tmp_path) as index:
            assert index.expected_spread(SEEDS, THETA) == spread
            assert index.stats.rehydrations == 0

    def test_shape_mismatch_falls_back(self, graph, tmp_path):
        spread = self._persist_one(graph, tmp_path)
        victim = next(tmp_path.glob("sketch-*.delta.npy"))
        np.save(victim, np.zeros(3))
        with build(graph, tmp_path) as index:
            assert index.expected_spread(SEEDS, THETA) == spread
            assert index.stats.rehydrations == 0


class TestShardedBuilds:
    @pytest.fixture(scope="class")
    def big_graph(self):
        # above the parallel-build thresholds (n >= 2048, theta >= 64)
        return assign_weighted_cascade(barabasi_albert(2200, 2, rng=1))

    def test_sharded_build_matches_serial_bitwise(
        self, big_graph, tmp_path
    ):
        theta = 64
        serial_spec = EngineSpec(engine="sketch", theta=theta, seed=5)
        sharded_spec = EngineSpec(
            engine="sketch",
            theta=theta,
            seed=5,
            workers=2,
            cache_dir=tmp_path,
        )
        with build_evaluator(big_graph, serial_spec) as serial:
            expected = serial.decrease_estimates([0], theta)
        with build_evaluator(big_graph, sharded_spec) as sharded:
            got = sharded.decrease_estimates([0], theta)
            assert np.array_equal(got, expected)

    def test_sharded_artifact_rehydrates_identically(
        self, big_graph, tmp_path
    ):
        theta = 64
        spec = EngineSpec(
            engine="sketch",
            theta=theta,
            seed=5,
            workers=2,
            cache_dir=tmp_path,
        )
        with build_evaluator(big_graph, spec) as cold:
            expected = cold.decrease_estimates([0], theta)
            assert cold.stats.persists == 1
        with build_evaluator(big_graph, spec) as warm:
            assert np.array_equal(
                warm.decrease_estimates([0], theta), expected
            )
            assert warm.stats.rehydrations == 1


class TestWorkerPoolSampleHandoff:
    def test_builder_receives_pool_paths(self, graph, tmp_path):
        spec = spec_for(tmp_path)
        pool = SamplePool(
            graph,
            rng=spec.seed,
            cache_dir=tmp_path,
            cache_key=spec.cache_key(0),
        )
        pool.get(THETA)
        index = SketchIndex(
            graph, pool=pool, workers=2, cache_dir=tmp_path
        )
        try:
            assert index.builder.sample_paths is not None
        finally:
            index.close()

    def test_memory_pool_has_no_paths(self, graph):
        index = SketchIndex(graph, rng=3)
        try:
            assert index.builder.sample_paths is None
        finally:
            index.close()
