"""Test suite package marker.

Five modules import shared helpers with ``from .conftest import ...``;
the package context this file provides is what makes those relative
imports resolve under ``python -m pytest``.
"""
