"""Tests for the sharded serving tier (``repro.service.frontend``).

The two-tier topology's central contracts, in roughly the order the
request travels:

* ``shard_for`` is a stable pure function of the graph name — the
  same name lands on the same worker across processes, restarts and
  versions, and power-of-two ladders nest (shard at 4 mod 2 is the
  shard at 2).
* Queries through a 2-worker front end are **bit-identical** to a
  single-process serial service: sharding and shard-local coalescing
  are pure routing, never semantics.  LRU eviction inside one shard
  (cache_entries=1, two graphs on one worker) keeps the same property.
* Accounting reconciles: per-worker executor ``submitted ==
  completed`` after concurrent load, and a graph's traffic lands on
  exactly its owning shard.
* Supervision: SIGKILL a worker and the supervisor restarts it; a
  retrying client rides through the crash.
* Graceful drain: every accepted request completes (zero loss),
  late arrivals get the stable ``draining`` error code, the access
  log persists, and a fresh front end prewarms from it.
* The client's bounded retry: exactly one retry, idempotent verbs
  only, covering connection loss and the ``draining`` code.
* Observability plumbing: merged exposition with the ``worker``
  label, ``repro_build_info`` from every process, ``/healthz``
  going 503 when a shard is down, and the recorded
  ``check_bench_regression.py --adopt`` baseline step.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs import (
    install_build_info,
    merge_expositions,
    MetricsRegistry,
    package_version,
    start_metrics_server,
)
from repro.service import (
    BlockerService,
    ConnectionLostError,
    default_registry,
    DrainingError,
    IDEMPOTENT_OPS,
    ServiceClient,
    ServiceError,
    shard_for,
    ShardedFrontend,
    WorkerSpec,
)

SPEC = WorkerSpec(scale=0.05)


def _client(frontend: ShardedFrontend, **kwargs) -> ServiceClient:
    host, port = frontend.address
    kwargs.setdefault("timeout", 60.0)
    return ServiceClient(host, port, **kwargs)


def _wait_for(predicate, timeout: float = 20.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not reached in {timeout:g}s")


def _normalise(response: dict) -> dict:
    assert response["ok"], response
    result = dict(response["result"])
    result.pop("elapsed_seconds", None)
    return result


def _mixed_queries() -> list[dict]:
    """Mixed block/spread on both default graphs, heavy key overlap."""
    queries: list[dict] = []
    for graph in ("toy", "email-core"):
        for i in range(3):
            queries.append({
                "op": "spread",
                "graph": graph,
                "theta": 100,
                "seed": 7,
                "seeds": [0, 1 + i],
                "blocked": [5] if i % 2 else [],
            })
        queries.append({
            "op": "block",
            "graph": graph,
            "theta": 100,
            "seed": 7,
            "seeds": [0, 1],
            "budget": 2,
        })
    return queries


def _serial_reference(queries: list[dict]) -> list[dict]:
    service = BlockerService(registry=default_registry(scale=0.05))
    try:
        return [_normalise(service.handle(q)) for q in queries]
    finally:
        service.close()


# ----------------------------------------------------------------------
# shard_for
# ----------------------------------------------------------------------
class TestShardFor:
    def test_stable_hash_not_builtin_hash(self):
        # the exact reduction is part of the wire contract: restarts
        # and version bumps must not remap the graph-name space
        for name in ("toy", "email-core", "anything"):
            digest = hashlib.md5(name.encode("utf-8")).digest()
            expected = int.from_bytes(digest[:8], "big") % 4
            assert shard_for(name, 4) == expected

    def test_in_range_and_deterministic(self):
        for workers in (1, 2, 3, 4, 7):
            for i in range(50):
                name = f"graph-{i}"
                shard = shard_for(name, workers)
                assert 0 <= shard < workers
                assert shard == shard_for(name, workers)

    def test_power_of_two_ladders_nest(self):
        # the bench relies on this: aliases covering every shard of 4
        # stay perfectly balanced at 2
        for i in range(64):
            name = f"graph-{i}"
            assert shard_for(name, 4) % 2 == shard_for(name, 2)

    def test_single_worker_owns_everything(self):
        assert all(
            shard_for(f"g{i}", 1) == 0 for i in range(10)
        )


# ----------------------------------------------------------------------
# routing, bit-identity, merged observability (one shared topology)
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def frontend2():
    with ShardedFrontend(
        workers=2, worker_spec=SPEC, supervisor_interval=0.1
    ) as frontend:
        yield frontend


class TestShardedRouting:
    def test_ping_is_local_and_v1(self, frontend2):
        with _client(frontend2) as client:
            response = client.request("ping", id="abc")
        assert response["ok"] and response["v"] == 1
        assert response["result"] == "pong"
        assert response["id"] == "abc"
        assert response["trace_id"]

    def test_concurrent_mixed_equals_serial(self, frontend2):
        queries = _mixed_queries() * 3
        serial = _serial_reference(queries)

        results: list[dict | None] = [None] * len(queries)
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(queries))

        def fire(index: int, query: dict) -> None:
            try:
                with _client(frontend2) as client:
                    barrier.wait()
                    results[index] = _normalise(
                        client.request(query["op"], **{
                            k: v for k, v in query.items() if k != "op"
                        })
                    )
            except BaseException as error:  # noqa: BLE001 - reraise
                errors.append(error)

        threads = [
            threading.Thread(target=fire, args=(i, q), daemon=True)
            for i, q in enumerate(queries)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert results == serial  # bit-identical through the shards

    def test_executor_accounting_reconciles(self, frontend2):
        # after the concurrent storm above: every shard's executor
        # retired exactly what it admitted
        with _client(frontend2) as client:
            for graph in ("toy", "email-core"):
                client.spread(
                    graph=graph, theta=100, seed=7, seeds=[0, 1]
                )
        text = frontend2.render_metrics()

        def per_worker(family: str) -> dict[str, float]:
            out: dict[str, float] = {}
            for line in text.splitlines():
                if not line.startswith(f"{family}{{"):
                    continue
                labels = line[line.index("{") + 1 : line.rindex("}")]
                worker = next(
                    part.split("=")[1].strip('"')
                    for part in labels.split(",")
                    if part.startswith("worker=")
                )
                out[worker] = out.get(worker, 0.0) + float(
                    line.rsplit(" ", 1)[1]
                )
            return out

        submitted = per_worker("repro_executor_submitted_total")
        completed = per_worker("repro_executor_completed_total")
        assert submitted  # the storm really went through executors
        assert submitted == completed

    def test_graph_traffic_lands_on_its_shard_only(self, frontend2):
        owner = shard_for("toy", 2)
        with _client(frontend2) as client:
            before = client.stats()
            for _ in range(3):
                client.spread(
                    graph="toy", theta=100, seed=7, seeds=[0, 1]
                )
            after = client.stats()

        def spreads(stats, index):
            worker = stats["workers"][str(index)]
            return (
                worker.get("service", {})
                .get("requests", {})
                .get("spread", 0)
            )

        for index in (0, 1):
            delta = spreads(after, index) - spreads(before, index)
            assert delta == (3 if index == owner else 0)

    def test_merged_stats_shape(self, frontend2):
        with _client(frontend2) as client:
            stats = client.stats()
        assert set(stats["workers"]) == {"0", "1"}
        assert stats["service"]["requests"]  # summed counters
        front = stats["frontend"]
        assert front["draining"] is False
        assert front["workers"]["total"] == 2
        assert front["workers"]["alive"] == 2
        detail = front["workers"]["detail"]
        assert [d["index"] for d in detail] == [0, 1]
        assert all(d["alive"] and d["pid"] for d in detail)

    def test_keyed_stats_routes_to_owner(self, frontend2):
        with _client(frontend2) as client:
            client.warm(graph="toy", theta=100, seed=7)
            keyed = client.call(
                "stats", graph="toy", theta=100, seed=7
            )
        assert keyed["graph"] == "toy"  # one artifact, not the merge
        assert "pool" in keyed and "sketch" in keyed

    def test_merged_exposition_has_worker_label(self, frontend2):
        text = frontend2.render_metrics()
        assert 'worker="frontend"' in text
        assert 'worker="0"' in text and 'worker="1"' in text
        # every process ships repro_build_info exactly once, each
        # with its own worker tag — never a duplicated label
        build = [
            line
            for line in text.splitlines()
            if line.startswith("repro_build_info{")
        ]
        assert len(build) == 3
        assert all(line.count('worker="') == 1 for line in build)

    def test_trace_includes_frontend_route_span(self, frontend2):
        with _client(frontend2) as client:
            response = client.request(
                "spread", graph="toy", theta=100, seed=7,
                seeds=[0, 1], trace=True,
            )
        names = [s["name"] for s in response["trace"]["spans"]]
        assert "frontend.route" in names
        assert "service.evaluate" in names

    def test_unknown_op_comes_back_from_the_shard(self, frontend2):
        with _client(frontend2) as client:
            response = client.request("florble")
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_op"

    def test_health_ok(self, frontend2):
        health = frontend2.health()
        assert health["status"] == "ok"
        assert health["workers"] == {"total": 2, "alive": 2}


# ----------------------------------------------------------------------
# per-shard LRU invariants through the front end
# ----------------------------------------------------------------------
def _same_shard_aliases(workers: int, count: int) -> list[str]:
    """``count`` alias names that all map to shard 0 of ``workers``."""
    names = []
    probe = 0
    while len(names) < count:
        name = f"lru{probe}"
        if shard_for(name, workers) == 0:
            names.append(name)
        probe += 1
    return names


class TestShardLocalLRU:
    def test_eviction_churn_stays_bit_identical(self):
        names = _same_shard_aliases(2, 2)
        spec = WorkerSpec(
            scale=0.05,
            aliases=tuple((n, "email-core") for n in names),
            cache_entries=1,  # every alternation evicts the other
        )
        queries = []
        for round_ in range(3):
            for name in names:
                queries.append({
                    "op": "spread",
                    "graph": name,
                    "theta": 100,
                    "seed": 7,
                    "seeds": [0, round_ + 1],
                })
        with ShardedFrontend(workers=2, worker_spec=spec) as frontend:
            with _client(frontend) as client:
                served = [
                    _normalise(client.request(q["op"], **{
                        k: v for k, v in q.items() if k != "op"
                    }))
                    for q in queries
                ]
                stats = client.stats()
        owner_cache = stats["workers"]["0"]["cache"]
        # the bound held, every alternation rebuilt (no spurious
        # residency), and each build past the first evicted its
        # predecessor — the shard-local LRU invariant
        assert owner_cache["entries"] == 1
        assert owner_cache["stats"]["builds"] == len(queries)
        assert owner_cache["stats"]["evictions"] == len(queries) - 1

        registry = default_registry(scale=0.05)
        for name in names:
            registry.register_dataset(name, "email-core", scale=0.05)
        service = BlockerService(registry=registry)
        try:
            serial = [_normalise(service.handle(q)) for q in queries]
        finally:
            service.close()
        assert served == serial


# ----------------------------------------------------------------------
# crash supervision + client retry riding through it
# ----------------------------------------------------------------------
class TestCrashRestart:
    def test_sigkill_restart_and_retry(self):
        with ShardedFrontend(
            workers=2, worker_spec=SPEC, supervisor_interval=0.05
        ) as frontend:
            with _client(frontend) as client:
                client.warm(graph="toy", theta=100, seed=7)
                stats = client.stats()
            owner = shard_for("toy", 2)
            victim = stats["frontend"]["workers"]["detail"][owner]
            os.kill(victim["pid"], signal.SIGKILL)

            # a retrying client rides through the crash: the first
            # attempt may die mid-request, the retry lands on the
            # restarted (or not-yet-dead) worker
            def query_ok():
                try:
                    with _client(frontend) as client:
                        result = client.spread(
                            graph="toy", theta=100, seed=7,
                            seeds=[0, 1],
                        )
                    return bool(result["spread"] >= 0)
                except Exception:  # noqa: BLE001 - restart window
                    return False

            _wait_for(query_ok)
            stats = _wait_for(lambda: self._settled(frontend))
            front = stats["frontend"]["workers"]
            assert front["alive"] == 2
            assert front["restarts"] == 1
            assert front["detail"][owner]["pid"] != victim["pid"]
            text = frontend.render_metrics()
            assert (
                f'repro_worker_restarts_total{{worker="{owner}"}} 1'
                in text
            )
            assert frontend.health()["status"] == "ok"

    @staticmethod
    def _settled(frontend):
        try:
            with _client(frontend, timeout=10.0) as client:
                stats = client.stats()
        except Exception:  # noqa: BLE001 - restart window
            return None
        workers = stats["frontend"]["workers"]
        if workers["alive"] == workers["total"]:
            return stats
        return None

    def test_degraded_health_while_worker_down(self):
        # a long supervisor interval keeps the shard down while we look
        with ShardedFrontend(
            workers=2, worker_spec=SPEC, supervisor_interval=30.0
        ) as frontend:
            with _client(frontend) as client:
                stats = client.stats()
            victim = stats["frontend"]["workers"]["detail"][0]
            os.kill(victim["pid"], signal.SIGKILL)
            health = _wait_for(
                lambda: (
                    frontend.health()
                    if frontend.health()["status"] == "degraded"
                    else None
                )
            )
            assert health["workers"] == {"total": 2, "alive": 1}


# ----------------------------------------------------------------------
# graceful drain: zero accepted-request loss + access-log persistence
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_zero_loss_and_draining_code(self, tmp_path):
        access_log = tmp_path / "access.json"
        query = {
            "graph": "toy", "theta": 100, "seed": 7, "seeds": [0, 1],
        }
        expected = _serial_reference([{"op": "spread", **query}])[0]

        frontend = ShardedFrontend(
            workers=2, worker_spec=SPEC, access_log=access_log
        ).start()
        accepted: list[dict] = []
        rejected = threading.Event()
        errors: list[BaseException] = []
        stop = threading.Event()
        started = threading.Barrier(5)

        def pound() -> None:
            try:
                with _client(frontend, retry=False) as client:
                    started.wait(timeout=30)
                    while not stop.is_set():
                        result = dict(client.call("spread", **query))
                        result.pop("elapsed_seconds", None)
                        accepted.append(result)
            except (DrainingError, ConnectionLostError,
                    ConnectionError, OSError):
                rejected.set()
            except BaseException as error:  # noqa: BLE001 - reraise
                errors.append(error)

        threads = [
            threading.Thread(target=pound, daemon=True)
            for _ in range(4)
        ]
        try:
            for t in threads:
                t.start()
            started.wait(timeout=30)  # all four clients mid-storm
            time.sleep(0.2)
            frontend.shutdown()
            stop.set()
            for t in threads:
                t.join(timeout=30)
        finally:
            stop.set()
            frontend.shutdown()
        assert not errors, errors
        # zero loss: every accepted request returned the right
        # answer; the drain turned the rest away cleanly
        assert accepted and all(r == expected for r in accepted)
        assert rejected.is_set()
        health = frontend.health()
        assert health["status"] == "draining"
        assert health["workers"]["alive"] == 0

        # the access log persisted the hot key with its count
        payload = json.loads(access_log.read_text(encoding="utf-8"))
        assert payload["v"] == 1
        (entry,) = [
            e for e in payload["keys"] if e["graph"] == "toy"
        ]
        assert entry["count"] == len(accepted)
        assert (entry["model"], entry["theta"]) == ("wc", 100)

    def test_draining_error_after_shutdown_op(self):
        with ShardedFrontend(workers=1, worker_spec=SPEC) as frontend:
            with _client(frontend, retry=False) as client:
                assert client.request("shutdown")["result"] == "bye"
            # the listener may already be closed; if a connection does
            # land, non-ping ops must get the stable draining code
            try:
                with _client(frontend, retry=False) as client:
                    client.spread(**{
                        "graph": "toy", "theta": 100, "seed": 7,
                        "seeds": [0],
                    })
            except (DrainingError, ConnectionError, OSError):
                pass
            else:
                pytest.fail("accepted a query while draining")

    def test_prewarm_from_access_log(self, tmp_path):
        access_log = tmp_path / "access.json"
        access_log.write_text(
            json.dumps({
                "v": 1,
                "keys": [{
                    "graph": "toy", "model": "wc", "theta": 100,
                    "seed": 7, "layout": "arena", "count": 9,
                }],
            }),
            encoding="utf-8",
        )
        with ShardedFrontend(
            workers=2, worker_spec=SPEC, access_log=access_log
        ) as frontend:
            # nobody issues a warm here — the artifact becomes
            # resident on its owning shard purely from the log
            def warmed():
                try:
                    with _client(frontend) as client:
                        return client.call(
                            "stats", graph="toy", theta=100, seed=7
                        )
                except ServiceError:
                    return None

            keyed = _wait_for(warmed)
            assert keyed["graph"] == "toy"
            assert "pool" in keyed


# ----------------------------------------------------------------------
# client bounded retry (no sharded tier needed: scripted socket server)
# ----------------------------------------------------------------------
class _ScriptedServer:
    """One-shot TCP server whose per-connection behaviour is scripted.

    Each element of ``script`` handles one connection: ``"drop"``
    reads the request line then closes without replying; ``"draining"``
    replies with the v1 draining error; ``"ok"`` echoes a pong.
    """

    def __init__(self, script: list[str]) -> None:
        self.script = script
        self.connections = 0
        self.closed = False
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(
            target=self._run,
            name=f"scripted-server-{self.port}",
            daemon=True,
        )
        self.thread.start()

    def _run(self) -> None:
        for action in self.script:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            if self.closed:
                conn.close()
                return
            self.connections += 1
            with conn:
                request = b""
                while not request.endswith(b"\n"):
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    request += chunk
                if not request or action == "drop":
                    continue
                if action == "draining":
                    payload = {
                        "ok": False, "v": 1,
                        "error": {
                            "code": "draining",
                            "message": "draining",
                        },
                    }
                else:
                    payload = {"ok": True, "v": 1, "result": "pong"}
                conn.sendall(
                    json.dumps(payload).encode("utf-8") + b"\n"
                )

    def close(self) -> None:
        # a closed listener does not wake a blocked accept() on
        # Linux — poke one connection through so the thread exits
        self.closed = True
        try:
            socket.create_connection(
                ("127.0.0.1", self.port), timeout=1.0
            ).close()
        except OSError:
            pass
        self.thread.join(timeout=5.0)
        self.sock.close()


@pytest.mark.parametrize("first", ["drop", "draining"])
def test_client_retries_idempotent_once(first):
    server = _ScriptedServer([first, "ok"])
    try:
        with ServiceClient(
            "127.0.0.1", server.port, timeout=10.0, retry_delay=0.01
        ) as client:
            assert client.call("ping") == "pong"
        assert server.connections == 2
    finally:
        server.close()


def test_client_does_not_retry_non_idempotent():
    assert "profile" not in IDEMPOTENT_OPS
    server = _ScriptedServer(["drop", "ok"])
    try:
        with ServiceClient(
            "127.0.0.1", server.port, timeout=10.0, retry_delay=0.01
        ) as client:
            with pytest.raises(ConnectionLostError):
                client.call("profile", action="status")
        assert server.connections == 1
    finally:
        server.close()


def test_client_retry_disabled_surfaces_first_failure():
    server = _ScriptedServer(["draining", "ok"])
    try:
        with ServiceClient(
            "127.0.0.1", server.port, timeout=10.0, retry=False
        ) as client:
            with pytest.raises(DrainingError):
                client.call("ping")
        assert server.connections == 1
    finally:
        server.close()


def test_client_gives_up_after_one_retry():
    server = _ScriptedServer(["drop", "drop", "ok"])
    try:
        with ServiceClient(
            "127.0.0.1", server.port, timeout=10.0, retry_delay=0.01
        ) as client:
            with pytest.raises(ConnectionLostError):
                client.call("ping")
        assert server.connections == 2
    finally:
        server.close()


# ----------------------------------------------------------------------
# observability units: build info, exposition merge, /healthz 503
# ----------------------------------------------------------------------
def test_install_build_info_labels():
    registry = MetricsRegistry()
    install_build_info(registry, worker="7")
    text = registry.render()
    (line,) = [
        ln for ln in text.splitlines()
        if ln.startswith("repro_build_info{")
    ]
    assert f'version="{package_version()}"' in line
    assert f'pid="{os.getpid()}"' in line
    assert 'worker="7"' in line
    assert line.endswith(" 1")


def test_merge_expositions_tags_and_dedups():
    part_a = (
        "# HELP repro_requests_total Requests.\n"
        "# TYPE repro_requests_total counter\n"
        'repro_requests_total{op="spread"} 3\n'
        "repro_pending 1\n"
    )
    part_b = (
        "# HELP repro_requests_total Requests.\n"
        "# TYPE repro_requests_total counter\n"
        'repro_requests_total{op="spread"} 5\n'
    )
    merged = merge_expositions([("0", part_a), ("1", part_b)])
    lines = merged.splitlines()
    assert (
        lines.count("# TYPE repro_requests_total counter") == 1
    )  # first-wins dedup
    assert 'repro_requests_total{worker="0",op="spread"} 3' in lines
    assert 'repro_requests_total{worker="1",op="spread"} 5' in lines
    assert 'repro_pending{worker="0"} 1' in lines


def test_merge_expositions_keeps_existing_worker_label():
    part = 'repro_build_info{worker="3"} 1.0\n'
    merged = merge_expositions([("frontend", part)])
    assert 'repro_build_info{worker="3"} 1.0' in merged.splitlines()


def test_healthz_reports_503_when_degraded():
    registry = MetricsRegistry()
    health = {"status": "ok", "workers": {"total": 2, "alive": 2}}
    server = start_metrics_server(
        port=0, registry=registry, health_fn=lambda: dict(health)
    )
    try:
        url = f"http://127.0.0.1:{server.port}/healthz"
        with urllib.request.urlopen(url) as response:
            assert response.status == 200
            body = json.loads(response.read())
        assert body["workers"]["alive"] == 2

        health["status"] = "degraded"
        health["workers"]["alive"] = 1
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url)
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["status"] == "degraded"
    finally:
        server.shutdown()


# ----------------------------------------------------------------------
# the recorded baseline-adoption step
# ----------------------------------------------------------------------
def _load_checker():
    path = (
        Path(__file__).resolve().parents[1]
        / "benchmarks"
        / "check_bench_regression.py"
    )
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _fake_saturation_report(speedup: float) -> dict:
    return {
        "schema": 2,
        "params": {
            "dataset": "email-core", "scale": 1.0, "model": "wc",
            "theta": 200, "seed": 7, "num_seeds": 5,
            "queries_per_client": 40, "client_ladder": [1, 2],
            "worker_ladder": [1, 2], "p99_bar_multiple": 20.0,
            "profile_hz": 67.0,
        },
        "knee": {"clients": 2, "qps": 100.0},
        "sustained_qps": 100.0,
        "sustained_speedup_vs_serial": speedup,
        "profiler_overhead_pct": 1.0,
        "profile": {"samples": 10},
        "_collapsed_full": "main;work 10",
    }


class TestAdoptBaseline:
    def test_adopt_records_and_then_gates(self, tmp_path, monkeypatch):
        checker = _load_checker()
        monkeypatch.chdir(tmp_path)
        (tmp_path / "benchmarks").mkdir()
        current = tmp_path / "current.json"
        baseline = tmp_path / "benchmarks" / "BENCH_sat.json"
        current.write_text(
            json.dumps(_fake_saturation_report(1.4)), encoding="utf-8"
        )

        assert checker.main(
            [str(current), "--baseline", str(baseline), "--adopt"]
        ) == 0
        adopted = json.loads(baseline.read_text(encoding="utf-8"))
        assert adopted["sustained_speedup_vs_serial"] == 1.4
        assert "_collapsed_full" not in adopted  # provenance, not bulk
        ledger = (tmp_path / "benchmarks" / "BASELINES.md").read_text(
            encoding="utf-8"
        )
        assert "BENCH_sat.json" in ledger
        assert "sustained_speedup_vs_serial=1.4x" in ledger

        # the adopted baseline gates a matching report
        assert checker.main(
            [str(current), "--baseline", str(baseline)]
        ) == 0
        # ... and fails a regressed one beyond tolerance
        current.write_text(
            json.dumps(_fake_saturation_report(0.9)), encoding="utf-8"
        )
        assert checker.main(
            [str(current), "--baseline", str(baseline)]
        ) == 1

    def test_adopt_refuses_kind_mismatch(self, tmp_path, monkeypatch):
        checker = _load_checker()
        monkeypatch.chdir(tmp_path)
        (tmp_path / "benchmarks").mkdir()
        current = tmp_path / "current.json"
        current.write_text(
            json.dumps(_fake_saturation_report(1.0)), encoding="utf-8"
        )
        baseline = tmp_path / "benchmarks" / "BENCH_other.json"
        baseline.write_text(
            json.dumps({"warm_speedup_vs_cold": 2.0,
                        "warm_speedup_vs_cold_inprocess": 2.0,
                        "params": {}}),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit) as excinfo:
            checker.main(
                [str(current), "--baseline", str(baseline), "--adopt"]
            )
        assert excinfo.value.code == 2

    def test_worker_ladder_is_an_identity_param(
        self, tmp_path, monkeypatch
    ):
        checker = _load_checker()
        monkeypatch.chdir(tmp_path)
        (tmp_path / "benchmarks").mkdir()
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_fake_saturation_report(1.0)), encoding="utf-8"
        )
        changed = _fake_saturation_report(1.0)
        changed["params"]["worker_ladder"] = [1, 2, 4]
        current.write_text(json.dumps(changed), encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            checker.main([str(current), "--baseline", str(baseline)])
        assert excinfo.value.code == 2
