"""Unit tests for traversals."""

import random

from repro.graph import (
    bfs_order,
    dfs_preorder,
    DiGraph,
    is_out_tree,
    reachable_set,
    reachable_set_adj,
)

from .conftest import random_digraph


class TestBFS:
    def test_order_starts_with_sources(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert bfs_order(graph, [0]) == [0, 1, 2, 3]

    def test_multiple_sources(self):
        graph = DiGraph.from_edges(5, [(0, 2), (1, 3), (3, 4)])
        order = bfs_order(graph, [0, 1])
        assert order[:2] == [0, 1]
        assert set(order) == {0, 1, 2, 3, 4}

    def test_duplicate_sources_counted_once(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        assert bfs_order(graph, [0, 0]) == [0, 1]

    def test_unreachable_excluded(self):
        graph = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        assert set(bfs_order(graph, [0])) == {0, 1}


class TestDFS:
    def test_preorder_visits_reachable(self):
        graph = DiGraph.from_edges(5, [(0, 1), (0, 2), (1, 3)])
        order = dfs_preorder(graph, 0)
        assert order[0] == 0
        assert set(order) == {0, 1, 2, 3}

    def test_deep_chain_no_recursion_error(self):
        n = 50000
        graph = DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        assert len(dfs_preorder(graph, 0)) == n

    def test_matches_bfs_vertex_set(self):
        rnd = random.Random(5)
        for _ in range(20):
            graph = random_digraph(12, 0.2, rnd)
            assert set(dfs_preorder(graph, 0)) == set(bfs_order(graph, [0]))


class TestReachability:
    def test_blocked_vertices_cut_paths(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert reachable_set(graph, [0], blocked=[1]) == {0}
        assert reachable_set(graph, [0], blocked=[2]) == {0, 1}

    def test_blocked_source_is_unreachable(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        assert reachable_set(graph, [0], blocked=[0]) == set()

    def test_adjacency_variant_agrees(self):
        rnd = random.Random(6)
        for _ in range(20):
            graph = random_digraph(10, 0.25, rnd)
            succ = {u: graph.out_neighbors(u) for u in graph.vertices()}
            assert reachable_set_adj(succ, 0) == reachable_set(graph, [0])


class TestIsOutTree:
    def test_accepts_path_and_star(self):
        path = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        star = DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert is_out_tree(path, 0)
        assert is_out_tree(star, 0)

    def test_rejects_extra_in_edge(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert not is_out_tree(graph, 0)

    def test_rejects_unreachable_vertex(self):
        graph = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        assert not is_out_tree(graph, 0)

    def test_rejects_root_with_in_edge(self):
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        assert not is_out_tree(graph, 0)
