"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing correctness checks:

* the three dominator implementations agree on arbitrary digraphs;
* dominator-subtree sizes equal brute-force ``sigma->u`` (Theorem 6);
* exact spread equals the world-enumeration semantics under blocking
  monotonicity (Theorem 2's monotone half);
* multi-seed unification preserves exact spread;
* the tree DP matches exhaustive search;
* the Lemma 1 estimator is unbiased against exact spread.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import (
    decrease_es_computation,
    exact_blockers,
    optimal_tree_blockers,
    unify_seeds,
)
from repro.dominator import (
    dominator_tree_arrays,
    immediate_dominators,
    immediate_dominators_iterative,
    immediate_dominators_naive,
    subtree_sizes,
)
from repro.graph import DiGraph
from repro.sampling import ICSampler, sigma_through_all
from repro.spread import exact_expected_spread


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def adjacency_graphs(draw, max_n: int = 10):
    """Random adjacency mappings over 0..n-1."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    succ = {}
    for u in range(n):
        nbrs = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                max_size=n,
                unique=True,
            )
        )
        succ[u] = [v for v in nbrs if v != u]
    return succ


@st.composite
def probabilistic_digraphs(draw, max_n: int = 7, max_uncertain: int = 8):
    """Small DiGraphs with a bounded number of probabilistic edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    graph = DiGraph(n)
    uncertain_budget = max_uncertain
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            kind = draw(
                st.sampled_from(["none", "none", "certain", "maybe"])
            )
            if kind == "certain":
                graph.add_edge(u, v, 1.0)
            elif kind == "maybe" and uncertain_budget > 0:
                uncertain_budget -= 1
                graph.add_edge(
                    u, v, draw(st.sampled_from([0.25, 0.5, 0.75]))
                )
    return graph


@st.composite
def random_trees(draw, max_n: int = 10):
    """Out-trees rooted at 0 with probabilistic edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    tree = DiGraph(n)
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        p = draw(st.sampled_from([0.25, 0.5, 1.0]))
        tree.add_edge(parent, v, p)
    return tree


# ----------------------------------------------------------------------
# dominator invariants
# ----------------------------------------------------------------------
@given(adjacency_graphs())
@settings(max_examples=150, deadline=None)
def test_dominator_implementations_agree(succ):
    lt = immediate_dominators(succ, 0)
    iterative = immediate_dominators_iterative(succ, 0)
    naive = immediate_dominators_naive(succ, 0)
    assert lt == iterative == naive


@given(adjacency_graphs())
@settings(max_examples=150, deadline=None)
def test_subtree_sizes_equal_sigma_through(succ):
    """Theorem 6 on arbitrary graphs (not just sampled ones)."""
    order, idom = dominator_tree_arrays(succ, 0)
    sizes = subtree_sizes(idom)
    from_tree = {order[i]: sizes[i] for i in range(1, len(order))}
    assert from_tree == sigma_through_all(succ, 0)


@given(adjacency_graphs())
@settings(max_examples=100, deadline=None)
def test_idom_is_a_proper_dominator(succ):
    """Every vertex's idom must appear in its full dominator set."""
    from repro.dominator import dominator_sets

    idom = immediate_dominators(succ, 0)
    doms = dominator_sets(succ, 0)
    for v, d in idom.items():
        assert d in doms[v] - {v}


# ----------------------------------------------------------------------
# spread invariants
# ----------------------------------------------------------------------
@given(probabilistic_digraphs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_blocking_is_monotone(graph, blocker):
    """Theorem 2 (monotone half): adding a blocker never raises spread."""
    if blocker >= graph.n:
        blocker = graph.n - 1
    if blocker == 0:
        return  # seed cannot be blocked
    base = exact_expected_spread(graph, [0])
    blocked = exact_expected_spread(graph, [0], blocked=[blocker])
    assert blocked <= base + 1e-9


@given(probabilistic_digraphs())
@settings(max_examples=40, deadline=None)
def test_spread_bounds(graph):
    spread = exact_expected_spread(graph, [0])
    assert 1.0 - 1e-9 <= spread <= graph.n + 1e-9


@given(probabilistic_digraphs())
@settings(max_examples=30, deadline=None)
def test_sampled_estimator_tracks_exact(graph):
    """Lemma 1: E[sigma(s, g)] == E({s}, G), within sampling noise."""
    exact = exact_expected_spread(graph, [0])
    result = decrease_es_computation(graph, 0, theta=3000, rng=0)
    tolerance = 4.0 * math.sqrt(graph.n) / math.sqrt(3000) + 0.15
    assert abs(result.spread - exact) <= tolerance


@given(probabilistic_digraphs())
@settings(max_examples=25, deadline=None)
def test_delta_estimates_track_exact_decrease(graph):
    """Theorem 4 via Algorithm 2, within sampling noise."""
    base = exact_expected_spread(graph, [0])
    result = decrease_es_computation(graph, 0, theta=3000, rng=1)
    tolerance = 4.0 * math.sqrt(graph.n) / math.sqrt(3000) + 0.15
    for u in range(1, graph.n):
        exact_delta = base - exact_expected_spread(
            graph, [0], blocked=[u]
        )
        assert abs(float(result.delta[u]) - exact_delta) <= tolerance


@given(
    probabilistic_digraphs(max_n=6),
    st.lists(
        st.integers(min_value=0, max_value=5),
        min_size=2, max_size=3, unique=True,
    ),
)
@settings(max_examples=40, deadline=None)
def test_unification_preserves_spread(graph, seeds):
    seeds = [s for s in seeds if s < graph.n]
    if len(seeds) < 2:
        return
    original = exact_expected_spread(graph, seeds)
    unified = unify_seeds(graph, seeds)
    transformed = exact_expected_spread(unified.graph, [unified.source])
    assert unified.spread_to_original(transformed) == (
        __import__("pytest").approx(original, abs=1e-9)
    )


# ----------------------------------------------------------------------
# optimality invariants
# ----------------------------------------------------------------------
@given(random_trees(), st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_tree_dp_matches_exhaustive(tree, budget):
    dp = optimal_tree_blockers(tree, 0, budget)
    brute = exact_blockers(tree, [0], budget)
    assert abs(dp.spread - brute.spread) < 1e-9


@given(probabilistic_digraphs(max_n=6))
@settings(max_examples=25, deadline=None)
def test_exact_blockers_never_worse_than_any_singleton(graph):
    if graph.n < 3:
        return
    best = exact_blockers(graph, [0], 1)
    for u in range(1, graph.n):
        assert best.spread <= exact_expected_spread(
            graph, [0], blocked=[u]
        ) + 1e-9


# ----------------------------------------------------------------------
# sampler invariants
# ----------------------------------------------------------------------
@given(probabilistic_digraphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_blocked_vertices_never_in_sampled_adjacency(graph, blocker):
    if blocker >= graph.n:
        return
    sampler = ICSampler(graph, rng=0)
    sampler.block([blocker])
    for _ in range(5):
        succ = sampler.sample_adjacency()
        assert blocker not in succ
        for targets in succ.values():
            assert blocker not in targets


@given(probabilistic_digraphs())
@settings(max_examples=30, deadline=None)
def test_block_unblock_roundtrip_restores_distribution(graph):
    if graph.n < 2:
        return
    reference = ICSampler(graph, rng=7)
    roundtrip = ICSampler(graph, rng=7)
    roundtrip.block([1])
    roundtrip.unblock([1])
    # identical RNG state would be too strict; instead compare effective
    # probabilities, which define the sampling distribution
    import numpy as np

    assert np.array_equal(reference._peff, roundtrip._peff)


# ----------------------------------------------------------------------
# edge-blocking invariants
# ----------------------------------------------------------------------
@given(adjacency_graphs(max_n=8))
@settings(max_examples=60, deadline=None)
def test_edge_subdivision_estimator_per_sample(succ):
    """On a deterministic graph, the edge estimator must equal the
    brute-force reachability loss of removing each edge."""
    from collections import deque

    from repro.core import edge_decrease_computation
    from repro.graph import DiGraph
    from repro.sampling import ICSampler

    n = len(succ)
    graph = DiGraph(n)
    for u, nbrs in succ.items():
        for v in nbrs:
            graph.add_edge(u, v, 1.0)
    sampler = ICSampler(graph, rng=0)
    delta, spread = edge_decrease_computation(sampler, 0, theta=1)

    def reach_without(skip_edge):
        seen = {0}
        queue = deque((0,))
        while queue:
            w = queue.popleft()
            for x in succ.get(w, ()):
                if (w, x) != skip_edge and x not in seen:
                    seen.add(x)
                    queue.append(x)
        return len(seen)

    base = reach_without(None)
    assert spread == base
    csr = sampler.csr
    for j in range(csr.m):
        u, v = int(csr.src[j]), int(csr.indices[j])
        assert delta[j] == base - reach_without((u, v))


@given(probabilistic_digraphs(max_n=6))
@settings(max_examples=20, deadline=None)
def test_vertex_blocking_at_least_as_strong_as_one_edge(graph):
    """Blocking a vertex removes all its edges, so the best vertex
    decrease must be >= the best single-edge decrease (exactly)."""
    base = exact_expected_spread(graph, [0])
    best_vertex = max(
        (
            base - exact_expected_spread(graph, [0], blocked=[u])
            for u in range(1, graph.n)
        ),
        default=0.0,
    )
    best_edge = 0.0
    for u, v, _ in list(graph.edges()):
        trimmed = graph.copy()
        trimmed.remove_edge(u, v)
        best_edge = max(
            best_edge, base - exact_expected_spread(trimmed, [0])
        )
    # an edge into u contributes no more than blocking u itself unless
    # the edge points at the seed... which cannot reduce spread at all
    assert best_vertex >= best_edge - 1e-9 or best_edge <= 1e-9
