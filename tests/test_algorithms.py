"""Unit tests for BaselineGreedy, AdvancedGreedy and GreedyReplace."""

import pytest

from repro.core import (
    advanced_greedy,
    baseline_greedy,
    greedy_replace,
)
from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.models import assign_weighted_cascade, LinearThresholdSampler
from repro.spread import exact_expected_spread


class TestBaselineGreedy:
    def test_toy_graph_picks_v5_first(self):
        result = baseline_greedy(
            figure1_graph(), [figure1_seed], budget=1, rounds=800, rng=0
        )
        assert result.blockers == [V(5)]

    def test_budget_two_adds_out_neighbor(self):
        result = baseline_greedy(
            figure1_graph(), [figure1_seed], budget=2, rounds=800, rng=1
        )
        assert result.blockers[0] == V(5)
        assert result.blockers[1] in (V(2), V(4))

    def test_candidate_restriction(self):
        result = baseline_greedy(
            figure1_graph(),
            [figure1_seed],
            budget=1,
            rounds=300,
            rng=2,
            candidates=[V(2), V(4)],
        )
        assert result.blockers[0] in (V(2), V(4))

    def test_evaluation_count(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        result = baseline_greedy(graph, [0], budget=2, rounds=10, rng=3)
        # 1 initial + 3 candidates + 2 remaining candidates
        assert result.evaluations == 1 + 3 + 2

    def test_budget_zero(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        result = baseline_greedy(graph, [0], budget=0, rounds=10, rng=4)
        assert result.blockers == []
        assert result.estimated_spread == 2.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            baseline_greedy(DiGraph(2), [0], budget=-1)


class TestAdvancedGreedy:
    def test_toy_graph_budget_one(self):
        result = advanced_greedy(
            figure1_graph(), [figure1_seed], budget=1, theta=2000, rng=0
        )
        assert result.blockers == [V(5)]
        assert result.estimated_spread == pytest.approx(3.0, abs=0.2)

    def test_toy_graph_budget_two(self):
        result = advanced_greedy(
            figure1_graph(), [figure1_seed], budget=2, theta=2000, rng=1
        )
        assert result.blockers[0] == V(5)
        assert result.blockers[1] in (V(2), V(4))

    def test_round_trace_lengths(self):
        result = advanced_greedy(
            figure1_graph(), [figure1_seed], budget=3, theta=500, rng=2
        )
        assert len(result.blockers) == 3
        assert len(result.round_spreads) == 3
        assert len(result.round_deltas) == 3
        # spreads decrease monotonically across rounds
        assert result.round_spreads == sorted(
            result.round_spreads, reverse=True
        )

    def test_stop_when_exhausted(self):
        # only one useful blocker exists; AG should stop after it
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        result = advanced_greedy(graph, [0], budget=5, theta=50, rng=3)
        assert result.blockers == [1]

    def test_budget_zero_reports_spread(self):
        result = advanced_greedy(
            figure1_graph(), [figure1_seed], budget=0, theta=2000, rng=4
        )
        assert result.blockers == []
        assert result.estimated_spread == pytest.approx(7.66, abs=0.2)

    def test_multi_seed_blockers_in_original_ids(self):
        graph = DiGraph.from_edges(
            6, [(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)]
        )
        result = advanced_greedy(graph, [0, 1], budget=1, theta=200, rng=5)
        assert result.blockers == [2]

    def test_triggering_model_factory(self):
        graph = assign_weighted_cascade(
            DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        )
        result = advanced_greedy(
            graph,
            [0],
            budget=1,
            theta=400,
            rng=6,
            sampler_factory=lambda g, rng: LinearThresholdSampler(g, rng),
        )
        assert len(result.blockers) == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            advanced_greedy(DiGraph(2), [0], budget=-2)


class TestGreedyReplace:
    def test_toy_graph_budget_one_replaces_with_v5(self):
        """Example 4: GR starts from {v2 or v4} and replaces with v5."""
        result = greedy_replace(
            figure1_graph(), [figure1_seed], budget=1, theta=2000, rng=0
        )
        assert result.blockers == [V(5)]

    def test_toy_graph_budget_two_keeps_out_neighbors(self):
        """Example 4: with b=2 the out-neighbours {v2, v4} are optimal."""
        result = greedy_replace(
            figure1_graph(), [figure1_seed], budget=2, theta=2000, rng=1
        )
        assert sorted(result.blockers) == [V(2), V(4)]
        spread = exact_expected_spread(
            figure1_graph(), [figure1_seed], blocked=result.blockers
        )
        assert spread == 1.0

    def test_fill_budget_beyond_out_degree(self):
        # source has 1 out-neighbour but budget 2: fill greedily
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        result = greedy_replace(graph, [0], budget=2, theta=100, rng=2)
        assert result.blockers[0] == 1
        assert len(result.blockers) <= 2

    def test_literal_paper_variant_stops_at_out_degree(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        result = greedy_replace(
            graph, [0], budget=3, theta=100, rng=3, fill_budget=False
        )
        assert result.blockers == [1]

    def test_gr_never_worse_than_out_neighbors_on_toy(self):
        graph = figure1_graph()
        for budget in (1, 2):
            result = greedy_replace(
                graph, [figure1_seed], budget=budget, theta=2000, rng=budget
            )
            gr_spread = exact_expected_spread(
                graph, [figure1_seed], blocked=result.blockers
            )
            # out-neighbour-only spreads from Table III
            on_spread = {1: 6.66, 2: 1.0}[budget]
            assert gr_spread <= on_spread + 0.01

    def test_budget_zero(self):
        result = greedy_replace(
            figure1_graph(), [figure1_seed], budget=0, theta=500, rng=4
        )
        assert result.blockers == []
        assert result.estimated_spread == pytest.approx(7.66, abs=0.3)

    def test_multi_seed(self):
        graph = DiGraph.from_edges(
            7, [(0, 2), (1, 3), (2, 4), (3, 4), (4, 5), (4, 6)]
        )
        result = greedy_replace(graph, [0, 1], budget=1, theta=300, rng=5)
        assert result.blockers == [4]

    def test_triggering_model_factory(self):
        graph = assign_weighted_cascade(
            DiGraph.from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        )
        result = greedy_replace(
            graph,
            [0],
            budget=2,
            theta=300,
            rng=6,
            sampler_factory=lambda g, rng: LinearThresholdSampler(g, rng),
        )
        assert len(result.blockers) == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            greedy_replace(DiGraph(2), [0], budget=-1)


class TestAGvsBGEffectiveness:
    """Section V-C: AG matches BG's effectiveness with r = theta."""

    def test_same_quality_on_toy_graph(self):
        graph = figure1_graph()
        bg = baseline_greedy(graph, [figure1_seed], 2, rounds=600, rng=7)
        ag = advanced_greedy(graph, [figure1_seed], 2, theta=600, rng=8)
        bg_spread = exact_expected_spread(
            graph, [figure1_seed], blocked=bg.blockers
        )
        ag_spread = exact_expected_spread(
            graph, [figure1_seed], blocked=ag.blockers
        )
        assert ag_spread == pytest.approx(bg_spread, abs=1e-9)


class TestReproducibility:
    """Identical seeds must give identical trajectories."""

    def test_advanced_greedy_deterministic(self):
        graph = figure1_graph()
        a = advanced_greedy(graph, [figure1_seed], 3, theta=100, rng=77)
        b = advanced_greedy(graph, [figure1_seed], 3, theta=100, rng=77)
        assert a.blockers == b.blockers
        assert a.round_spreads == b.round_spreads
        assert a.round_deltas == b.round_deltas

    def test_greedy_replace_deterministic(self):
        graph = figure1_graph()
        a = greedy_replace(graph, [figure1_seed], 2, theta=100, rng=78)
        b = greedy_replace(graph, [figure1_seed], 2, theta=100, rng=78)
        assert a.blockers == b.blockers

    def test_baseline_greedy_deterministic(self):
        graph = figure1_graph()
        a = baseline_greedy(graph, [figure1_seed], 2, rounds=50, rng=79)
        b = baseline_greedy(graph, [figure1_seed], 2, rounds=50, rng=79)
        assert a.blockers == b.blockers
        assert a.estimated_spread == b.estimated_spread

    def test_different_seeds_can_differ(self):
        # not a strict requirement, but the rng must actually be used:
        # across many seeds the first-round spread estimates vary
        graph = figure1_graph()
        estimates = {
            round(
                advanced_greedy(
                    graph, [figure1_seed], 1, theta=50, rng=seed
                ).round_spreads[0],
                6,
            )
            for seed in range(8)
        }
        assert len(estimates) > 1
