"""Arena-backed sketch query path: parity, postings, native kernel.

The arena layout (pooled tree arena + inverted membership index) and
the optional compiled tree-build kernel both promise *bit-identical*
answers to the historical per-sample Python path.  These tests pin
that promise down:

* ``build_packed`` (native kernel or Python fallback) against the
  per-sample reference builder, tree for tree;
* arena vs legacy views across blocker-set walks, including the
  shrink -> grow -> shrink sequences GreedyReplace's replacement phase
  produces (blockers removed then re-added), each step cross-checked
  against a cold rebuild;
* the postings construction kernel;
* the byte gauges' failure-injection contract (a builder that dies
  mid-rebase must not strand phantom bytes);
* the bounds checks on ``marginal_gain`` / blocked ids.
"""

import numpy as np
import pytest

from repro.core import greedy_replace, solve_imin
from repro.datasets.toy import figure1_graph, figure1_seed, V
from repro.engine import make_evaluator, postings_csr, SketchIndex
from repro.engine.pool import SamplePool
from repro.engine.treebuild import TreeBuilder
from repro.graph import barabasi_albert, CSRGraph, DiGraph
from repro.models import assign_weighted_cascade
from repro.native import native_build_available, native_build_trees
from repro.rng import ensure_rng


@pytest.fixture
def toy():
    return figure1_graph()


@pytest.fixture(scope="module")
def wc_setup():
    graph = assign_weighted_cascade(barabasi_albert(400, 4, rng=11))
    csr = CSRGraph(graph)
    pool = SamplePool(csr, rng=11)
    pool.get(120)
    return graph, csr, pool


def random_digraph(n, m, rng):
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    for _ in range(m):
        u, v = (int(x) for x in gen.integers(0, n, size=2))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, probability=float(gen.uniform(0.2, 1.0)))
    return graph


# ----------------------------------------------------------------------
# build_packed: native kernel / Python fallback vs per-sample reference
# ----------------------------------------------------------------------
class TestBuildPacked:
    def assert_packed_matches(self, csr, batch, indices, seeds, blocked):
        builder = TreeBuilder(csr)
        lengths, orders, sizes = builder.build_packed(
            batch, indices, seeds, blocked
        )
        reference = builder.build(batch, indices, seeds, blocked)
        assert lengths.shape[0] == len(reference)
        offset = 0
        for length, (order, size) in zip(lengths.tolist(), reference):
            assert length == order.shape[0]
            assert np.array_equal(orders[offset:offset + length], order)
            assert np.array_equal(sizes[offset:offset + length], size)
            offset += length
        assert offset == orders.shape[0] == sizes.shape[0]

    @pytest.mark.parametrize(
        "blocked", [[], [3], [1, 7, 13], list(range(0, 100, 5))]
    )
    def test_full_batch_matches_reference(self, wc_setup, blocked):
        graph, csr, pool = wc_setup
        batch = pool.get(120)
        self.assert_packed_matches(
            csr, batch, range(120), [0, 5, 9], blocked
        )

    def test_subset_indices_match_reference(self, wc_setup):
        graph, csr, pool = wc_setup
        batch = pool.get(120)
        self.assert_packed_matches(
            csr, batch, [2, 17, 17, 63, 119], [4, 8], [12]
        )

    def test_random_digraphs_match_reference(self):
        # cyclic, multi-component graphs with arbitrary probabilities
        for seed in range(4):
            graph = random_digraph(60, 240, seed)
            csr = CSRGraph(graph)
            pool = SamplePool(csr, rng=seed)
            batch = pool.get(40)
            self.assert_packed_matches(
                csr, batch, range(40), [seed % 60, (seed * 7) % 60], [
                    (seed * 13) % 60
                ]
            )

    def test_python_fallback_matches_native(self, wc_setup, monkeypatch):
        if not native_build_available():
            pytest.skip("no compiled kernel on this host")
        graph, csr, pool = wc_setup
        batch = pool.get(120)
        builder = TreeBuilder(csr)
        native = builder.build_packed(batch, range(120), [0, 5], [3])
        assert builder._packed_native
        monkeypatch.setattr(
            "repro.engine.treebuild.native_build_trees",
            lambda *args, **kwargs: None,
        )
        fallback = builder.build_packed(batch, range(120), [0, 5], [3])
        assert not builder._packed_native
        for a, b in zip(native, fallback):
            assert np.array_equal(a, b)

    def test_empty_batch(self, wc_setup):
        graph, csr, pool = wc_setup
        batch = pool.get(120)
        lengths, orders, sizes = TreeBuilder(csr).build_packed(
            batch, [], [0], []
        )
        assert lengths.shape[0] == 0
        assert orders.shape[0] == 0
        assert sizes.shape[0] == 0

    def test_native_kernel_direct_roundtrip(self, wc_setup):
        if not native_build_available():
            pytest.skip("no compiled kernel on this host")
        graph, csr, pool = wc_setup
        batch = pool.get(120)
        mask = np.zeros(csr.n, dtype=np.uint8)
        mask[[3, 9]] = 1
        result = native_build_trees(
            csr.n, csr.indptr, csr.indices, batch.positions,
            batch.offsets, np.arange(120, dtype=np.int64),
            np.asarray([0, 5], dtype=np.int64), mask,
        )
        assert result is not None
        lengths, orders, sizes = result
        assert int(lengths.sum()) == orders.shape[0] == sizes.shape[0]
        # every tree starts at the virtual root and never contains a
        # blocked vertex
        starts = np.zeros(120, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        assert (orders[starts] == csr.n).all()
        assert not np.isin(orders, [3, 9]).any()


# ----------------------------------------------------------------------
# postings construction kernel
# ----------------------------------------------------------------------
class TestPostingsCSR:
    def test_rows_are_ascending_sample_lists(self):
        sample_ids = np.asarray([0, 0, 1, 1, 1, 3], dtype=np.int64)
        vertices = np.asarray([2, 0, 0, 2, 4, 2], dtype=np.int64)
        indptr, samples = postings_csr(sample_ids, vertices, 5)
        assert indptr.tolist() == [0, 2, 2, 5, 5, 6]
        assert samples[0:2].tolist() == [0, 1]  # vertex 0
        assert samples[2:5].tolist() == [0, 1, 3]  # vertex 2
        assert samples[5:6].tolist() == [1]  # vertex 4

    def test_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        indptr, samples = postings_csr(empty, empty, 4)
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert samples.shape[0] == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            postings_csr(
                np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64), 4
            )


# ----------------------------------------------------------------------
# arena vs legacy parity (the tentpole's bit-compatibility contract)
# ----------------------------------------------------------------------
class TestArenaLegacyParity:
    def test_spreads_and_gains_bit_identical(self, wc_setup):
        graph, csr, pool = wc_setup
        theta = 120
        seeds = [0, 5, 9]
        legacy = SketchIndex(csr, pool=pool, layout="legacy")
        arena = SketchIndex(csr, pool=pool, layout="arena")
        walk = [[], [7], [7, 30], [7, 30, 61], [30], [], [61, 100]]
        for blocked in walk:
            assert legacy.expected_spread(
                seeds, theta, blocked
            ) == arena.expected_spread(seeds, theta, blocked)
            assert np.array_equal(
                legacy.decrease_estimates(seeds, theta, blocked),
                arena.decrease_estimates(seeds, theta, blocked),
            )
        assert legacy.stats.rebases == arena.stats.rebases
        assert legacy.stats.trees_built == arena.stats.trees_built
        assert legacy.stats.samples_skipped == arena.stats.samples_skipped

    def test_greedy_replace_selection_identical(self, wc_setup):
        graph, csr, pool = wc_setup
        results = [
            greedy_replace(
                graph, [0, 5], 6, theta=120,
                evaluator=SketchIndex(csr, pool=pool, layout=layout),
            )
            for layout in ("legacy", "arena")
        ]
        assert results[0].blockers == results[1].blockers
        assert results[0].round_deltas == results[1].round_deltas
        assert results[0].estimated_spread == results[1].estimated_spread

    def test_solve_imin_on_toy_matches(self, toy):
        picks = [
            solve_imin(
                toy, [figure1_seed], 2, algorithm="greedy-replace",
                theta=100,
                evaluator=make_evaluator(
                    toy, "sketch", rng=13, layout=layout
                ),
            ).blockers
            for layout in ("legacy", "arena")
        ]
        assert picks[0] == picks[1]

    @pytest.mark.parametrize("layout", ["legacy", "arena"])
    def test_shrink_grow_shrink_matches_cold_rebuild(
        self, wc_setup, layout
    ):
        """Satellite: blockers removed then re-added must leave every
        spread bit-identical to an index built cold at that blocker
        set — for both layouts."""
        graph, csr, pool = wc_setup
        theta = 120
        seeds = [0, 5]
        warm = SketchIndex(csr, pool=pool, layout=layout)
        walk = [
            [], [7, 30, 61], [7], [7, 30, 61, 100], [], [30, 61], [30],
            [7, 30, 61],
        ]
        for blocked in walk:
            warm_spread = warm.expected_spread(seeds, theta, blocked)
            warm_gains = warm.decrease_estimates(seeds, theta, blocked)
            cold = SketchIndex(csr, pool=pool, layout=layout)
            cold.rebased = cold.expected_spread(seeds, theta, blocked)
            assert warm_spread == cold.rebased, blocked
            assert np.array_equal(
                warm_gains, cold.decrease_estimates(seeds, theta, blocked)
            ), blocked
        # the walk exercised both the in-place (shrink) and the
        # appended (grow) arena write-back paths
        if layout == "arena":
            assert warm.stats.rebases >= 6

    def test_arena_growth_appends_and_doubles(self, wc_setup):
        graph, csr, pool = wc_setup
        theta = 60
        seeds = [0, 5]
        arena = SketchIndex(csr, pool=pool, layout="arena")
        arena.expected_spread(seeds, theta, list(range(10, 50)))
        view = next(iter(arena._views.values()))
        cap_before = view._order_arena.shape[0]
        used_before = view._used
        # unblocking regrows every touched tree past its shrunken
        # slot: the rebuilt payloads must append at the arena tail
        arena.expected_spread(seeds, theta, [])
        assert view._used > used_before
        assert view._order_arena.shape[0] >= cap_before
        # and answers still match a cold rebuild exactly
        cold = SketchIndex(csr, pool=pool, layout="arena")
        assert arena.expected_spread(
            seeds, theta
        ) == cold.expected_spread(seeds, theta)


# ----------------------------------------------------------------------
# byte gauges under failure injection (satellite: no stale tree_bytes)
# ----------------------------------------------------------------------
class _ExplodingBuilder:
    """Wraps a TreeBuilder; fails on command."""

    def __init__(self, inner):
        self.inner = inner
        self.explode = False

    def build(self, *args, **kwargs):
        if self.explode:
            raise RuntimeError("injected builder failure")
        return self.inner.build(*args, **kwargs)

    def build_packed(self, *args, **kwargs):
        if self.explode:
            raise RuntimeError("injected builder failure")
        return self.inner.build_packed(*args, **kwargs)

    def close(self):
        self.inner.close()


class TestByteGaugeFailureInjection:
    @pytest.mark.parametrize("layout", ["legacy", "arena"])
    def test_failed_rebase_leaves_gauge_consistent(self, toy, layout):
        sketch = SketchIndex(toy, rng=13, layout=layout)
        sketch.builder = _ExplodingBuilder(sketch.builder)
        sketch.expected_spread([figure1_seed], 80)
        before = sketch.stats.as_dict()
        assert before["tree_bytes"] > 0
        sketch.builder.explode = True
        with pytest.raises(RuntimeError, match="injected"):
            sketch.expected_spread([figure1_seed], 80, [V(5)])
        # the failed rebuild accounted nothing: gauges unchanged, no
        # phantom trees counted
        assert sketch.stats.as_dict() == before
        # and the view recovers: the same query succeeds once the
        # builder does, bit-identical to a cold index
        sketch.builder.explode = False
        recovered = sketch.expected_spread([figure1_seed], 80, [V(5)])
        cold = SketchIndex(toy, rng=13, layout=layout)
        assert recovered == cold.expected_spread(
            [figure1_seed], 80, [V(5)]
        )
        sketch.close()
        assert sketch.stats.tree_bytes == 0
        assert sketch.stats.arena_bytes == 0
        assert sketch.stats.postings_bytes == 0


# ----------------------------------------------------------------------
# bounds checks (satellite: no silent virtual-root reads)
# ----------------------------------------------------------------------
class TestBoundsChecks:
    def test_marginal_gain_rejects_out_of_range(self, toy):
        sketch = SketchIndex(toy, rng=3)
        n = sketch.csr.n
        # v == n is the virtual root's slot: historically a silent 0.0
        for bad in (n, n + 7, -1, -n - 2):
            with pytest.raises(ValueError, match=rf"\[0, {n}\)"):
                sketch.marginal_gain(bad, [figure1_seed], 40)

    def test_marginal_gain_in_range_still_works(self, toy):
        sketch = SketchIndex(toy, rng=3)
        gain = sketch.marginal_gain(V(5), [figure1_seed], 40)
        assert gain >= 0.0

    @pytest.mark.parametrize("layout", ["legacy", "arena"])
    def test_blocked_ids_out_of_range_rejected(self, toy, layout):
        sketch = SketchIndex(toy, rng=3, layout=layout)
        n = sketch.csr.n
        with pytest.raises(ValueError, match=rf"\[0, {n}\)"):
            sketch.expected_spread([figure1_seed], 40, [n])
        with pytest.raises(ValueError, match=rf"\[0, {n}\)"):
            sketch.decrease_estimates([figure1_seed], 40, [-3])

    def test_unknown_layout_rejected(self, toy):
        with pytest.raises(ValueError, match="arena"):
            SketchIndex(toy, rng=3, layout="columnar")
