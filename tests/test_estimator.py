"""Unit tests for sample-size theory and the sampled-spread estimator."""

import math

import pytest

from repro.datasets import figure1_graph, figure1_seed
from repro.graph import DiGraph
from repro.sampling import (
    chernoff_failure_probability,
    estimate_spread_sampled,
    required_samples,
)


class TestRequiredSamples:
    def test_formula_value(self):
        # theta >= l (2 + eps) n ln n / (eps^2 OPT)
        n, eps, opt, exponent = 100, 0.5, 2.0, 1.0
        expected = math.ceil(
            exponent * (2 + eps) * n * math.log(n) / (eps * eps * opt)
        )
        assert required_samples(n, eps, opt, exponent) == expected

    def test_tighter_epsilon_needs_more_samples(self):
        assert required_samples(1000, 0.05, 1.0) > required_samples(
            1000, 0.2, 1.0
        )

    def test_larger_opt_needs_fewer_samples(self):
        assert required_samples(1000, 0.1, 10.0) < required_samples(
            1000, 0.1, 1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            required_samples(1, 0.1, 1.0)
        with pytest.raises(ValueError):
            required_samples(100, 0.0, 1.0)
        with pytest.raises(ValueError):
            required_samples(100, 0.1, 0.0)


class TestChernoffBound:
    def test_decreases_with_theta(self):
        small = chernoff_failure_probability(100, 0.2, 5.0, 100)
        large = chernoff_failure_probability(100, 0.2, 5.0, 10000)
        assert large < small

    def test_capped_at_one(self):
        assert chernoff_failure_probability(10**6, 0.01, 0.001, 1) == 1.0

    def test_theorem5_sample_count_meets_confidence(self):
        n, eps, opt, exponent = 200, 0.3, 2.0, 1.0
        theta = required_samples(n, eps, opt, exponent)
        bound = chernoff_failure_probability(n, eps, opt, theta)
        # the 2x in our two-sided bound keeps us within 2 * n^-l
        assert bound <= 2.0 * n ** (-exponent) + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_failure_probability(100, 0.1, 1.0, 0)


class TestEstimateSpreadSampled:
    def test_matches_exact_on_toy_graph(self):
        estimate = estimate_spread_sampled(
            figure1_graph(), [figure1_seed], theta=20000, rng=0
        )
        assert estimate.mean == pytest.approx(7.66, abs=0.1)
        low, high = estimate.confidence_interval()
        assert low < 7.66 < high

    def test_deterministic_graph_has_zero_error(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        estimate = estimate_spread_sampled(graph, [0], theta=50, rng=1)
        assert estimate.mean == 3.0
        assert estimate.std_error == 0.0

    def test_multiple_seeds_joint_reachability(self):
        graph = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        estimate = estimate_spread_sampled(graph, [0, 2], theta=10, rng=2)
        assert estimate.mean == 4.0

    def test_blocking_reduces_estimate(self):
        graph = figure1_graph()
        blocked = estimate_spread_sampled(
            graph, [figure1_seed], theta=4000, rng=3, blocked=[4]
        )
        assert blocked.mean == pytest.approx(3.0, abs=0.05)

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            estimate_spread_sampled(DiGraph(1), [0], theta=0)
