"""Unit tests for the triggering-model samplers (Section V-E)."""

import numpy as np
import pytest

from repro.graph import CSRGraph, DiGraph
from repro.models import (
    assign_weighted_cascade,
    GeneralTriggeringSampler,
    LinearThresholdSampler,
)
from repro.sampling import EdgeSampler


def wc_graph() -> DiGraph:
    graph = DiGraph.from_edges(
        4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]
    )
    return assign_weighted_cascade(graph)


class TestLinearThresholdSampler:
    def test_at_most_one_in_edge_per_vertex(self):
        sampler = LinearThresholdSampler(wc_graph(), rng=0)
        csr = sampler.csr
        for _ in range(50):
            surviving = sampler.sample_surviving_edges()
            targets = csr.indices[surviving].tolist()
            assert len(targets) == len(set(targets))

    def test_selection_frequency_matches_weights(self):
        # vertex 3 has three in-edges of weight 1/3 each
        sampler = LinearThresholdSampler(wc_graph(), rng=1)
        csr = sampler.csr
        in_edges_of_3 = [
            j for j in range(csr.m) if csr.indices[j] == 3
        ]
        counts = dict.fromkeys(in_edges_of_3, 0)
        rounds = 6000
        for _ in range(rounds):
            for j in sampler.sample_surviving_edges().tolist():
                if j in counts:
                    counts[j] += 1
        for j in in_edges_of_3:
            assert counts[j] / rounds == pytest.approx(1 / 3, abs=0.03)

    def test_weights_above_one_rejected(self):
        graph = DiGraph.from_edges(3, [(0, 2, 0.8), (1, 2, 0.8)])
        with pytest.raises(ValueError, match="sum to at most 1"):
            LinearThresholdSampler(graph)

    def test_sub_stochastic_weights_allow_no_selection(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.3)])
        sampler = LinearThresholdSampler(graph, rng=2)
        hits = sum(
            len(sampler.sample_surviving_edges()) for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_blocked_vertex_receives_nothing(self):
        sampler = LinearThresholdSampler(wc_graph(), rng=3)
        sampler.block([3])
        csr = sampler.csr
        for _ in range(30):
            targets = csr.indices[sampler.sample_surviving_edges()]
            assert 3 not in targets

    def test_unblock_restores_selection(self):
        sampler = LinearThresholdSampler(wc_graph(), rng=4)
        sampler.block([3])
        sampler.unblock([3])
        csr = sampler.csr
        seen_3 = any(
            3 in csr.indices[sampler.sample_surviving_edges()]
            for _ in range(50)
        )
        assert seen_3

    def test_explicit_weight_vector(self):
        graph = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
        csr = CSRGraph(graph)
        weights = np.array([1.0, 0.0])
        sampler = LinearThresholdSampler(graph, rng=5, weights=weights)
        for _ in range(20):
            surviving = sampler.sample_surviving_edges()
            assert surviving.tolist() == [0]

    def test_wrong_weight_shape_rejected(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError, match="one entry per edge"):
            LinearThresholdSampler(graph, weights=np.array([0.1, 0.2]))

    def test_empty_graph(self):
        sampler = LinearThresholdSampler(DiGraph(3), rng=6)
        assert sampler.sample_surviving_edges().size == 0

    def test_implements_protocol(self):
        assert isinstance(
            LinearThresholdSampler(wc_graph(), rng=0), EdgeSampler
        )


class TestGeneralTriggeringSampler:
    def test_full_triggering_set_keeps_all_edges(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        sampler = GeneralTriggeringSampler(
            graph, draw=lambda v, sources, gen: sources, rng=0
        )
        assert sampler.sample_surviving_edges().tolist() == [0, 1, 2]

    def test_empty_triggering_set_removes_all_edges(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2)])
        sampler = GeneralTriggeringSampler(
            graph, draw=lambda v, sources, gen: (), rng=1
        )
        assert sampler.sample_surviving_edges().size == 0

    def test_blocked_target_and_source_excluded(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        sampler = GeneralTriggeringSampler(
            graph, draw=lambda v, sources, gen: sources, rng=2
        )
        sampler.block([1])
        surviving = sampler.sample_surviving_edges()
        csr = sampler.csr
        for j in surviving.tolist():
            assert csr.indices[j] != 1
            assert csr.src[j] != 1

    def test_unblock(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        sampler = GeneralTriggeringSampler(
            graph, draw=lambda v, sources, gen: sources, rng=3
        )
        sampler.block([1])
        assert sampler.sample_surviving_edges().size == 0
        sampler.unblock([1])
        assert sampler.sample_surviving_edges().size == 1

    def test_probabilistic_draw_uses_rng(self):
        graph = DiGraph.from_edges(2, [(0, 1)])

        def draw(v, sources, gen):
            return [s for s in sources if gen.random() < 0.25]

        sampler = GeneralTriggeringSampler(graph, draw=draw, rng=4)
        hits = sum(
            sampler.sample_surviving_edges().size for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)
