"""Unit tests for the edge-blocking variant."""

import pytest

from repro.core import (
    edge_decrease_computation,
    greedy_edge_blocking,
)
from repro.datasets import figure1_graph, figure1_seed, V
from repro.graph import DiGraph
from repro.sampling import ICSampler
from repro.spread import exact_expected_spread


def edge_removal_spread(graph, seeds, edges) -> float:
    """Exact spread after removing explicit edges (test oracle)."""
    trimmed = graph.copy()
    for u, v in edges:
        trimmed.remove_edge(u, v)
    return exact_expected_spread(trimmed, seeds)


class TestEdgeDecreaseComputation:
    def test_deterministic_chain(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sampler = ICSampler(graph, rng=0)
        delta, spread = edge_decrease_computation(sampler, 0, theta=5)
        assert spread == 4.0
        # removing edge (0,1) strands 3 vertices, (1,2) two, (2,3) one
        assert delta.tolist() == [3.0, 2.0, 1.0]

    def test_parallel_paths_share_no_dominance(self):
        graph = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        sampler = ICSampler(graph, rng=1)
        delta, _ = edge_decrease_computation(sampler, 0, theta=5)
        # each branch edge only strands its own middle vertex target
        assert delta.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_matches_exact_removal_on_toy_graph(self):
        graph = figure1_graph()
        sampler = ICSampler(graph, rng=2)
        delta, _ = edge_decrease_computation(sampler, figure1_seed, 20000)
        csr = sampler.csr
        base = exact_expected_spread(graph, [figure1_seed])
        for j in range(csr.m):
            u, v = int(csr.src[j]), int(csr.indices[j])
            exact_delta = base - edge_removal_spread(
                graph, [figure1_seed], [(u, v)]
            )
            assert float(delta[j]) == pytest.approx(
                exact_delta, abs=0.06
            ), f"edge ({u}, {v})"

    def test_blocked_edges_excluded(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        sampler = ICSampler(graph, rng=3)
        delta, spread = edge_decrease_computation(
            sampler, 0, theta=5, blocked_edges=[0]
        )
        assert spread == 1.0
        assert delta.tolist() == [0.0, 0.0]

    def test_invalid_theta(self):
        sampler = ICSampler(DiGraph.from_edges(2, [(0, 1)]), rng=4)
        with pytest.raises(ValueError):
            edge_decrease_computation(sampler, 0, theta=0)


class TestGreedyEdgeBlocking:
    def test_chain_picks_first_edge(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        result = greedy_edge_blocking(graph, [0], 1, theta=50, rng=0)
        assert result.edges == [(0, 1)]
        assert result.estimated_spread == pytest.approx(1.0)

    def test_toy_graph_single_edge_optimal(self):
        graph = figure1_graph()
        result = greedy_edge_blocking(
            graph, [figure1_seed], 1, theta=3000, rng=1
        )
        base = exact_expected_spread(graph, [figure1_seed])
        best_exact = min(
            edge_removal_spread(graph, [figure1_seed], [(u, v)])
            for u, v, _ in graph.edges()
        )
        achieved = edge_removal_spread(
            graph, [figure1_seed], result.edges
        )
        assert achieved == pytest.approx(best_exact, abs=0.01)
        assert achieved < base

    def test_multiple_edges_monotone_improvement(self):
        graph = figure1_graph()
        spreads = []
        for budget in (1, 2, 3):
            result = greedy_edge_blocking(
                graph, [figure1_seed], budget, theta=1500, rng=2
            )
            spreads.append(
                edge_removal_spread(graph, [figure1_seed], result.edges)
            )
        assert spreads == sorted(spreads, reverse=True)

    def test_multi_seed_seed_edges_reported_with_placeholder(self):
        # blocking the unified-source edge corresponds to severing all
        # seed influence on that target: reported as (-1, target)
        graph = DiGraph.from_edges(4, [(0, 2), (1, 2), (2, 3)])
        result = greedy_edge_blocking(graph, [0, 1], 1, theta=200, rng=3)
        assert result.edges[0] in [(-1, 2), (2, 3)]

    def test_budget_zero(self):
        graph = figure1_graph()
        result = greedy_edge_blocking(
            graph, [figure1_seed], 0, theta=1000, rng=4
        )
        assert result.edges == []
        assert result.estimated_spread == pytest.approx(7.66, abs=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_edge_blocking(DiGraph(2), [0], -1)
