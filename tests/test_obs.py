"""repro.obs: registry exactness, exposition bytes, spans, ops surface.

The metrics registry's whole claim is *exact* counts under the
concurrent load the service exists to measure, so the concurrency
tests assert equality, not approximation; the exposition tests pin
output bytes (scrapers parse them — the text format is a contract);
the trace tests pin nesting, exception safety and the explicit
cross-thread handoff; and the service-level tests drive the ops
surface (trace_id echo, `metrics` op, slow-query log, HTTP listener)
through the real request path.
"""

from __future__ import annotations

import gc
import io
import json
import threading
import urllib.request

import pytest

from repro.obs import (
    CONTENT_TYPE,
    EventLog,
    format_trace,
    install_standard_collectors,
    iter_spans,
    MetricsRegistry,
    new_trace,
    span,
    start_metrics_server,
    track,
    tracked,
    use_trace,
)
from repro.service import BlockerService, default_registry


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def graphs():
    return default_registry(scale=0.05)


@pytest.fixture()
def service(graphs):
    service = BlockerService(
        registry=graphs, metrics=MetricsRegistry(), slow_ms=0.0
    )
    try:
        yield service
    finally:
        service.close()


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create(self, registry):
        a = registry.counter("repro_x_total", "help")
        b = registry.counter("repro_x_total")
        assert a is b
        a.inc()
        a.inc(2.5)
        assert b.value == 3.5

    def test_counters_only_go_up(self, registry):
        counter = registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_kind_conflict_rejected(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_label_schema_conflict_rejected(self, registry):
        registry.counter("repro_x_total", labels=("op",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labels=("verb",))

    def test_labeled_children_independent(self, registry):
        family = registry.counter("repro_x_total", labels=("op",))
        family.labels("a").inc()
        family.labels("b").inc(4)
        assert family.labels("a").value == 1
        assert family.labels("b").value == 4

    def test_label_arity_checked(self, registry):
        family = registry.counter("repro_x_total", labels=("op",))
        with pytest.raises(ValueError, match="label"):
            family.labels("a", "b")
        with pytest.raises(ValueError, match="labeled"):
            family.inc()

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "1abc", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_histogram_buckets_cumulative(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        counts, total_sum, count = histogram._default.snapshot()
        # le=0.1 catches 0.05 and the boundary value 0.1
        assert counts == [2, 3, 4]
        assert count == 4
        assert total_sum == pytest.approx(2.65)

    def test_histogram_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro_lat_seconds", buckets=(1.0, 0.1))
        with pytest.raises(ValueError):
            registry.histogram("repro_lat2_seconds", buckets=())

    def test_callback_collector(self, registry):
        registry.register_callback(
            "repro_cb", "help", lambda: 7.0, kind="gauge"
        )
        entry = [f for f in registry.collect() if f["name"] == "repro_cb"]
        assert entry[0]["samples"] == [((), (), "", 7.0)]

    def test_callback_name_collision_rejected(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.register_callback("repro_x_total", "", lambda: 0)


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2000

    def test_counter_exact_under_threads(self, registry):
        counter = registry.counter("repro_x_total")
        labeled = registry.counter("repro_y_total", labels=("op",))

        def work():
            for _ in range(self.PER_THREAD):
                counter.inc()
                labeled.labels("a").inc()

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.THREADS * self.PER_THREAD
        assert counter.value == expected
        assert labeled.labels("a").value == expected

    def test_histogram_exact_under_threads(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", buckets=(0.5,)
        )

        def work():
            for _ in range(self.PER_THREAD):
                histogram.observe(0.25)

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts, total_sum, count = histogram._default.snapshot()
        expected = self.THREADS * self.PER_THREAD
        assert count == expected
        assert counts == [expected, expected]
        assert total_sum == pytest.approx(0.25 * expected)


# ----------------------------------------------------------------------
# exposition bytes (the scrape contract)
# ----------------------------------------------------------------------
class TestExposition:
    def test_golden_counter_gauge(self, registry):
        registry.counter("repro_q_total", "Queries answered.").inc(3)
        registry.gauge("repro_depth", "Queue depth.").set(2.5)
        assert registry.render() == (
            "# HELP repro_depth Queue depth.\n"
            "# TYPE repro_depth gauge\n"
            "repro_depth 2.5\n"
            "# HELP repro_q_total Queries answered.\n"
            "# TYPE repro_q_total counter\n"
            "repro_q_total 3\n"
        )

    def test_golden_histogram(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        assert registry.render() == (
            "# HELP repro_lat_seconds Latency.\n"
            "# TYPE repro_lat_seconds histogram\n"
            'repro_lat_seconds_bucket{le="0.1"} 1\n'
            'repro_lat_seconds_bucket{le="1"} 2\n'
            'repro_lat_seconds_bucket{le="+Inf"} 2\n'
            "repro_lat_seconds_sum 0.55\n"
            "repro_lat_seconds_count 2\n"
        )

    def test_golden_labels_and_escaping(self, registry):
        family = registry.counter(
            "repro_q_total", 'Help with \\ and\nnewline', labels=("op",)
        )
        family.labels('we"ird\nname').inc()
        assert registry.render() == (
            "# HELP repro_q_total Help with \\\\ and\\nnewline\n"
            "# TYPE repro_q_total counter\n"
            'repro_q_total{op="we\\"ird\\nname"} 1\n'
        )

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""

    def test_content_type_pinned(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


# ----------------------------------------------------------------------
# tracked stats objects + standard collectors
# ----------------------------------------------------------------------
class TestTracked:
    class _Stats:
        def __init__(self, value):
            self.payload = value

    def test_track_and_drop(self):
        obj = self._Stats(5)
        track("test_kind_drop", obj)
        assert obj in tracked("test_kind_drop")
        del obj
        gc.collect()
        assert tracked("test_kind_drop") == []

    def test_install_standard_collectors_idempotent(self, registry):
        install_standard_collectors(registry)
        install_standard_collectors(registry)  # no duplicate error
        names = {f["name"] for f in registry.collect()}
        assert "repro_sketch_arena_bytes" in names
        assert "repro_cache_hits_total" in names
        assert "repro_pool_samples_generated_total" in names


# ----------------------------------------------------------------------
# spans and traces
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_a_tree(self):
        trace = new_trace("t1")
        with use_trace(trace):
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        tree = trace.as_dict()
        assert tree["trace_id"] == "t1"
        (outer,) = tree["spans"]
        assert outer["name"] == "outer"
        assert [c["name"] for c in outer["children"]] == [
            "inner", "inner2",
        ]
        assert outer["duration_ms"] >= 0.0

    def test_exception_marks_error_and_reraises(self):
        trace = new_trace()
        with pytest.raises(RuntimeError, match="boom"):
            with use_trace(trace), span("failing"):
                raise RuntimeError("boom")
        (node,) = trace.as_dict()["spans"]
        assert node["error"] is True

    def test_span_without_trace_is_silent(self):
        with span("untraced"):
            pass  # no contextvar leak, nothing to assert beyond no-raise
        trace = new_trace()
        with use_trace(trace):
            pass
        assert trace.as_dict()["spans"] == []

    def test_use_trace_none_is_noop(self):
        with use_trace(None):
            with span("anything"):
                pass

    def test_cross_thread_handoff_is_explicit(self):
        trace = new_trace()
        seen: list = []

        def worker():
            # without use_trace, the worker thread has no active trace
            with span("worker.phase"):
                pass
            seen.append(len(trace.as_dict()["spans"]))
            with use_trace(trace), span("worker.traced"):
                pass

        with use_trace(trace):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [0]
        assert [s["name"] for s in trace.as_dict()["spans"]] == [
            "worker.traced"
        ]

    def test_add_span_and_summary(self):
        trace = new_trace()
        trace.add_span("queue_wait", 1.5)
        trace.add_span("queue_wait", 2.5)
        summary = trace.summary()
        assert summary["queue_wait"]["count"] == 2
        assert summary["queue_wait"]["total_ms"] == pytest.approx(4.0)

    def test_format_and_iter(self):
        trace = new_trace("abc")
        with use_trace(trace), span("outer"), span("inner"):
            pass
        rendered = format_trace(trace.as_dict())
        assert rendered.splitlines()[0] == "trace abc"
        assert "outer" in rendered and "inner" in rendered
        assert [n["name"] for n in iter_spans(trace.as_dict())] == [
            "outer", "inner",
        ]

    def test_spans_feed_the_global_histogram(self):
        from repro.obs import global_registry

        family = global_registry().histogram(
            "repro_span_duration_seconds",
            labels=("span",),
        )
        before = family.labels("test.obs.probe").count
        with span("test.obs.probe"):
            pass
        assert family.labels("test.obs.probe").count == before + 1


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_json_mode_one_object_per_line(self):
        sink = io.StringIO()
        log = EventLog(stream=sink, json_mode=True)
        log.event("request", trace_id="t1", op="spread",
                  duration_ms=1.25, skipped=None)
        record = json.loads(sink.getvalue())
        assert record["event"] == "request"
        assert record["trace_id"] == "t1"
        assert record["op"] == "spread"
        assert record["duration_ms"] == 1.25
        assert "skipped" not in record  # None fields dropped
        assert "ts" in record

    def test_human_mode(self):
        sink = io.StringIO()
        log = EventLog(stream=sink, json_mode=False)
        log.event("listening", host="127.0.0.1", port=7727)
        assert sink.getvalue() == (
            "repro.service listening host=127.0.0.1 port=7727\n"
        )

    def test_disabled_log_writes_nothing(self):
        sink = io.StringIO()
        log = EventLog(stream=sink, enabled=False)
        log.event("request", op="spread")
        assert sink.getvalue() == ""


# ----------------------------------------------------------------------
# service ops surface
# ----------------------------------------------------------------------
class TestServiceObservability:
    def test_server_assigns_trace_id(self, service):
        response = service.handle({"op": "ping"})
        assert isinstance(response["trace_id"], str)
        assert response["trace_id"]
        assert "trace" not in response  # only attached on request

    def test_client_trace_id_echoed(self, service):
        response = service.handle({"op": "ping", "trace_id": "mine-42"})
        assert response["trace_id"] == "mine-42"

    def test_non_string_trace_id_replaced(self, service):
        response = service.handle({"op": "ping", "trace_id": 123})
        assert isinstance(response["trace_id"], str)
        assert response["trace_id"] != "123"

    def test_trace_attached_on_request(self, service):
        response = service.handle(
            {"op": "spread", "graph": "toy", "seeds": [0], "trace": True}
        )
        assert response["ok"], response
        names = [n["name"] for n in iter_spans(response["trace"])]
        assert "service.resolve" in names
        assert "service.queue_wait" in names
        assert "service.evaluate" in names

    def test_error_responses_carry_trace_id(self, service):
        response = service.handle({"op": "teleport"})
        assert not response["ok"]
        assert response["trace_id"]

    def test_metrics_op_exposition(self, service):
        service.handle({"op": "spread", "graph": "toy", "seeds": [0]})
        response = service.handle({"op": "metrics"})
        assert response["ok"]
        text = response["result"]
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{op="spread"} 1' in text
        assert (
            'repro_request_duration_seconds_count{op="spread"} 1' in text
        )
        assert "# TYPE repro_cache_builds_total counter" in text

    def test_request_metrics_count_errors(self, service):
        service.handle({"op": "teleport"})
        assert service.metrics.counter(
            "repro_request_errors_total"
        ).value == 1

    def test_slow_query_log(self, service):
        # slow_ms=0.0: every request is slow by definition
        response = service.handle(
            {"op": "spread", "graph": "toy", "seeds": [0],
             "trace_id": "slow-1"}
        )
        assert response["ok"]
        stats = service.handle({"op": "stats"})["result"]
        slow = stats["slow_queries"]
        assert any(r["trace_id"] == "slow-1" for r in slow)
        record = [r for r in slow if r["trace_id"] == "slow-1"][0]
        assert record["op"] == "spread"
        assert record["graph"] == "toy"
        assert record["duration_ms"] >= 0.0
        assert "service.evaluate" in record["phases"]
        assert service.metrics.counter(
            "repro_slow_queries_total"
        ).value >= 1

    def test_no_slow_log_when_disabled(self, graphs):
        service = BlockerService(
            registry=graphs, metrics=MetricsRegistry(), slow_ms=None
        )
        try:
            service.handle({"op": "ping"})
            stats = service.handle({"op": "stats"})["result"]
            assert stats["slow_queries"] == []
        finally:
            service.close()

    def test_slow_ring_under_concurrent_writers(self, service):
        """The slow-query ring under many handler threads: bounded at
        its maxlen, no torn entries (every record fully formed), and
        eviction is oldest-first — exactly the newest ``maxlen``
        requests survive."""
        writers, per_writer = 8, 20  # 160 > the ring's 64 slots
        total = writers * per_writer
        barrier = threading.Barrier(writers)
        errors: list[BaseException] = []

        def worker(idx: int) -> None:
            try:
                barrier.wait()
                for q in range(per_writer):
                    service.handle({
                        "op": "ping",
                        "trace_id": f"slow-{idx * per_writer + q:04d}",
                    })
            except BaseException as error:  # noqa: BLE001 - surface
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        with service._slow_lock:
            ring = list(service.slow_queries)
        maxlen = service.slow_queries.maxlen
        assert maxlen == 64
        assert len(ring) == maxlen  # bounded despite 160 writes
        required = {
            "trace_id", "op", "graph", "duration_ms", "ok", "phases",
        }
        for record in ring:  # no torn entries
            assert required <= record.keys(), record
            assert record["op"] == "ping"
            assert record["ok"] is True
        # per-writer order is preserved through the ring (each writer
        # appends its requests in issue order; the lock serialises
        # appends, so a writer's own sequence can never invert), and
        # the globally newest record is necessarily some writer's
        # final request — nothing was appended after it
        by_writer: dict[int, list[int]] = {}
        for record in ring:
            number = int(record["trace_id"].rsplit("-", 1)[1])
            by_writer.setdefault(number // per_writer, []).append(number)
        for sequence in by_writer.values():
            assert sequence == sorted(sequence)
        newest = int(ring[-1]["trace_id"].rsplit("-", 1)[1])
        assert newest % per_writer == per_writer - 1
        assert (
            service.metrics.counter("repro_slow_queries_total").value
            == total
        )
        # eviction is oldest-first: after exactly maxlen sequential
        # requests, the ring holds those and only those, in order
        for q in range(maxlen):
            service.handle({"op": "ping", "trace_id": f"tail-{q:03d}"})
        with service._slow_lock:
            tail = [r["trace_id"] for r in service.slow_queries]
        assert tail == [f"tail-{q:03d}" for q in range(maxlen)]

    def test_request_events_logged(self, graphs):
        sink = io.StringIO()
        service = BlockerService(
            registry=graphs,
            metrics=MetricsRegistry(),
            log=EventLog(stream=sink, json_mode=True),
        )
        try:
            service.handle({"op": "ping", "trace_id": "log-1"})
        finally:
            service.close()
        record = json.loads(sink.getvalue().splitlines()[0])
        assert record["event"] == "request"
        assert record["trace_id"] == "log-1"
        assert record["op"] == "ping"
        assert record["ok"] is True
        assert record["duration_ms"] >= 0.0


class TestMetricsHTTP:
    def test_scrape_and_health(self, registry):
        registry.counter("repro_probe_total", "Probe.").inc()
        server = start_metrics_server(port=0, registry=registry)
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode()
            assert "repro_probe_total 1" in body
            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "application/json"
                )
                health = json.loads(response.read())
            assert health["status"] == "ok"
            assert health["uptime_seconds"] >= 0.0
            assert isinstance(health["version"], str)
            assert health["python"].count(".") == 2
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
