"""Unit tests for the RNG plumbing."""

import random

import numpy as np

from repro.rng import ensure_rng, python_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestPythonRng:
    def test_returns_stdlib_random(self):
        assert isinstance(python_rng(0), random.Random)

    def test_derived_deterministically(self):
        a = python_rng(7).random()
        b = python_rng(7).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert python_rng(1).random() != python_rng(2).random()


class TestSpawnRng:
    def test_child_stream_differs_from_parent_continuation(self):
        parent = np.random.default_rng(3)
        child = spawn_rng(parent)
        continuation = parent.random(4)
        assert not np.array_equal(child.random(4), continuation)

    def test_deterministic_given_parent_state(self):
        a = spawn_rng(np.random.default_rng(5)).random(3)
        b = spawn_rng(np.random.default_rng(5)).random(3)
        assert np.array_equal(a, b)
