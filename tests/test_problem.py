"""Unit tests for the IMIN instance and multi-seed unification."""

import pytest

from repro.core import IMINInstance, unify_seeds
from repro.graph import DiGraph
from repro.spread import exact_expected_spread


class TestIMINInstance:
    def test_candidates_exclude_seeds(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        instance = IMINInstance(graph, (0, 2), budget=1)
        assert instance.candidates == [1, 3]

    def test_validation(self):
        graph = DiGraph(3)
        with pytest.raises(ValueError):
            IMINInstance(graph, (0,), budget=-1)
        with pytest.raises(ValueError):
            IMINInstance(graph, (), budget=1)
        with pytest.raises(IndexError):
            IMINInstance(graph, (9,), budget=1)
        with pytest.raises(ValueError):
            IMINInstance(graph, (0, 0), budget=1)

    def test_oversized_budget_rejected(self):
        # historically the frozen dataclass silently clamped the
        # budget via object.__setattr__; an impossible budget is now a
        # validation error like every other impossible parameter
        graph = DiGraph(3)
        with pytest.raises(ValueError, match="exceeds the 2 non-seed"):
            IMINInstance(graph, (0,), budget=10)

    def test_budget_equal_to_candidate_count_accepted(self):
        graph = DiGraph(3)
        instance = IMINInstance(graph, (0,), budget=2)
        assert instance.budget == 2


class TestSingleSeedUnification:
    def test_identity_transform(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        unified = unify_seeds(graph, [0])
        assert unified.graph is graph
        assert unified.source == 0
        assert unified.spread_offset == 0.0
        assert unified.blockers_to_original([2]) == [2]
        assert unified.spread_to_original(5.0) == 5.0


class TestMultiSeedUnification:
    def test_structure(self):
        # seeds 0 and 1 both point at 2; 2 -> 3
        graph = DiGraph.from_edges(
            4, [(0, 2, 0.5), (1, 2, 0.5), (2, 3, 1.0)]
        )
        unified = unify_seeds(graph, [0, 1])
        assert unified.graph.n == 3  # vertices {2, 3} + source
        assert unified.source == 2
        source_edges = dict(unified.graph.successors(unified.source))
        # noisy-or: 1 - 0.5 * 0.5 = 0.75
        assert source_edges[unified.from_original[2]] == pytest.approx(0.75)

    def test_edges_into_seeds_dropped(self):
        graph = DiGraph.from_edges(3, [(0, 1), (2, 0), (1, 2)])
        unified = unify_seeds(graph, [0])
        # single seed: identity — try with two seeds
        graph2 = DiGraph.from_edges(4, [(0, 2), (1, 2), (2, 0), (3, 1)])
        unified2 = unify_seeds(graph2, [0, 1])
        for u, v, _ in unified2.graph.edges():
            assert unified2.to_original[v] is not None or v == unified2.source
            assert u != unified2.from_original[2] or v != unified2.source

    def test_seed_to_seed_edges_dropped(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        unified = unify_seeds(graph, [0, 1])
        assert unified.graph.m == 1  # only source -> 2

    def test_spread_preserved_exactly(self):
        graph = DiGraph.from_edges(
            6,
            [
                (0, 2, 0.5),
                (1, 2, 0.4),
                (1, 3, 1.0),
                (2, 4, 0.5),
                (3, 4, 0.25),
                (4, 5, 1.0),
            ],
        )
        seeds = [0, 1]
        original = exact_expected_spread(graph, seeds)
        unified = unify_seeds(graph, seeds)
        transformed = exact_expected_spread(
            unified.graph, [unified.source]
        )
        assert unified.spread_to_original(transformed) == pytest.approx(
            original
        )

    def test_spread_preserved_under_blocking(self):
        graph = DiGraph.from_edges(
            5,
            [(0, 2, 0.5), (1, 2, 0.5), (2, 3, 0.5), (2, 4, 1.0)],
        )
        seeds = [0, 1]
        unified = unify_seeds(graph, seeds)
        blocked_original = [3]
        blocked_unified = [unified.from_original[3]]
        original = exact_expected_spread(graph, seeds, blocked_original)
        transformed = exact_expected_spread(
            unified.graph, [unified.source], blocked_unified
        )
        assert unified.spread_to_original(transformed) == pytest.approx(
            original
        )

    def test_blocker_translation_roundtrip(self):
        graph = DiGraph.from_edges(5, [(0, 2), (1, 3), (3, 4)])
        unified = unify_seeds(graph, [0, 1])
        for original in (2, 3, 4):
            mapped = unified.from_original[original]
            assert unified.blockers_to_original([mapped]) == [original]

    def test_source_cannot_be_translated(self):
        graph = DiGraph.from_edges(3, [(0, 2), (1, 2)])
        unified = unify_seeds(graph, [0, 1])
        with pytest.raises(ValueError):
            unified.blockers_to_original([unified.source])

    def test_duplicate_seeds_deduplicated(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        unified = unify_seeds(graph, [0, 0])
        assert unified.seeds == (0,)
        assert unified.spread_offset == 0.0

    def test_validation(self):
        graph = DiGraph(2)
        with pytest.raises(ValueError):
            unify_seeds(graph, [])
        with pytest.raises(IndexError):
            unify_seeds(graph, [7])
