"""Unit tests for the three dominator-tree implementations."""

import random

import numpy as np
import pytest

from repro.dominator import (
    dominator_order_sizes,
    dominator_order_sizes_csr,
    dominator_sets,
    dominator_tree_arrays,
    dominator_tree_csr,
    DominatorTree,
    immediate_dominators,
    immediate_dominators_iterative,
    immediate_dominators_naive,
    subtree_sizes,
)

from .conftest import random_adjacency


def adjacency_to_csr(succ: dict[int, list[int]], n: int):
    """Flatten a dense 0..n-1 adjacency mapping to numpy CSR arrays."""
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices: list[int] = []
    for u in range(n):
        indices.extend(succ.get(u, ()))
        indptr[u + 1] = len(indices)
    return indptr, np.asarray(indices, dtype=np.int64)


def random_dag(n: int, edge_prob: float, rnd: random.Random):
    """Random DAG adjacency (edges only from lower to higher ids)."""
    return {
        u: [v for v in range(u + 1, n) if rnd.random() < edge_prob]
        for u in range(n)
    }


class TestKnownGraphs:
    def test_chain(self):
        succ = {0: [1], 1: [2], 2: [3]}
        assert immediate_dominators(succ, 0) == {1: 0, 2: 1, 3: 2}

    def test_diamond_merges_at_root(self):
        succ = {0: [1, 2], 1: [3], 2: [3]}
        idom = immediate_dominators(succ, 0)
        assert idom == {1: 0, 2: 0, 3: 0}

    def test_diamond_with_neck(self):
        # 0 -> 1 -> {2, 3} -> 4: vertex 1 dominates everything below
        succ = {0: [1], 1: [2, 3], 2: [4], 3: [4]}
        idom = immediate_dominators(succ, 0)
        assert idom[4] == 1
        assert idom[2] == 1
        assert idom[3] == 1

    def test_unreachable_vertices_excluded(self):
        succ = {0: [1], 2: [3]}
        idom = immediate_dominators(succ, 0)
        assert set(idom) == {1}

    def test_single_vertex(self):
        assert immediate_dominators({0: []}, 0) == {}

    def test_cycle_back_to_root(self):
        succ = {0: [1], 1: [2], 2: [0, 3]}
        idom = immediate_dominators(succ, 0)
        assert idom == {1: 0, 2: 1, 3: 2}

    def test_classic_lengauer_tarjan_example(self):
        # the flowgraph from the original LT paper (relabelled):
        # R=0, A=1, B=2, C=3, D=4, E=5, F=6, G=7, H=8, I=9, J=10, K=11, L=12
        succ = {
            0: [1, 2, 3],
            1: [4],
            2: [1, 4, 5],
            3: [6, 7],
            4: [12],
            5: [8],
            6: [9],
            7: [9, 10],
            8: [5, 11],
            9: [11],
            10: [9],
            11: [0, 9],
            12: [8],
        }
        idom = immediate_dominators(succ, 0)
        expected = {
            1: 0, 2: 0, 3: 0, 4: 0, 5: 0, 6: 3, 7: 3,
            8: 0, 9: 0, 10: 7, 11: 0, 12: 4,
        }
        assert idom == expected

    def test_list_adjacency_accepted(self):
        succ = [[1], [2], []]
        assert immediate_dominators(succ, 0) == {1: 0, 2: 1}

    def test_nonzero_root(self):
        succ = {3: [1], 1: [0], 0: []}
        assert immediate_dominators(succ, 3) == {1: 3, 0: 1}


class TestCrossValidation:
    @pytest.mark.parametrize("density", [0.1, 0.25, 0.5])
    def test_random_graphs_agree(self, density):
        rnd = random.Random(int(density * 100))
        for _ in range(60):
            n = rnd.randint(2, 15)
            succ = random_adjacency(n, density, rnd)
            lt = immediate_dominators(succ, 0)
            it = immediate_dominators_iterative(succ, 0)
            naive = immediate_dominators_naive(succ, 0)
            assert lt == it == naive

    @pytest.mark.parametrize("density", [0.08, 0.2, 0.45])
    @pytest.mark.parametrize("shape", ["cyclic", "dag"])
    def test_array_native_core_agrees_on_random_digraphs(
        self, shape, density
    ):
        # property-style cross-check of the flat-CSR Lengauer–Tarjan
        # core against all three adjacency-based implementations: the
        # idom of every reachable vertex is unique, so four
        # independently-derived maps must be identical — on DAGs
        # (where semidominators are trivial) and on cyclic digraphs
        # (where the union-find forest does real work)
        rnd = random.Random(int(density * 1000) + len(shape))
        for _ in range(40):
            n = rnd.randint(2, 18)
            make = random_dag if shape == "dag" else random_adjacency
            succ = make(n, density, rnd)
            indptr, indices = adjacency_to_csr(succ, n)
            order, idom = dominator_tree_csr(indptr, indices, 0)
            csr_map = {
                int(order[w]): int(order[idom[w]])
                for w in range(1, len(order))
            }
            assert csr_map == immediate_dominators(succ, 0)
            assert csr_map == immediate_dominators_iterative(succ, 0)
            assert csr_map == immediate_dominators_naive(succ, 0)

    def test_csr_order_sizes_match_adjacency_order_sizes(self):
        rnd = random.Random(271)
        for _ in range(30):
            n = rnd.randint(2, 16)
            succ = random_adjacency(n, 0.3, rnd)
            indptr, indices = adjacency_to_csr(succ, n)
            a_order, a_sizes = dominator_order_sizes(succ, 0)
            c_order, c_sizes = dominator_order_sizes_csr(indptr, indices, 0)
            assert np.array_equal(a_order, c_order)
            assert np.array_equal(a_sizes, c_sizes)

    def test_csr_core_accepts_plain_lists(self):
        # 0 -> 1 -> {2, 3} -> 4 as flat lists, no numpy involved
        indptr = [0, 1, 3, 4, 5, 5]
        indices = [1, 2, 3, 4, 4]
        order, idom = dominator_tree_csr(indptr, indices, 0)
        idom_map = {order[w]: order[idom[w]] for w in range(1, len(order))}
        assert idom_map == {1: 0, 2: 1, 3: 1, 4: 1}

    def test_deep_graph_no_recursion_error(self):
        n = 30000
        succ = {i: [i + 1] for i in range(n - 1)}
        idom = immediate_dominators(succ, 0)
        assert len(idom) == n - 1
        assert idom[n - 1] == n - 2


class TestDominatorSets:
    def test_chain_dominators_accumulate(self):
        succ = {0: [1], 1: [2]}
        doms = dominator_sets(succ, 0)
        assert doms[2] == {0, 1, 2}
        assert doms[1] == {0, 1}
        assert doms[0] == {0}


class TestSubtreeSizes:
    def test_preorder_idom_arrays(self):
        # star: root 0 with children 1..3
        assert subtree_sizes([0, 0, 0, 0]) == [4, 1, 1, 1]
        # chain
        assert subtree_sizes([0, 0, 1, 2]) == [4, 3, 2, 1]

    def test_consistency_with_arrays(self):
        rnd = random.Random(99)
        for _ in range(30):
            succ = random_adjacency(12, 0.3, rnd)
            order, idom = dominator_tree_arrays(succ, 0)
            sizes = subtree_sizes(idom)
            assert sizes[0] == len(order)
            # every subtree size is 1 + sum of its children's sizes
            computed = [1] * len(order)
            for w in range(len(order) - 1, 0, -1):
                computed[idom[w]] += computed[w]
            assert computed == sizes


class TestDominatorTree:
    def test_idom_and_sizes(self, diamond_graph):
        succ = {
            u: diamond_graph.out_neighbors(u)
            for u in diamond_graph.vertices()
        }
        tree = DominatorTree(succ, 0)
        assert tree.idom(3) == 0
        assert tree.subtree_size(0) == 4
        assert tree.subtree_size(1) == 1
        assert len(tree) == 4

    def test_root_has_no_idom(self):
        tree = DominatorTree({0: [1]}, 0)
        with pytest.raises(ValueError):
            tree.idom(0)

    def test_dominates_relation(self):
        succ = {0: [1], 1: [2, 3], 2: [4], 3: [4]}
        tree = DominatorTree(succ, 0)
        assert tree.dominates(1, 4)
        assert tree.dominates(0, 4)
        assert not tree.dominates(2, 4)
        assert tree.dominates(4, 4)
        assert not tree.dominates(4, 1)

    def test_dominates_unreachable_is_false(self):
        tree = DominatorTree({0: [1]}, 0)
        assert not tree.dominates(0, 5)

    def test_depth_and_children(self):
        succ = {0: [1], 1: [2, 3]}
        tree = DominatorTree(succ, 0)
        assert tree.depth(0) == 0
        assert tree.depth(3) == 2
        assert sorted(tree.children(1)) == [2, 3]

    def test_bfs_levels(self):
        succ = {0: [1], 1: [2, 3]}
        tree = DominatorTree(succ, 0)
        levels = tree.bfs_levels()
        assert levels[0] == [0]
        assert levels[1] == [1]
        assert sorted(levels[2]) == [2, 3]

    def test_idom_map_and_size_map(self):
        succ = {0: [1, 2]}
        tree = DominatorTree(succ, 0)
        assert tree.idom_map() == {1: 0, 2: 0}
        assert tree.subtree_size_map() == {0: 3, 1: 1, 2: 1}


class TestRender:
    def test_render_shows_subtree_sizes(self):
        succ = {0: [1], 1: [2, 3]}
        tree = DominatorTree(succ, 0)
        text = tree.render()
        lines = text.splitlines()
        assert lines[0] == "0 [4]"
        assert any("1 [3]" in line for line in lines)
        assert sum("[1]" in line for line in lines) == 2

    def test_render_custom_labels(self):
        tree = DominatorTree({0: [1]}, 0)
        text = tree.render(label=lambda v: f"v{v + 1}")
        assert "v1 [2]" in text
        assert "v2 [1]" in text

    def test_render_truncates(self):
        succ = {i: [i + 1] for i in range(50)}
        tree = DominatorTree(succ, 0)
        text = tree.render(max_vertices=5)
        assert text.endswith("...")
