"""Tests for the incremental graph-delta path.

The tentpole contract: applying a :class:`~repro.graph.GraphDelta` to
a warm :class:`~repro.engine.SamplePool` / ``SketchIndex`` yields
state **bit-identical** to throwing everything away and rebuilding
from scratch over the mutated graph — same surviving edge sets, same
spread estimates, same marginal-gain vectors, in both view layouts.
Plus the delta value object itself, the normalized
``DiGraph.remove_edge`` errors, the service's durable
:class:`~repro.service.DeltaJournal`, and the temporal analysis
running over an updated graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import figure1_graph, figure1_seed
from repro.engine import SamplePool, SketchIndex
from repro.graph import CSRGraph, DiGraph, GraphDelta
from repro.service import DeltaJournal
from repro.spread import exact_expected_spread, expected_activation_curve


def random_graph(gen, n: int, m: int) -> DiGraph:
    m = min(m, n * (n - 1))
    graph = DiGraph(n)
    seen: set[tuple[int, int]] = set()
    while len(seen) < m:
        u = int(gen.integers(n))
        v = int(gen.integers(n))
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            graph.add_edge(u, v, float(gen.uniform(0.05, 0.6)))
    return graph


def random_delta(gen, graph: DiGraph) -> GraphDelta:
    """A randomized mix of deletes, reweights and inserts against
    ``graph`` (always non-empty)."""
    edges = list(graph.edges())
    gen.shuffle(edges)
    k = len(edges)
    deletes = [(u, v) for u, v, _ in edges[: max(1, k // 6)]]
    reweights = [
        (u, v, float(gen.uniform(0.0, 1.0)))
        for u, v, _ in edges[max(1, k // 6) : max(2, k // 3)]
    ]
    present = {(u, v) for u, v, _ in edges}
    inserts: list[tuple[int, int, float]] = []
    tries = 0
    while len(inserts) < max(1, k // 6) and tries < 500:
        tries += 1
        u = int(gen.integers(graph.n))
        v = int(gen.integers(graph.n))
        if u != v and (u, v) not in present:
            present.add((u, v))
            inserts.append((u, v, float(gen.uniform(0.05, 0.8))))
    return GraphDelta(
        inserts=inserts, deletes=deletes, reweights=reweights
    )


# ----------------------------------------------------------------------
# the GraphDelta value object
# ----------------------------------------------------------------------


class TestGraphDelta:
    def test_empty_delta_is_falsy(self):
        delta = GraphDelta()
        assert len(delta) == 0
        assert not delta
        assert delta.max_vertex() == -1

    def test_len_counts_all_edit_kinds(self):
        delta = GraphDelta(
            inserts=[(0, 1, 0.5)],
            deletes=[(2, 3)],
            reweights=[(4, 5, 0.1), (5, 6, 0.2)],
        )
        assert len(delta) == 4
        assert delta.max_vertex() == 6

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            GraphDelta(deletes=[(3, 3)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            GraphDelta(inserts=[(-1, 2, 0.5)])

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"within \[0, 1\]"):
            GraphDelta(reweights=[(0, 1, 1.5)])

    def test_malformed_entries_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            GraphDelta(deletes=[(1, 2, 3)])
        with pytest.raises(ValueError, match="triples"):
            GraphDelta(inserts=[(1, 2)])

    def test_edit_kinds_are_disjoint(self):
        with pytest.raises(ValueError, match="more than once"):
            GraphDelta(inserts=[(0, 1, 0.5)], deletes=[(0, 1)])
        with pytest.raises(ValueError, match="more than once"):
            GraphDelta(deletes=[(0, 1)], reweights=[(0, 1, 0.3)])

    def test_dict_round_trip(self):
        delta = GraphDelta(
            inserts=[(0, 1, 0.5)],
            deletes=[(2, 3)],
            reweights=[(4, 5, 0.25)],
        )
        assert GraphDelta.from_dict(delta.as_dict()) == delta

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            GraphDelta.from_dict({"inserts": [], "upserts": []})

    def test_check_against_names_offending_edge(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match=r"\(2, 3\)"):
            GraphDelta(deletes=[(2, 3)]).check_against(graph)
        with pytest.raises(ValueError, match=r"\(2, 3\)"):
            GraphDelta(reweights=[(2, 3, 0.5)]).check_against(graph)
        with pytest.raises(ValueError, match="reweight"):
            GraphDelta(inserts=[(0, 1, 0.5)]).check_against(graph)
        with pytest.raises(ValueError, match="out of range"):
            GraphDelta(deletes=[(0, 9)]).check_against(graph)

    def test_apply_to_mutates_in_order(self):
        graph = DiGraph.from_edges(4, [(0, 1, 0.9), (1, 2, 0.5)])
        delta = GraphDelta(
            inserts=[(2, 3, 0.7)],
            deletes=[(0, 1)],
            reweights=[(1, 2, 0.25)],
        )
        returned = delta.apply_to(graph)
        assert returned is graph
        assert not graph.has_edge(0, 1)
        assert graph.probability(1, 2) == 0.25
        assert graph.probability(2, 3) == 0.7
        assert graph.m == 2

    def test_apply_to_validates_first(self):
        graph = DiGraph.from_edges(3, [(0, 1)])
        before = graph.version
        with pytest.raises(ValueError):
            GraphDelta(deletes=[(1, 2)]).apply_to(graph)
        assert graph.version == before  # nothing was half-applied


# ----------------------------------------------------------------------
# DiGraph.remove_edge (the delta path's primitive)
# ----------------------------------------------------------------------


class TestRemoveEdge:
    def test_removes_edge_and_updates_counts(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.4)])
        before = graph.version
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.m == 1
        assert graph.version > before
        assert 0 not in graph.in_neighbors(1)
        assert 1 not in graph.out_neighbors(0)

    def test_missing_edge_raises_keyerror_naming_edge(self):
        graph = DiGraph.from_edges(3, [(0, 1)])
        with pytest.raises(KeyError, match=r"\(1, 2\)"):
            graph.remove_edge(1, 2)

    def test_out_of_range_vertex_raises_indexerror(self):
        graph = DiGraph.from_edges(3, [(0, 1)])
        with pytest.raises(IndexError):
            graph.remove_edge(0, 9)
        with pytest.raises(IndexError):
            graph.remove_edge(-1, 0)

    def test_reinsert_after_remove(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.5)])
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1, 0.9)
        assert graph.probability(0, 1) == 0.9
        assert graph.m == 1


# ----------------------------------------------------------------------
# pool-level bit-identity: patched arrays == regenerated arrays
# ----------------------------------------------------------------------


class TestPoolDeltaIdentity:
    def test_patched_pool_matches_regenerated(self):
        gen = np.random.default_rng(17)
        for trial in range(8):
            n = int(gen.integers(10, 30))
            graph = random_graph(gen, n, int(gen.integers(n, 3 * n)))
            delta = random_delta(gen, graph)
            theta = 64

            pool = SamplePool(CSRGraph(graph.copy()), rng=5)
            pool.get(theta)
            report = pool.apply_delta(delta)
            assert report.theta == theta
            assert report.inserts == len(delta.inserts)
            assert report.deletes == len(delta.deletes)
            assert report.reweights == len(delta.reweights)

            mutated = delta.apply_to(graph.copy())
            fresh = SamplePool(CSRGraph(mutated), rng=5)
            patched_batch = pool.get(theta)
            fresh_batch = fresh.get(theta)
            for t in range(theta):
                assert np.array_equal(
                    patched_batch.surviving(t), fresh_batch.surviving(t)
                ), (trial, t)

    def test_delta_rekeys_the_pool(self, tmp_path):
        gen = np.random.default_rng(3)
        graph = random_graph(gen, 12, 30)
        pool = SamplePool(
            CSRGraph(graph.copy()), rng=5, cache_dir=tmp_path / "a"
        )
        pool.get(16)
        before = pool.cache_digest
        delta = random_delta(gen, graph)
        pool.apply_delta(delta)
        assert pool.cache_digest != before
        # same mutated graph -> same digest as a fresh pool (content
        # hash, independent of directory)
        fresh = SamplePool(
            CSRGraph(delta.apply_to(graph)), rng=5,
            cache_dir=tmp_path / "b",
        )
        assert pool.cache_digest == fresh.cache_digest

    def test_touched_names_exactly_the_changed_samples(self):
        def edge_pairs(csr, positions):
            src = np.searchsorted(
                np.asarray(csr.indptr), positions, side="right"
            ) - 1
            dst = np.asarray(csr.indices)[positions]
            return set(zip(src.tolist(), dst.tolist()))

        gen = np.random.default_rng(29)
        graph = random_graph(gen, 15, 40)
        theta = 48
        pool = SamplePool(CSRGraph(graph.copy()), rng=9)
        old_csr = pool.csr
        batch = pool.get(theta)
        before = [
            edge_pairs(old_csr, batch.surviving(t))
            for t in range(theta)
        ]
        delta = random_delta(gen, graph)
        report = pool.apply_delta(delta)
        after_batch = pool.get(theta)
        touched = set(report.touched.tolist())
        changed = {
            t
            for t in range(theta)
            if edge_pairs(pool.csr, after_batch.surviving(t))
            != before[t]
        }
        # every sample whose survived-edge set changed is reported;
        # unreported samples are bit-for-bit unchanged
        assert changed <= touched
        assert changed  # a random mixed delta always flips something


# ----------------------------------------------------------------------
# sketch-level bit-identity: rebased index == cold rebuild
# ----------------------------------------------------------------------


@pytest.mark.parametrize("layout", ["arena", "legacy"])
class TestSketchDeltaIdentity:
    def test_delta_applied_index_matches_cold_rebuild(self, layout):
        gen = np.random.default_rng(42)
        theta = 120
        for trial in range(5):
            n = int(gen.integers(12, 36))
            graph = random_graph(gen, n, int(gen.integers(n, 4 * n)))
            delta = random_delta(gen, graph)
            seeds = [int(gen.integers(n))]
            parked = [v for v in range(min(3, n)) if v not in seeds][:2]

            index = SketchIndex(graph.copy(), rng=7, layout=layout)
            # warm the view and park it on a non-empty blocker set so
            # the delta path exercises the rebase-to-base contract
            index.expected_spread(seeds, theta, parked)
            index.apply_delta(delta)

            mutated = delta.apply_to(graph.copy())
            cold = SketchIndex(mutated, rng=7, layout=layout)
            others = [v for v in range(n) if v not in seeds][:5]
            for blocked in ([], parked, others):
                assert index.expected_spread(
                    seeds, theta, blocked
                ) == cold.expected_spread(seeds, theta, blocked), (
                    trial, blocked,
                )
                assert np.array_equal(
                    index.decrease_estimates(seeds, theta, blocked),
                    cold.decrease_estimates(seeds, theta, blocked),
                ), (trial, blocked)
            index.close()
            cold.close()

    def test_sequential_deltas_accumulate(self, layout):
        gen = np.random.default_rng(11)
        graph = random_graph(gen, 20, 60)
        seeds = [0]
        theta = 80
        index = SketchIndex(graph.copy(), rng=3, layout=layout)
        index.expected_spread(seeds, theta)
        for _ in range(3):
            delta = random_delta(gen, graph)
            index.apply_delta(delta)
            delta.apply_to(graph)
        cold = SketchIndex(graph.copy(), rng=3, layout=layout)
        assert index.expected_spread(seeds, theta) == \
            cold.expected_spread(seeds, theta)
        assert index.stats.deltas == 3
        index.close()
        cold.close()

    def test_delta_stats_accounting(self, layout):
        gen = np.random.default_rng(23)
        graph = random_graph(gen, 16, 48)
        theta = 60
        index = SketchIndex(graph.copy(), rng=5, layout=layout)
        index.expected_spread([1], theta)
        delta = random_delta(gen, graph)
        report = index.apply_delta(delta)
        assert index.stats.deltas == 1
        assert 0 <= index.stats.delta_trees_rebuilt <= theta
        assert (
            index.stats.delta_trees_rebuilt
            + index.stats.delta_samples_skipped
            == theta
        )
        assert index.stats.delta_trees_rebuilt <= report.touched_count
        index.close()


# ----------------------------------------------------------------------
# persisted artifacts: rehydrate-after-delta bit-identity
# ----------------------------------------------------------------------


class TestDeltaPersistence:
    def test_rehydrated_index_sees_post_delta_state(self, tmp_path):
        gen = np.random.default_rng(31)
        graph = random_graph(gen, 18, 50)
        delta = random_delta(gen, graph)
        seeds = [2]
        theta = 60

        index = SketchIndex(
            graph.copy(), rng=7, cache_dir=tmp_path
        )
        index.expected_spread(seeds, theta)
        index.apply_delta(delta)
        expected = index.expected_spread(seeds, theta)
        gains = index.decrease_estimates(seeds, theta).copy()
        index.close()

        # a fresh process over the mutated graph and the same cache
        # dir must land on the patched artifacts, not rebuild
        mutated = delta.apply_to(graph.copy())
        again = SketchIndex(mutated, rng=7, cache_dir=tmp_path)
        assert again.expected_spread(seeds, theta) == expected
        assert np.array_equal(
            again.decrease_estimates(seeds, theta), gains
        )
        assert again.stats.rehydrations >= 1
        again.close()


# ----------------------------------------------------------------------
# the service's durable delta journal
# ----------------------------------------------------------------------


class TestDeltaJournal:
    def test_memory_only_record_and_replay(self):
        journal = DeltaJournal()
        assert journal.last_seq("toy") == 0
        delta = GraphDelta(deletes=[(0, 1)])
        journal.record("toy", delta, 1)
        assert journal.last_seq("toy") == 1
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert journal.replay("toy", graph) == 1
        assert not graph.has_edge(0, 1)

    def test_seq_must_advance(self):
        journal = DeltaJournal()
        journal.record("toy", GraphDelta(deletes=[(0, 1)]), 3)
        with pytest.raises(ValueError):
            journal.record("toy", GraphDelta(deletes=[(1, 2)]), 3)
        with pytest.raises(ValueError):
            journal.record("toy", GraphDelta(deletes=[(1, 2)]), 1)
        journal.record("toy", GraphDelta(deletes=[(1, 2)]), 4)
        assert journal.last_seq("toy") == 4

    def test_graphs_are_independent(self):
        journal = DeltaJournal()
        journal.record("a", GraphDelta(deletes=[(0, 1)]), 5)
        assert journal.last_seq("a") == 5
        assert journal.last_seq("b") == 0

    def test_persists_across_instances(self, tmp_path):
        first = DeltaJournal(tmp_path)
        first.record("toy", GraphDelta(deletes=[(0, 1)]), 1)
        first.record(
            "toy", GraphDelta(inserts=[(2, 0, 0.5)]), 2
        )

        second = DeltaJournal(tmp_path)
        assert second.last_seq("toy") == 2
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert second.replay("toy", graph) == 2
        assert not graph.has_edge(0, 1)
        assert graph.probability(2, 0) == 0.5

    def test_replay_applies_in_seq_order(self):
        journal = DeltaJournal()
        journal.record("toy", GraphDelta(deletes=[(0, 1)]), 1)
        # only valid because seq 1 removed the edge first
        journal.record("toy", GraphDelta(inserts=[(0, 1, 0.9)]), 2)
        graph = DiGraph.from_edges(2, [(0, 1, 0.4)])
        journal.replay("toy", graph)
        assert graph.probability(0, 1) == 0.9


# ----------------------------------------------------------------------
# temporal analysis over an updated graph
# ----------------------------------------------------------------------


class TestTemporalOnUpdatedGraph:
    def test_activation_curve_converges_on_mutated_graph(self):
        graph = figure1_graph()
        # cut one certain edge and strengthen a stochastic one — the
        # same shape of edit the service's update op applies
        u, v, _ = next(iter(graph.edges()))
        delta = GraphDelta(
            deletes=[(u, v)],
            inserts=[],
        )
        delta.apply_to(graph)
        exact = exact_expected_spread(graph, [figure1_seed])
        curve = expected_activation_curve(
            graph, [figure1_seed], rounds=6000, rng=1, max_steps=12
        )
        assert curve[0] == 1.0
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == pytest.approx(exact, abs=0.15)
