"""Degenerate-input sweep: every algorithm on every pathological graph.

Failure-injection-style coverage: each blocking algorithm must behave
sensibly (not crash, never block a seed, respect the budget) on inputs
that stress boundary logic — isolated seeds, no candidates, budgets
exceeding the graph, unreachable components, all-zero probabilities.
"""

import pytest

from repro.core.solve import ALGORITHMS, solve_imin
from repro.graph import DiGraph

FAST_KW = dict(theta=30, mcs_rounds=20, rng=0)


def isolated_seed() -> DiGraph:
    graph = DiGraph(4)
    graph.add_edge(1, 2)
    return graph


def no_candidates() -> DiGraph:
    return DiGraph(1)


def zero_probabilities() -> DiGraph:
    return DiGraph.from_edges(4, [(0, 1, 0.0), (1, 2, 0.0), (2, 3, 0.0)])


def unreachable_component() -> DiGraph:
    return DiGraph.from_edges(6, [(0, 1), (2, 3), (3, 4), (4, 5)])


def single_edge() -> DiGraph:
    return DiGraph.from_edges(2, [(0, 1, 0.5)])


CASES = {
    "isolated-seed": isolated_seed,
    "zero-probabilities": zero_probabilities,
    "unreachable-component": unreachable_component,
    "single-edge": single_edge,
}


class TestDegenerateGraphs:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("case", list(CASES))
    def test_runs_and_respects_contract(self, algorithm, case):
        graph = CASES[case]()
        result = solve_imin(
            graph, [0], budget=2, algorithm=algorithm, **FAST_KW
        )
        assert 0 not in result.blockers
        assert len(result.blockers) <= 2
        assert len(set(result.blockers)) == len(result.blockers)
        for blocker in result.blockers:
            assert 0 <= blocker < graph.n

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_no_candidates_graph(self, algorithm):
        result = solve_imin(
            no_candidates(), [0], budget=3, algorithm=algorithm, **FAST_KW
        )
        assert result.blockers == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_budget_exceeds_graph(self, algorithm):
        graph = single_edge()
        result = solve_imin(
            graph, [0], budget=100, algorithm=algorithm, **FAST_KW
        )
        assert set(result.blockers) <= {1}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_vertices_are_seeds(self, algorithm):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        result = solve_imin(
            graph, [0, 1, 2], budget=1, algorithm=algorithm, **FAST_KW
        )
        assert result.blockers == []

    @pytest.mark.parametrize(
        "algorithm", ["greedy-replace", "advanced-greedy", "static-greedy"]
    )
    def test_budget_zero_everywhere(self, algorithm):
        graph = unreachable_component()
        result = solve_imin(
            graph, [0], budget=0, algorithm=algorithm, **FAST_KW
        )
        assert result.blockers == []

    @pytest.mark.parametrize(
        "algorithm", ["greedy-replace", "advanced-greedy"]
    )
    def test_multi_seed_degenerate(self, algorithm):
        # two seeds, everything else unreachable from them
        graph = DiGraph.from_edges(5, [(2, 3), (3, 4)])
        result = solve_imin(
            graph, [0, 1], budget=2, algorithm=algorithm, **FAST_KW
        )
        assert not set(result.blockers) & {0, 1}
