"""Unit tests for the DiGraph structure."""

import pytest

from repro.graph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph(0)
        assert graph.n == 0
        assert graph.m == 0
        assert list(graph.edges()) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1)

    def test_from_edges_with_default_probability(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)], 0.5)
        assert graph.probability(0, 1) == 0.5
        assert graph.probability(1, 2) == 0.5

    def test_from_edges_with_explicit_probability(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.3), (1, 2, 0.7)])
        assert graph.probability(0, 1) == 0.3
        assert graph.probability(1, 2) == 0.7

    def test_from_edges_duplicate_overwrites(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.3), (0, 1, 0.9)])
        assert graph.m == 1
        assert graph.probability(0, 1) == 0.9

    def test_add_vertex_returns_new_id(self):
        graph = DiGraph(2)
        assert graph.add_vertex() == 2
        assert graph.n == 3


class TestEdges:
    def test_add_edge_updates_degrees(self):
        graph = DiGraph(3)
        graph.add_edge(0, 1, 0.4)
        graph.add_edge(0, 2, 0.6)
        assert graph.out_degree(0) == 2
        assert graph.in_degree(1) == 1
        assert graph.degree(0) == 2
        assert graph.m == 2

    def test_self_loop_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(ValueError, match="self loop"):
            graph.add_edge(1, 1)

    def test_out_of_range_vertex_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5)

    def test_invalid_probability_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 1.5)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, -0.1)

    def test_reinsert_replaces_probability_without_duplicating(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1, 0.2)
        graph.add_edge(0, 1, 0.8)
        assert graph.m == 1
        assert graph.in_neighbors(1) == [0]
        assert graph.probability(0, 1) == 0.8

    def test_combine_edge_noisy_or(self):
        graph = DiGraph(2)
        graph.combine_edge(0, 1, 0.5)
        assert graph.probability(0, 1) == 0.5
        graph.combine_edge(0, 1, 0.5)
        assert graph.probability(0, 1) == pytest.approx(0.75)

    def test_remove_edge(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert graph.m == 1
        assert not graph.has_edge(0, 1)
        assert graph.in_neighbors(1) == []
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_edges_iteration_covers_all(self):
        edges = [(0, 1, 0.1), (0, 2, 0.2), (2, 1, 0.3)]
        graph = DiGraph.from_edges(3, edges)
        assert sorted(graph.edges()) == sorted(edges)


class TestTransformations:
    def test_copy_is_independent(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.5)])
        clone = graph.copy()
        clone.add_edge(1, 2, 0.9)
        assert graph.m == 1
        assert clone.m == 2

    def test_reverse_flips_edges_preserving_probability(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.3), (1, 2, 0.6)])
        rev = graph.reverse()
        assert rev.has_edge(1, 0)
        assert rev.probability(2, 1) == 0.6
        assert rev.m == graph.m

    def test_induced_subgraph_relabels(self):
        graph = DiGraph.from_edges(5, [(0, 2, 0.5), (2, 4, 0.7), (1, 3)])
        sub, to_original = graph.induced_subgraph([0, 2, 4])
        assert to_original == [0, 2, 4]
        assert sub.n == 3
        assert sub.probability(0, 1) == 0.5  # 0 -> 2
        assert sub.probability(1, 2) == 0.7  # 2 -> 4

    def test_without_vertices_isolates_blocked(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        out = graph.without_vertices([1])
        assert out.n == 4  # ids preserved
        assert not out.has_edge(0, 1)
        assert not out.has_edge(1, 2)
        assert out.has_edge(0, 3)

    def test_as_bidirectional_adds_missing_reverse_edges(self):
        graph = DiGraph.from_edges(3, [(0, 1, 0.4), (1, 0, 0.9), (1, 2, 0.2)])
        out = graph.as_bidirectional()
        assert out.probability(1, 0) == 0.9  # existing edge untouched
        assert out.probability(2, 1) == 0.2  # reverse copies forward p
        assert out.m == 4


class TestStatistics:
    def test_average_and_max_degree(self):
        graph = DiGraph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 0)])
        assert graph.average_degree() == pytest.approx(2.0)
        assert graph.max_degree() == 4  # vertex 0: out 3 + in 1

    def test_empty_graph_statistics(self):
        graph = DiGraph(0)
        assert graph.average_degree() == 0.0
        assert graph.max_degree() == 0

    def test_len_matches_n(self):
        assert len(DiGraph(7)) == 7
