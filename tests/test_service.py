"""Tests for the serving layer (``repro.service``).

Covers the four subsystem parts — registry, artifact cache, TCP/JSON
server and client — plus the PR's central correctness contract: N
client threads issuing mixed ``block``/``spread`` queries against one
warm artifact return **bit-identical** results to serial execution
(every query is a pure function of the artifact key and its
parameters, and per-artifact executors serialise the stateful engine
machinery).
"""

from __future__ import annotations

import gzip
import json
import socket
import threading
import time

import pytest

from repro.datasets import figure1_graph
from repro.service import (
    Artifact,
    ArtifactCache,
    ArtifactKey,
    BlockerService,
    default_registry,
    GraphRegistry,
    serve,
    ServiceClient,
    ServiceError,
)

TOY_KEY = ArtifactKey("toy", "wc", 100, 7)


@pytest.fixture()
def registry():
    return default_registry(scale=0.05)


@pytest.fixture()
def cache(registry):
    return ArtifactCache(registry, max_entries=3)


@pytest.fixture()
def running_server(registry):
    service = BlockerService(
        registry=registry, cache=ArtifactCache(registry, max_entries=3)
    )
    server = serve(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def client_for(server) -> ServiceClient:
    host, port = server.server_address[:2]
    return ServiceClient(host, port, timeout=30.0)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_default_registry_has_toy_and_datasets(self, registry):
        names = registry.names()
        assert "toy" in names
        assert "email-core" in names
        assert registry.get("toy").n == 9

    def test_get_memoises(self, registry):
        assert registry.get("toy") is registry.get("toy")

    def test_unknown_name_lists_known(self, registry):
        with pytest.raises(KeyError, match="toy"):
            registry.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = GraphRegistry()
        registry.register("g", figure1_graph)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("g", figure1_graph)

    def test_describe_is_lazy(self, registry):
        records = {r["name"]: r for r in registry.describe()}
        assert not records["email-core"]["loaded"]
        assert "n" not in records["email-core"]
        registry.get("email-core")
        records = {r["name"]: r for r in registry.describe()}
        assert records["email-core"]["loaded"]
        assert records["email-core"]["n"] > 0

    def test_register_edge_list_gz(self, tmp_path):
        path = tmp_path / "snap.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("# comment\n0 1\n1 2\n2 0\n")
        registry = GraphRegistry()
        registry.register_edge_list("snap", path)
        graph = registry.get("snap")
        assert (graph.n, graph.m) == (3, 3)
        record = [
            r for r in registry.describe() if r["name"] == "snap"
        ][0]
        assert record["source"] == "edge-list"


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_key_validation(self):
        with pytest.raises(ValueError, match="theta"):
            ArtifactKey("toy", "wc", 0, 7)

    def test_hit_miss_stats(self, cache):
        first = cache.get(TOY_KEY)
        again = cache.get(TOY_KEY)
        assert first is again
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.builds == 1

    def test_artifact_is_warm_on_return(self, cache):
        artifact = cache.get(TOY_KEY)
        assert artifact.pool.theta >= TOY_KEY.theta

    def test_lru_eviction_by_entries(self, registry):
        cache = ArtifactCache(registry, max_entries=2)
        keys = [
            ArtifactKey("toy", "wc", 50, seed) for seed in (1, 2, 3)
        ]
        for key in keys:
            cache.get(key)
        assert cache.stats.evictions == 1
        assert keys[0] not in cache.keys()
        assert keys[1] in cache.keys() and keys[2] in cache.keys()

    def test_lru_refresh_on_hit(self, registry):
        cache = ArtifactCache(registry, max_entries=2)
        k1, k2, k3 = (
            ArtifactKey("toy", "wc", 50, seed) for seed in (1, 2, 3)
        )
        cache.get(k1)
        cache.get(k2)
        cache.get(k1)  # refresh: k2 is now least recent
        cache.get(k3)
        assert k1 in cache.keys()
        assert k2 not in cache.keys()

    def test_eviction_by_bytes(self, registry):
        cache = ArtifactCache(registry, max_entries=10, max_bytes=1)
        cache.get(ArtifactKey("toy", "wc", 50, 1))
        cache.get(ArtifactKey("toy", "wc", 50, 2))
        # every artifact exceeds 1 byte, but the newest always survives
        assert len(cache) == 1
        assert cache.stats.evictions == 1

    def test_byte_accounting_includes_sketch_trees(self, cache):
        # the LRU byte bound must see the tree cache, not just the
        # sample pools: a block query warms a sketch view, and the
        # artifact's reported footprint grows by exactly the bytes
        # the SketchStats gauge reports
        artifact = cache.get(TOY_KEY)
        pools_only = artifact.pool.nbytes + artifact.judge.pool.nbytes
        assert artifact.sketch.stats.tree_bytes == 0
        assert artifact.nbytes == pools_only
        artifact.block([0], budget=1)
        tree_bytes = artifact.sketch.stats.tree_bytes
        assert tree_bytes > 0
        pools_only = artifact.pool.nbytes + artifact.judge.pool.nbytes
        assert artifact.nbytes == pools_only + tree_bytes
        assert cache.describe()["total_bytes"] == artifact.nbytes
        artifact.close()
        assert artifact.sketch.stats.tree_bytes == 0

    def test_byte_bound_enforced_on_hits(self, registry):
        # artifact footprints grow after insertion (sketch views);
        # a later *hit* must re-check the byte bound and evict the
        # LRU entry, or a hit-only workload holds memory forever
        cache = ArtifactCache(registry, max_entries=10)
        old_key = ArtifactKey("toy", "wc", 50, 1)
        hot_key = ArtifactKey("toy", "wc", 50, 2)
        old = cache.get(old_key)
        hot = cache.get(hot_key)
        # cap at the current footprint, then grow the hot artifact's
        # tree cache past it via a block query
        cache.max_bytes = old.nbytes + hot.nbytes
        hot.block([0], budget=1)
        assert hot.sketch.stats.tree_bytes > 0
        cache.get(hot_key)  # a pure hit
        assert cache.stats.evictions == 1
        assert old_key not in cache.keys()
        assert hot_key in cache.keys()

    def test_build_workers_param_threads_through(self, registry):
        cache = ArtifactCache(registry, build_workers=2)
        artifact = cache.get(TOY_KEY)
        assert artifact.sketch.workers == 2
        # the toy graph is far below the fan-out floor, so queries
        # stay serial — and answers are key-determined regardless
        outcome = artifact.block([0], budget=1)
        assert outcome["blockers"]

    def test_rehydration_from_disk(self, registry, tmp_path):
        cache = ArtifactCache(
            registry, max_entries=1, cache_dir=tmp_path
        )
        first = cache.get(TOY_KEY)
        generated = first.pool.stats.generated
        assert generated >= TOY_KEY.theta
        # force an eviction, then rebuild the same key
        cache.get(ArtifactKey("toy", "wc", 50, 99))
        rebuilt = cache.get(TOY_KEY)
        assert rebuilt is not first
        assert cache.stats.rehydrations == 1
        assert rebuilt.pool.stats.generated == 0  # attached, not drawn
        assert rebuilt.pool.stats.disk_loads == 1

    def test_single_flight_builds(self, registry):
        cache = ArtifactCache(registry, max_entries=3)
        barrier = threading.Barrier(4)
        results = []

        def build():
            barrier.wait()
            results.append(cache.get(TOY_KEY))

        threads = [
            threading.Thread(target=build) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats.builds == 1
        assert all(r is results[0] for r in results)

    def test_deterministic_rebuild(self, registry):
        cache = ArtifactCache(registry, max_entries=1)
        artifact = cache.get(TOY_KEY)
        seeds = artifact.default_seeds(2)
        blocked = [v for v in range(9) if v not in seeds][:2]
        spread = artifact.spread(seeds, blocked)
        cache.get(ArtifactKey("toy", "wc", 50, 99))  # evict
        rebuilt = cache.get(TOY_KEY)
        assert rebuilt.default_seeds(2) == seeds
        assert rebuilt.spread(seeds, blocked) == spread


class TestArtifact:
    def test_spread_many_matches_individual(self, cache):
        artifact = cache.get(TOY_KEY)
        seeds = [0]
        blocked_sets = [[], [4], [1, 3], [4, 8]]
        batched = artifact.spread_many(seeds, blocked_sets)
        singles = [
            artifact.spread(seeds, blocked) for blocked in blocked_sets
        ]
        assert batched == singles  # bit-identical, not just close

    def test_block_structure(self, cache):
        artifact = cache.get(TOY_KEY)
        outcome = artifact.block([0], budget=1)
        assert outcome["blockers"] == [4]  # v5, the paper's Example 1
        assert (
            outcome["spread_blocked"] <= outcome["spread_unblocked"]
        )
        assert outcome["algorithm"] == "greedy-replace"

    def test_blocking_reduces_spread(self, cache):
        artifact = cache.get(TOY_KEY)
        unblocked, blocked = artifact.spread_many([0], [[], [4]])
        assert blocked < unblocked

    def test_block_judged_on_independent_stream(self, cache):
        """The winner is never scored on the samples that picked it."""
        artifact = cache.get(TOY_KEY)
        assert artifact.judge.pool is not artifact.pool
        outcome = artifact.block([0], budget=1)
        judged = artifact.judge.expected_spread_many(
            [0], TOY_KEY.theta, [[], outcome["blockers"]]
        )
        assert [
            outcome["spread_unblocked"], outcome["spread_blocked"]
        ] == judged


# ----------------------------------------------------------------------
# service dispatch (no TCP)
# ----------------------------------------------------------------------
class TestBlockerService:
    def test_ping(self, registry):
        service = BlockerService(registry=registry)
        response = service.handle({"op": "ping"})
        trace_id = response.pop("trace_id")
        assert isinstance(trace_id, str) and trace_id
        assert response == {
            "ok": True, "v": 1, "op": "ping", "result": "pong",
        }

    def test_unknown_op(self, registry):
        service = BlockerService(registry=registry)
        response = service.handle({"op": "teleport"})
        assert not response["ok"]
        assert response["v"] == 1
        assert response["error"]["code"] == "unknown_op"
        assert "teleport" in response["error"]["message"]
        assert service.stats.errors == 1

    def test_id_echo(self, registry):
        service = BlockerService(registry=registry)
        assert service.handle({"op": "ping", "id": 42})["id"] == 42
        assert service.handle({"op": "nope", "id": "x"})["id"] == "x"

    @pytest.mark.parametrize(
        "request_patch, code, fragment",
        [
            ({"graph": "nope"}, "unknown_graph", "unknown graph"),
            ({"model": "ic"}, "bad_params", "unknown model"),
            ({"layout": "columnar"}, "bad_params", "unknown layout"),
            ({"theta": -1}, "bad_params", "theta must be positive"),
            ({"theta": "many"}, "bad_params", "theta must be an integer"),
            ({"seeds": [99]}, "bad_params", "out of range"),
            ({"seeds": []}, "bad_params", "seeds must be non-empty"),
            ({"num_seeds": 0}, "bad_params", "num_seeds must be >= 1"),
            ({"blocked": ["v5"]}, "bad_params", "must contain integers"),
        ],
    )
    def test_bad_requests(self, registry, request_patch, code, fragment):
        service = BlockerService(registry=registry)
        request = {"op": "spread", "graph": "toy", **request_patch}
        response = service.handle(request)
        assert not response["ok"]
        assert response["error"]["code"] == code
        assert response["error"]["op"] == "spread"
        assert fragment in response["error"]["message"]

    def test_spread_drops_seed_blockers(self, registry):
        service = BlockerService(registry=registry)
        response = service.handle(
            {
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0], "blocked": [0, 4],
            }
        )
        assert response["ok"]
        assert response["result"]["blocked"] == [4]
        assert response["result"]["ignored_seed_blockers"] == [0]

    def test_block_bad_algorithm(self, registry):
        service = BlockerService(registry=registry)
        response = service.handle(
            {"op": "block", "graph": "toy", "algorithm": "magic"}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_params"
        assert "unknown algorithm" in response["error"]["message"]

    def test_warm_reports_artifact(self, registry):
        service = BlockerService(registry=registry)
        response = service.handle(
            {"op": "warm", "graph": "toy", "theta": 100, "seed": 7}
        )
        assert response["ok"]
        result = response["result"]
        assert result["graph"] == "toy"
        assert result["n"] == 9
        assert result["nbytes"] > 0

    def test_stats_shape(self, registry):
        service = BlockerService(registry=registry)
        service.handle({"op": "ping"})
        result = service.handle({"op": "stats"})["result"]
        assert result["service"]["requests"]["ping"] == 1
        assert "cache" in result
        service.close()

    def test_stats_for_warm_artifact(self, registry):
        # the per-artifact stats verb: key fields select one warm
        # artifact and return its description, including the sketch
        # index's arena/postings byte gauges
        service = BlockerService(registry=registry)
        service.handle(
            {"op": "block", "graph": "toy", "theta": 100, "seed": 7,
             "seeds": [0], "budget": 2}
        )
        response = service.handle(
            {"op": "stats", "graph": "toy", "theta": 100, "seed": 7}
        )
        assert response["ok"]
        result = response["result"]
        assert result["graph"] == "toy" and result["theta"] == 100
        sketch = result["sketch"]
        assert sketch["trees_built"] > 0
        assert sketch["arena_bytes"] > 0
        assert sketch["postings_bytes"] > 0
        assert sketch["tree_bytes"] == (
            sketch["arena_bytes"] + sketch["postings_bytes"]
        )
        # "artifact": true selects the per-artifact form with default
        # key fields (the CLI's `query ... --stats` shape)
        flagged = service.handle(
            {"op": "stats", "artifact": True, "theta": 100}
        )
        assert flagged["ok"]
        assert flagged["result"]["sketch"] == sketch
        service.close()

    def test_stats_for_cold_artifact_is_an_error(self, registry):
        # observability must never trigger a build: asking for a key
        # that is not resident errors instead of warming it
        service = BlockerService(registry=registry)
        response = service.handle(
            {"op": "stats", "graph": "toy", "theta": 123}
        )
        assert not response["ok"]
        assert "not warm" in response["error"]["message"]
        assert len(service.cache) == 0
        service.close()


# ----------------------------------------------------------------------
# TCP round trip
# ----------------------------------------------------------------------
class TestServer:
    def test_round_trip(self, running_server):
        with client_for(running_server) as client:
            assert client.ping()
            names = [g["name"] for g in client.graphs()]
            assert "toy" in names
            result = client.spread(
                graph="toy", theta=100, seeds=[0], blocked=[4]
            )
            assert result["spread"] == pytest.approx(3.0)
            outcome = client.block(
                graph="toy", theta=100, seeds=[0], budget=1
            )
            assert outcome["blockers"] == [4]

    def test_pipelined_requests_one_connection(self, running_server):
        with client_for(running_server) as client:
            for _ in range(5):
                assert client.ping()

    def test_bad_json_line(self, running_server):
        host, port = running_server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        response = json.loads(line)
        assert not response["ok"]
        assert response["v"] == 1
        assert response["error"]["code"] == "bad_params"
        assert "bad JSON" in response["error"]["message"]

    def test_call_raises_service_error(self, running_server):
        with client_for(running_server) as client:
            with pytest.raises(ServiceError, match="unknown graph"):
                client.spread(graph="nope")

    def test_shutdown_op_stops_server(self, registry):
        service = BlockerService(registry=registry)
        server = serve(port=0, service=service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = client_for(server)
        assert client.wait_until_ready(10)
        client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.server_close()


# ----------------------------------------------------------------------
# concurrency: the PR's central contract
# ----------------------------------------------------------------------
def _mixed_queries() -> list[dict]:
    queries: list[dict] = []
    for blocked in ([], [4], [1], [3, 8], [4, 8], [2, 5]):
        queries.append(
            {
                "op": "spread", "graph": "toy", "theta": 100,
                "seed": 7, "seeds": [0], "blocked": blocked,
            }
        )
    for budget, rng in ((1, 1), (2, 2), (3, 3)):
        queries.append(
            {
                "op": "block", "graph": "toy", "theta": 100,
                "seed": 7, "seeds": [0], "budget": budget, "rng": rng,
            }
        )
    return queries


def _normalise(response: dict) -> dict:
    assert response["ok"], response
    result = dict(response["result"])
    result.pop("elapsed_seconds", None)
    return result


class TestConcurrency:
    def test_concurrent_mixed_equals_serial(self, registry):
        queries = _mixed_queries() * 3  # 27 queries, heavy overlap
        # serial reference: a fresh service answers one at a time
        serial_service = BlockerService(
            registry=default_registry(scale=0.05)
        )
        serial = [
            _normalise(serial_service.handle(q)) for q in queries
        ]
        serial_service.close()

        # concurrent: one warm artifact, one thread per query
        service = BlockerService(registry=registry)
        server = serve(port=0, service=service)
        server_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        server_thread.start()
        host, port = server.server_address[:2]
        service.handle(  # pre-warm so every thread hits the same state
            {"op": "warm", "graph": "toy", "theta": 100, "seed": 7}
        )
        results: list[dict | None] = [None] * len(queries)
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(queries))

        def fire(index: int, query: dict) -> None:
            try:
                with ServiceClient(host, port, timeout=60) as client:
                    barrier.wait()
                    results[index] = _normalise(
                        client.request(query["op"], **{
                            k: v for k, v in query.items() if k != "op"
                        })
                    )
            except BaseException as error:  # noqa: BLE001 - reraise
                errors.append(error)

        threads = [
            threading.Thread(target=fire, args=(i, q), daemon=True)
            for i, q in enumerate(queries)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        try:
            assert not errors, errors
            # bit-identical, not approximately equal: same pooled
            # samples, same sums, regardless of interleaving
            assert results == serial
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=5)

    def test_coalescing_batches_concurrent_spreads(self, registry):
        service = BlockerService(registry=registry)
        server = serve(port=0, service=service)
        server_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        server_thread.start()
        host, port = server.server_address[:2]
        try:
            service.handle(
                {"op": "warm", "graph": "toy", "theta": 100, "seed": 7}
            )
            artifact = service.cache.get(
                ArtifactKey("toy", "wc", 100, 7)
            )
            done = threading.Barrier(9)

            def query(blocked: list[int]) -> None:
                with ServiceClient(host, port, timeout=60) as client:
                    client.spread(
                        graph="toy", theta=100, seed=7, seeds=[0],
                        blocked=blocked,
                    )
                done.wait()

            threads = [
                threading.Thread(
                    target=query, args=([v],), daemon=True
                )
                for v in range(1, 9)
            ]
            # hold the artifact lock so the executor stalls while the
            # clients queue up, then release: the drain must coalesce
            # (the stalled worker may hold the first few submissions,
            # so watch the dispatch counter, not the queue depth)
            with artifact._lock:
                for t in threads:
                    t.start()
                for _ in range(400):
                    if service.stats.requests.get("spread", 0) >= 8:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("clients never queued up")
                time.sleep(0.2)  # let the counted submits reach the queue
            done.wait()
            for t in threads:
                t.join(timeout=30)
            assert service.stats.batches >= 1
            assert service.stats.max_batch >= 2
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=5)


class TestExecutorRetirement:
    def test_eviction_retires_executor(self, registry):
        """Evicted artifacts must not be pinned by their executors."""
        service = BlockerService(
            registry=registry,
            cache=ArtifactCache(registry, max_entries=1),
        )
        try:
            keys = [
                ArtifactKey("toy", "wc", 50, seed) for seed in (1, 2, 3)
            ]
            for key in keys:
                response = service.handle(
                    {"op": "spread", "seeds": [0], **key.as_dict()}
                )
                assert response["ok"], response
            assert service.cache.stats.evictions == 2
            # only the resident key's executor survives
            assert set(service._executors) == {keys[-1]}
        finally:
            service.close()

    def test_retired_executor_still_serves_direct(self, registry):
        """A submit that loses the close race answers, not hangs."""
        cache = ArtifactCache(registry, max_entries=2)
        service = BlockerService(cache=cache)
        try:
            artifact = cache.get(TOY_KEY)
            executor = service._executor(TOY_KEY)
            before = executor.submit(
                "spread",
                {"seeds": [0], "blocked": [4], "theta": 100},
            )
            executor.close()
            after = executor.submit(
                "spread",
                {"seeds": [0], "blocked": [4], "theta": 100},
            )
            assert after == before == artifact.spread([0], [4])
        finally:
            service.close()


class TestServiceAgainstEngine:
    def test_service_spread_matches_pooled_evaluator(self, cache):
        """The served number is the engine's number, not a re-estimate."""
        artifact = cache.get(TOY_KEY)
        service = BlockerService(cache=cache)
        response = service.handle(
            {
                "op": "spread", "graph": "toy", "theta": 100,
                "seed": 7, "seeds": [0], "blocked": [4],
            }
        )
        direct = artifact.pooled.expected_spread([0], 100, [4])
        assert response["result"]["spread"] == direct


def test_artifact_exposes_engine_stats(cache):
    artifact = cache.get(TOY_KEY)
    artifact.spread([0], [])
    description = artifact.describe()
    assert description["pool"]["generated"] >= 100
    assert set(description["sketch"]) == {
        "queries", "rebases", "trees_built", "samples_skipped",
        "tree_bytes", "arena_bytes", "postings_bytes",
        "rehydrations", "persists",
        "deltas", "delta_trees_rebuilt", "delta_samples_skipped",
    }


# ----------------------------------------------------------------------
# wire protocol v1: stable codes, typed exceptions, overload guard
# ----------------------------------------------------------------------
class TestWireProtocolV1:
    def test_protocol_constants_are_stable(self):
        from repro.service import ERROR_CODES, PROTOCOL_VERSION

        # golden: changing either is a wire-compatibility break; the
        # tuple is append-only (draining joined with the sharded
        # front end)
        assert PROTOCOL_VERSION == 1
        assert ERROR_CODES == (
            "unknown_op",
            "unknown_graph",
            "bad_params",
            "overloaded",
            "internal",
            "draining",
        )

    def test_typed_exceptions_over_tcp(self, running_server):
        from repro.service import (
            BadParamsError,
            UnknownGraphError,
            UnknownOpError,
        )

        with client_for(running_server) as client:
            with pytest.raises(UnknownGraphError, match="unknown graph"):
                client.spread(graph="nope", seeds=[0])
            with pytest.raises(UnknownOpError, match="teleport"):
                client.call("teleport")
            with pytest.raises(BadParamsError, match="unknown model"):
                client.call("spread", graph="toy", model="ic")
            error = pytest.raises(
                UnknownGraphError, client.spread, graph="nope", seeds=[0]
            ).value
            assert error.code == "unknown_graph"
            assert isinstance(error, ServiceError)

    def test_client_validates_before_any_network_io(self):
        from repro.service import BadParamsError

        # port 1 is never listening: reaching the network would raise
        # OSError, so a BadParamsError proves client-side validation
        client = ServiceClient("127.0.0.1", 1, timeout=0.2)
        with pytest.raises(BadParamsError, match="theta"):
            client.spread(graph="toy", theta=0, seeds=[0])
        with pytest.raises(BadParamsError, match="seeds"):
            client.block(graph="toy", seeds=[0, "x"])
        with pytest.raises(BadParamsError, match="budget"):
            client.block(graph="toy", budget=0)
        with pytest.raises(BadParamsError, match="graph"):
            client.warm(graph="")
        assert client._sock is None

    def test_legacy_string_error_raises_bare_service_error(self):
        from repro.service.client import _raise_for_error

        with pytest.raises(ServiceError, match="boom") as caught:
            _raise_for_error({"ok": False, "error": "boom"})
        assert caught.value.code is None
        assert type(caught.value) is ServiceError

    def test_unknown_code_degrades_to_service_error(self):
        from repro.service.client import _raise_for_error

        envelope = {
            "ok": False,
            "v": 1,
            "error": {"code": "future_code", "message": "??", "op": None},
        }
        with pytest.raises(ServiceError) as caught:
            _raise_for_error(envelope)
        assert type(caught.value) is ServiceError
        assert caught.value.code == "future_code"

    def test_overload_guard_rejects_with_stable_code(self, registry):
        service = BlockerService(registry=registry, max_pending=0)
        service.handle(  # warm the artifact without the executor
            {"op": "warm", "graph": "toy", "theta": 100, "seed": 7}
        )
        response = service.handle(
            {"op": "spread", "graph": "toy", "seeds": [0], "theta": 100}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "overloaded"

    def test_no_overload_guard_by_default(self, registry):
        service = BlockerService(registry=registry)
        response = service.handle(
            {"op": "spread", "graph": "toy", "seeds": [0], "theta": 100}
        )
        assert response["ok"]

    def test_overloaded_error_over_tcp(self, registry):
        from repro.service import OverloadedError

        service = BlockerService(registry=registry, max_pending=0)
        server = serve(port=0, service=service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            with client_for(server) as client:
                with pytest.raises(OverloadedError):
                    client.spread(graph="toy", seeds=[0], theta=100)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestSaturationTelemetry:
    """The executor's pending/shed/age accounting (ISSUE 8 part b).

    The invariant the gauges promise: ``pending`` is updated under the
    executor's own mutex, so at any quiescent point
    ``submitted - completed == pending == 0`` — torn accounting under
    concurrency would leave a residue here.
    """

    @staticmethod
    def _counters(service: BlockerService, graph: str) -> dict:
        metrics = service.metrics
        return {
            "pending": metrics.gauge(
                "repro_executor_pending", labels=("graph",)
            ).labels(graph).value,
            "submitted": metrics.counter(
                "repro_executor_submitted_total", labels=("graph",)
            ).labels(graph).value,
            "completed": metrics.counter(
                "repro_executor_completed_total", labels=("graph",)
            ).labels(graph).value,
            "queue_age": metrics.gauge(
                "repro_executor_queue_age_seconds", labels=("graph",)
            ).labels(graph).value,
            "shed": metrics.counter(
                "repro_shed_requests_total", labels=("graph", "reason")
            ).labels(graph, "max_pending").value,
            "direct": metrics.counter(
                "repro_executor_direct_serves_total", labels=("graph",)
            ).labels(graph).value,
        }

    def test_reconciliation_under_concurrency(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        errors: list[BaseException] = []

        def worker(idx: int) -> None:
            try:
                for q in range(5):
                    service.handle({
                        "op": "spread", "graph": "toy", "theta": 100,
                        "seeds": [0], "blocked": [4] if q % 2 else [],
                    })
            except BaseException as error:  # noqa: BLE001 - surface
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(6)
        ]
        try:
            for t in threads:
                t.start()
        finally:
            for t in threads:
                t.join(timeout=30)
        assert not errors
        counters = self._counters(service, "toy")
        service.close()
        assert counters["submitted"] == 30
        assert counters["completed"] == 30
        assert counters["pending"] == 0
        assert (
            counters["submitted"] - counters["completed"]
            == counters["pending"]
        )
        assert counters["queue_age"] >= 0.0
        assert counters["shed"] == 0

    def test_shed_counter_labels_reason(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry(), max_pending=0
        )
        try:
            service.handle(
                {"op": "warm", "graph": "toy", "theta": 100, "seed": 7}
            )
            for _ in range(3):
                response = service.handle({
                    "op": "spread", "graph": "toy", "theta": 100,
                    "seeds": [0],
                })
                assert response["error"]["code"] == "overloaded"
            counters = self._counters(service, "toy")
            assert counters["shed"] == 3
            assert counters["submitted"] == 0
            text = service.metrics.render()
            assert (
                'repro_shed_requests_total'
                '{graph="toy",reason="max_pending"} 3' in text
            )
        finally:
            service.close()

    def test_retired_executor_direct_serve_is_counted(self, registry):
        from repro.obs import MetricsRegistry
        from repro.service.server import _ArtifactExecutor

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        try:
            service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0],
            })
            key = service._artifact_key(
                {"graph": "toy", "theta": 100}
            )
            executor = service._executors[key]
            assert isinstance(executor, _ArtifactExecutor)
            executor.close()  # retire it under the service's feet
            before = self._counters(service, "toy")
            response = service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0], "blocked": [4],
            })
            assert response["ok"]
            after = self._counters(service, "toy")
            assert after["direct"] == before["direct"] + 1
            # direct serves bypass the queue: no pending/submitted drift
            assert after["submitted"] == before["submitted"]
            assert after["pending"] == 0
        finally:
            service.close()

    def test_failed_enqueue_releases_the_pending_slot(self, registry):
        """A put() that explodes must roll back ``_pending`` — a
        leaked slot would ratchet the admission guard shut."""
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry(), max_pending=1
        )
        try:
            service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0],
            })
            key = service._artifact_key({"graph": "toy", "theta": 100})
            executor = service._executors[key]

            class _Boom(Exception):
                pass

            class _ExplodingQueue:
                def put(self, item):
                    raise _Boom("queue full")

            real_queue = executor._queue
            executor._queue = _ExplodingQueue()
            try:
                with pytest.raises(_Boom):
                    executor.submit(
                        "spread",
                        {"seeds": [0], "blocked": [], "theta": 100},
                    )
            finally:
                executor._queue = real_queue
            assert executor._pending == 0
            counters = self._counters(service, "toy")
            assert counters["pending"] == 0
            # the slot is free again: the next query must not shed
            response = service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0],
            })
            assert response["ok"]
        finally:
            service.close()

    def test_engine_error_keeps_accounting_exact(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        try:
            service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0],
            })
            key = service._artifact_key({"graph": "toy", "theta": 100})
            artifact = service.cache.get(key)

            def explode(*args, **kwargs):
                raise RuntimeError("engine exploded")

            original = artifact.spread_many
            artifact.spread_many = explode
            try:
                response = service.handle({
                    "op": "spread", "graph": "toy", "theta": 100,
                    "seeds": [0],
                })
            finally:
                artifact.spread_many = original
            assert not response["ok"]
            assert "engine exploded" in response["error"]["message"]
            counters = self._counters(service, "toy")
            assert counters["pending"] == 0
            assert counters["submitted"] == counters["completed"]
        finally:
            service.close()

    def test_worker_crash_fails_futures_instead_of_hanging(
        self, registry
    ):
        """An exception the worker loop never anticipated (here: a
        trace whose ``add_span`` explodes) must fail the waiting
        future, not strand it — and the accounting must still
        reconcile."""
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        try:
            service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0],
            })
            key = service._artifact_key({"graph": "toy", "theta": 100})
            executor = service._executors[key]

            class _BombTrace:
                def add_span(self, *args, **kwargs):
                    raise RuntimeError("tracing exploded")

            with pytest.raises(RuntimeError, match="tracing exploded"):
                executor.submit(
                    "spread",
                    {"seeds": [0], "blocked": [], "theta": 100},
                    trace=_BombTrace(),
                )
            counters = self._counters(service, "toy")
            assert counters["pending"] == 0
            assert counters["submitted"] == counters["completed"]
            # the worker thread survived: the next query still answers
            response = service.handle({
                "op": "spread", "graph": "toy", "theta": 100,
                "seeds": [0],
            })
            assert response["ok"]
        finally:
            service.close()

    def test_inflight_gauge_settles_to_zero(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        try:
            service.handle({"op": "ping"})
            service.handle({"op": "nope"})  # errors also decrement
            gauge = service.metrics.gauge("repro_inflight_requests")
            assert gauge.value == 0.0
        finally:
            service.close()


class TestProfileOp:
    @pytest.fixture()
    def service(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        yield service
        service.close()

    def test_start_dump_stop_round_trip(self, service):
        started = service.handle(
            {"op": "profile", "action": "start", "hz": 500}
        )
        assert started["ok"]
        assert started["result"]["active"] is True
        assert started["result"]["hz"] == 500.0
        service.handle({
            "op": "spread", "graph": "toy", "theta": 100, "seeds": [0],
        })
        time.sleep(0.05)  # a few ticks even on a fast machine
        dump = service.handle(
            {"op": "profile", "action": "dump", "limit": 10}
        )
        assert dump["ok"]
        assert dump["result"]["samples"] > 0
        assert isinstance(dump["result"]["collapsed"], str)
        assert len(dump["result"]["collapsed"].splitlines()) <= 10
        stopped = service.handle({"op": "profile", "action": "stop"})
        assert stopped["ok"]
        assert stopped["result"]["active"] is False
        status = service.handle({"op": "profile"})
        assert status["result"]["active"] is False

    def test_start_twice_is_an_error(self, service):
        service.handle({"op": "profile", "action": "start", "hz": 500})
        response = service.handle({"op": "profile", "action": "start"})
        assert not response["ok"]
        assert "already running" in response["error"]["message"]

    def test_restart_with_new_hz_recreates(self, service):
        service.handle({"op": "profile", "action": "start", "hz": 500})
        service.handle({"op": "profile", "action": "stop"})
        started = service.handle(
            {"op": "profile", "action": "start", "hz": 250}
        )
        assert started["result"]["hz"] == 250.0

    def test_validation(self, service):
        for request, fragment in [
            ({"op": "profile", "action": "flame"}, "unknown profile"),
            (
                {"op": "profile", "action": "start", "hz": "fast"},
                "must be a number",
            ),
            (
                {"op": "profile", "action": "start", "hz": 10_000},
                "hz must be",
            ),
            ({"op": "profile", "action": "dump"}, "never started"),
            (
                {"op": "profile", "action": "stop"},
                "never started",
            ),
        ]:
            response = service.handle(request)
            assert not response["ok"], request
            assert fragment in response["error"]["message"]
        bad_limit = service.handle({"op": "profile", "action": "start"})
        assert bad_limit["ok"]
        response = service.handle(
            {"op": "profile", "action": "dump", "limit": 0}
        )
        assert not response["ok"]

    def test_serve_profile_hz_arms_from_boot(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry,
            metrics=MetricsRegistry(),
            profile_hz=500,
        )
        try:
            assert service.profiler is not None
            assert service.profiler.active
            stats = service.handle({"op": "stats"})["result"]
            assert stats["profiler"]["active"] is True
        finally:
            service.close()
        assert not service.profiler.active  # close() stops it

    def test_client_verb_and_tcp(self, registry):
        from repro.obs import MetricsRegistry
        from repro.service import BadParamsError

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        server = serve(port=0, service=service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            with client_for(server) as client:
                with pytest.raises(BadParamsError, match="action"):
                    client.profile("flame")
                client.profile("start", hz=500)
                client.spread(graph="toy", theta=100, seeds=[0])
                time.sleep(0.05)
                dump = client.profile("dump", limit=5)
                assert dump["samples"] > 0
                stopped = client.profile("stop")
                assert stopped["active"] is False
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestServiceSLOs:
    def test_slo_section_in_stats_and_gauges(self, registry):
        from repro.obs import MetricsRegistry, parse_slo

        service = BlockerService(
            registry=registry,
            metrics=MetricsRegistry(),
            slos=[parse_slo("p99=250ms"), parse_slo("error_rate=50%")],
        )
        try:
            for _ in range(3):
                service.handle({"op": "ping"})
            stats = service.handle({"op": "stats"})["result"]
            slos = {
                entry["spec"]: entry for entry in stats["slo"]["slos"]
            }
            assert slos["p99=250ms"]["requests"] >= 3
            assert "burn_rate" in slos["error_rate=50%"]
            text = service.metrics.render()
            assert 'repro_slo_burn_rate{slo="p99_250ms"}' in text
        finally:
            service.close()

    def test_no_slo_section_without_slos(self, registry):
        from repro.obs import MetricsRegistry

        service = BlockerService(
            registry=registry, metrics=MetricsRegistry()
        )
        try:
            stats = service.handle({"op": "stats"})["result"]
            assert "slo" not in stats
        finally:
            service.close()
