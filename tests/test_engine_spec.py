"""Tests for :class:`repro.engine.EngineSpec` and the deprecation of
the loose-keyword factory signatures.

The spec is the one value every front end (factories, the serving
layer's :class:`ArtifactKey`, the CLI) agrees on; these tests pin its
validation, its cache-key discipline, and the golden behaviour of the
legacy string-backend paths: they still work, produce bit-identical
evaluators, and warn exactly once per call.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import assign_weighted_cascade, EngineSpec
from repro.datasets import figure1_graph
from repro.engine import (
    build_evaluator,
    make_evaluator,
    ParallelEvaluator,
    PooledEvaluator,
    ScalarEvaluator,
    SketchIndex,
    VectorizedEvaluator,
)


@pytest.fixture()
def graph():
    return assign_weighted_cascade(figure1_graph())


class TestEngineSpec:
    def test_defaults(self):
        spec = EngineSpec()
        assert spec.engine == "sketch"
        assert spec.model == "wc"
        assert spec.theta == 200
        assert spec.seed == 7
        assert spec.workers is None
        assert spec.layout == "arena"
        assert spec.cache_dir is None

    def test_frozen(self):
        spec = EngineSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.engine = "pooled"

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"engine": "quantum"}, "engine"),
            ({"model": "ic"}, "model"),
            ({"layout": "columnar"}, "layout"),
            ({"theta": 0}, "theta"),
            ({"theta": True}, "theta"),
            ({"seed": "seven"}, "seed"),
            ({"seed": False}, "seed"),
            ({"workers": 0}, "workers"),
        ],
    )
    def test_validation(self, patch, fragment):
        with pytest.raises((ValueError, TypeError), match=fragment):
            EngineSpec(**patch)

    def test_cache_key_encodes_model_seed_stream(self):
        spec = EngineSpec(model="tr", seed=11)
        assert spec.cache_key(0) == "tr-seed11-stream0"
        assert spec.cache_key(1) == "tr-seed11-stream1"
        assert EngineSpec(model="wc", seed=11).cache_key(0) != (
            spec.cache_key(0)
        )

    def test_with_engine(self):
        spec = EngineSpec(engine="sketch", seed=3)
        pooled = spec.with_engine("pooled")
        assert pooled.engine == "pooled"
        assert pooled.seed == spec.seed
        assert spec.engine == "sketch"  # original untouched

    def test_as_dict_round_trips(self):
        spec = EngineSpec(model="tr", theta=50, seed=9, layout="legacy")
        assert EngineSpec(**spec.as_dict()) == spec


class TestSpecFactories:
    @pytest.mark.parametrize(
        "engine, cls",
        [
            ("scalar", ScalarEvaluator),
            ("vectorized", VectorizedEvaluator),
            ("parallel", ParallelEvaluator),
            ("pooled", PooledEvaluator),
            ("sketch", SketchIndex),
        ],
    )
    def test_make_evaluator_spec_no_warning(self, graph, engine, cls):
        spec = EngineSpec(engine=engine, seed=5, workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with make_evaluator(graph, spec) as evaluator:
                assert isinstance(evaluator, cls)

    def test_build_evaluator_spec_stream_discipline(self, graph):
        spec = EngineSpec(engine="pooled", seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with build_evaluator(graph, spec, stream=0) as a, \
                    build_evaluator(graph, spec, stream=0) as b, \
                    build_evaluator(graph, spec, stream=1) as c:
                # same stream replays the same worlds; an independent
                # stream draws different ones
                assert a.expected_spread([0], 64) == (
                    b.expected_spread([0], 64)
                )
                assert a.pool.get(64).positions.tolist() != (
                    c.pool.get(64).positions.tolist()
                )

    def test_spec_matches_legacy_bit_for_bit(self, graph):
        """The spec path is a re-spelling, not a semantic change."""
        spec = EngineSpec(engine="sketch", seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = build_evaluator(graph, "sketch", rng=5, stream=0)
        with build_evaluator(graph, spec) as modern:
            with legacy:
                assert modern.expected_spread([0], 64) == (
                    legacy.expected_spread([0], 64)
                )

    def test_spec_cache_dir_persists_pool(self, graph, tmp_path):
        spec = EngineSpec(
            engine="pooled", seed=5, cache_dir=tmp_path
        )
        with build_evaluator(graph, spec) as first:
            first.expected_spread([0], 32)
        assert list(tmp_path.glob("pool-*.npy"))
        with build_evaluator(graph, spec) as second:
            second.expected_spread([0], 32)
            assert second.pool.stats.disk_loads == 1


class TestDeprecatedSignatures:
    def test_make_evaluator_string_warns(self, graph):
        with pytest.warns(DeprecationWarning, match="EngineSpec"):
            make_evaluator(graph, "vectorized", rng=1)

    def test_build_evaluator_string_warns(self, graph):
        with pytest.warns(DeprecationWarning, match="EngineSpec"):
            build_evaluator(graph, "vectorized", rng=1)

    def test_legacy_default_backend_warns(self, graph):
        with pytest.warns(DeprecationWarning):
            make_evaluator(graph)

    def test_legacy_answers_unchanged(self, graph):
        """Golden: the deprecated path still returns the historical
        numbers (warning only, no behaviour change)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = build_evaluator(graph, "pooled", rng=5, stream=0)
        spec_built = build_evaluator(
            graph, EngineSpec(engine="pooled", seed=5)
        )
        with legacy, spec_built:
            assert legacy.expected_spread([0], 64) == (
                spec_built.expected_spread([0], 64)
            )

    def test_legacy_cache_key_format_preserved(self, graph, tmp_path):
        """Pool caches stay addressable: an integer rng on the legacy
        path still derives seed{rng}-stream{stream}, prefixed by the
        coin-scheme tag so pools drawn under a different sample
        distribution can never attach."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with build_evaluator(
                graph, "pooled", rng=5, stream=0, cache_dir=tmp_path
            ) as ev:
                ev.expected_spread([0], 32)
                digest = ev.pool.cache_digest
        import hashlib

        import numpy as np

        csr = ev.csr
        key = hashlib.sha256()
        key.update(f"{csr.n}:{csr.m}:coins2:seed5-stream0".encode())
        for array in (csr.indptr, csr.indices, csr.probs):
            key.update(np.ascontiguousarray(array).tobytes())
        assert digest == key.hexdigest()[:16]
