"""Setup shim: enables legacy editable installs (`pip install -e .`)
in offline environments where the `wheel` package is unavailable.
All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
