"""Extension (Section V-E): AG/GR under the triggering (LT) model.

The paper's extension section notes that AG and GR run unchanged on
triggering-model samples.  This benchmark runs both algorithms with
the Linear Threshold sampler on two stand-ins and sanity-checks the
shape: greedy blocking still crushes the spread relative to random
blocking, and GR stays competitive with AG.

Final spreads are evaluated with LT live-edge sampling (Monte-Carlo IC
evaluation would be the wrong diffusion model here).
"""

from __future__ import annotations

import time

from repro.bench import format_table, pick_seeds, prepare_graph
from repro.core import advanced_greedy, greedy_replace, random_blockers
from repro.datasets import load_dataset
from repro.graph import reachable_set_adj
from repro.models import LinearThresholdSampler
from repro.rng import ensure_rng

from .conftest import bench_eval_rounds, bench_scale, bench_theta, emit

BUDGET = 10
NUM_SEEDS = 5
DATASETS = ("email-core", "dblp")


def lt_spread(graph, seeds, blockers, rounds, rng) -> float:
    """Expected LT spread via triggering-set live-edge sampling."""
    sampler = LinearThresholdSampler(graph, ensure_rng(rng))
    sampler.block(blockers)
    total = 0
    seed_list = list(seeds)
    for _ in range(rounds):
        succ = {}
        csr = sampler.csr
        src = csr.src_list
        dst = csr.indices_list
        for j in sampler.sample_surviving_edges().tolist():
            succ.setdefault(src[j], []).append(dst[j])
        seen: set[int] = set()
        for s in seed_list:
            if s not in seen:
                seen |= reachable_set_adj(succ, s)
        total += len(seen)
    return total / rounds


def run_triggering() -> list[list[object]]:
    factory = lambda g, rng: LinearThresholdSampler(g, rng)  # noqa: E731
    rows = []
    for key in DATASETS:
        graph = prepare_graph(load_dataset(key, bench_scale()), "wc")
        seeds = pick_seeds(graph, NUM_SEEDS, rng=131)

        start = time.perf_counter()
        ag = advanced_greedy(
            graph, seeds, BUDGET, theta=bench_theta(), rng=132,
            sampler_factory=factory,
        )
        ag_time = time.perf_counter() - start

        start = time.perf_counter()
        gr = greedy_replace(
            graph, seeds, BUDGET, theta=bench_theta(), rng=133,
            sampler_factory=factory,
        )
        gr_time = time.perf_counter() - start

        rand = random_blockers(graph, seeds, BUDGET, rng=134)
        rounds = max(800, bench_eval_rounds())
        rows.append(
            [
                key,
                round(lt_spread(graph, seeds, [], rounds, 99), 3),
                round(lt_spread(graph, seeds, rand, rounds, 99), 3),
                round(lt_spread(graph, seeds, ag.blockers, rounds, 99), 3),
                round(lt_spread(graph, seeds, gr.blockers, rounds, 99), 3),
                round(ag_time, 2),
                round(gr_time, 2),
            ]
        )
    return rows


def test_extension_triggering_model(benchmark):
    rows = benchmark.pedantic(run_triggering, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset",
            "no blocking",
            "RA",
            "AG",
            "GR",
            "AG time (s)",
            "GR time (s)",
        ],
        rows,
        title=(
            "Extension §V-E — LT-model spread after blocking "
            f"(b={BUDGET}, |S|={NUM_SEEDS})"
        ),
    )
    emit("ext_triggering", table)
