"""Ablation: fresh samples per round (AG) vs one fixed pool (static).

Plain AdvancedGreedy redraws theta sampled graphs each round; the
sample-reuse variant draws one pool and evaluates every round on it
(common random numbers).  This ablation measures both sides of the
trade: runtime saved by skipping per-round sampling, and the quality
effect of pool reuse (potential overfitting to one pool).  Expected
shape: near-identical spreads, modest runtime edge for reuse on
sampling-bound workloads.
"""

from __future__ import annotations

import time

from repro.bench import (
    evaluate_spread,
    format_table,
    pick_seeds,
    prepare_graph,
)
from repro.core import advanced_greedy, static_sample_greedy
from repro.datasets import load_dataset

from .conftest import bench_eval_rounds, bench_scale, bench_theta, emit

BUDGET = 10
NUM_SEEDS = 5
DATASETS = ("email-core", "twitter")


def run_sample_reuse_ablation() -> list[list[object]]:
    rows = []
    for key in DATASETS:
        for model in ("tr", "wc"):
            graph = prepare_graph(
                load_dataset(key, bench_scale()), model, rng=141
            )
            seeds = pick_seeds(graph, NUM_SEEDS, rng=141)

            start = time.perf_counter()
            fresh = advanced_greedy(
                graph, seeds, BUDGET, theta=bench_theta(), rng=142
            )
            fresh_time = time.perf_counter() - start

            start = time.perf_counter()
            reuse = static_sample_greedy(
                graph, seeds, BUDGET, theta=bench_theta(), rng=143
            )
            reuse_time = time.perf_counter() - start

            fresh_spread = evaluate_spread(
                graph, seeds, fresh.blockers,
                rounds=bench_eval_rounds(), rng=99,
            )
            reuse_spread = evaluate_spread(
                graph, seeds, reuse.blockers,
                rounds=bench_eval_rounds(), rng=99,
            )
            rows.append(
                [
                    f"{key}/{model}",
                    round(fresh_spread, 3),
                    round(reuse_spread, 3),
                    round(fresh_time, 2),
                    round(reuse_time, 2),
                ]
            )
    return rows


def test_ablation_sample_reuse(benchmark):
    rows = benchmark.pedantic(
        run_sample_reuse_ablation, rounds=1, iterations=1
    )
    table = format_table(
        [
            "workload",
            "AG spread (fresh)",
            "static spread (reuse)",
            "AG time (s)",
            "static time (s)",
        ],
        rows,
        title=(
            "Ablation — fresh samples per round vs fixed pool "
            f"(b={BUDGET}, theta={bench_theta()})"
        ),
    )
    emit("ablation_sample_reuse", table)
