"""Cold sketch construction: batched array-native vs legacy Python.

The sketch index made *queries* cheap (``bench_sketch_vs_mc.py``), but
until ISSUE 4 every cold build still materialised a Python ``dict``
adjacency per sample — ~``m`` dict operations to reach a subgraph that
is usually a tiny fraction of the graph — and ran the dominator pass
over it.  The array-native pipeline cuts each sample's CSR straight
out of the pooled arrays with numpy and hands it to the flat
Lengauer–Tarjan core, so Python-level work scales with the *reachable*
subgraph only.  This benchmark times both constructions on the same
pooled samples:

* **legacy** — the pre-refactor per-sample path, reproduced verbatim:
  ``adjacency_from_edges`` + the adjacency-based
  ``dominator_order_sizes`` per sample;
* **batched** — ``repro.engine.build_trees`` over the same batch
  (``--workers`` additionally fans it out across processes; results
  are bit-identical, which the benchmark asserts tree by tree).

Sampling cost is excluded from both sides (the pool is shared and
chunk-seeded), so the ratio isolates construction mechanics and
cancels machine speed.  The acceptance bar: on the 10k-vertex WC
graph at theta=200 the batched build must be >= 5x faster.  ``--json
PATH`` writes ``BENCH_sketch_build.json``; CI gates
``build_speedup_vs_legacy`` against the committed baseline via
``benchmarks/check_bench_regression.py`` (report kind auto-detected).

Run standalone::

    python benchmarks/bench_sketch_build.py --n 2000 --theta 60
    python benchmarks/bench_sketch_build.py --json BENCH_sketch_build.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.bench import format_table, pick_seeds
from repro.dominator import dominator_order_sizes
from repro.engine import build_trees, SketchIndex
from repro.engine.pool import SamplePool
from repro.graph import barabasi_albert, CSRGraph
from repro.models import assign_weighted_cascade
from repro.sampling import adjacency_from_edges

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "sketch_build"
JSON_SCHEMA = 1
TARGET_SPEEDUP = 5.0


def legacy_build(csr, batch, seeds) -> list:
    """The pre-refactor per-sample Python build, reproduced verbatim."""
    trees = []
    for t in range(batch.theta):
        succ = adjacency_from_edges(csr, batch.surviving(t))
        succ[csr.n] = list(seeds)
        trees.append(dominator_order_sizes(succ, csr.n))
    return trees


def run_build_benchmark(
    n: int = 10_000,
    attach: int = 5,
    theta: int = 200,
    num_seeds: int = 10,
    rng: int = 7,
    workers: int | None = None,
    repeats: int = 3,
) -> dict[str, object]:
    """Time legacy vs batched construction on shared pooled samples."""
    graph = assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    csr = CSRGraph(graph)
    pool = SamplePool(csr, rng=rng)
    start = time.perf_counter()
    batch = pool.get(theta)
    t_sampling = time.perf_counter() - start

    def best_of(build) -> tuple[float, list]:
        best, trees = float("inf"), None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            trees = build()
            best = min(best, time.perf_counter() - start)
        return best, trees

    t_legacy, legacy_trees = best_of(
        lambda: legacy_build(csr, batch, seeds)
    )
    t_batched, batched_trees = best_of(
        lambda: build_trees(
            csr, batch, range(theta), seeds, workers=workers
        )
    )

    # the refactor's compatibility bar: identical trees, sample by
    # sample — the aggregated sketch arrays (and therefore blocker
    # selections and spread estimates) follow
    identical = all(
        np.array_equal(lo, bo) and np.array_equal(ls, bs)
        for (lo, ls), (bo, bs) in zip(legacy_trees, batched_trees)
    )

    # end-to-end cold index: sampling + batched build + aggregation
    start = time.perf_counter()
    with SketchIndex(csr, rng=rng, workers=workers) as index:
        index.expected_spread(seeds, theta)
        t_cold_index = time.perf_counter() - start

    reach = float(
        np.mean([order.shape[0] - 1 for order, _ in batched_trees])
    )
    return {
        "n": n,
        "m": csr.m,
        "theta": theta,
        "mean_reachable": reach,
        "t_sampling": t_sampling,
        "t_legacy": t_legacy,
        "t_batched": t_batched,
        "t_cold_index": t_cold_index,
        "speedup": t_legacy / t_batched,
        "identical": identical,
    }


def render(r: dict[str, object]) -> str:
    rows = [
        [
            "legacy per-sample Python build",
            r["theta"],
            f"{1e3 * r['t_legacy']:.1f}",
            f"{1e3 * r['t_legacy'] / r['theta']:.3f}",
        ],
        [
            "batched array-native build",
            r["theta"],
            f"{1e3 * r['t_batched']:.1f}",
            f"{1e3 * r['t_batched'] / r['theta']:.3f}",
        ],
        [
            "cold SketchIndex (sampling + build)",
            r["theta"],
            f"{1e3 * r['t_cold_index']:.1f}",
            f"{1e3 * r['t_cold_index'] / r['theta']:.3f}",
        ],
    ]
    verdict = "PASS" if r["speedup"] >= TARGET_SPEEDUP else "FAIL"
    summary = (
        f"trees bit-identical: {r['identical']}; mean reachable "
        f"vertices/sample: {r['mean_reachable']:.1f} of {r['n']}\n"
        f"batched build speedup vs legacy: {r['speedup']:.1f}x "
        f"(>= {TARGET_SPEEDUP:.0f}x target: {verdict})"
    )
    table = format_table(
        ["construction", "trees", "total ms", "ms/tree"],
        rows,
        title=(
            f"cold sketch construction (n={r['n']}, WC model, "
            f"theta={r['theta']})"
        ),
    )
    return f"{table}\n{summary}"


def to_json(result: dict[str, object], params: dict) -> dict:
    """The ``BENCH_sketch_build.json`` document (see module docstring)."""
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "legacy_s": round(float(result["t_legacy"]), 6),
        "batched_s": round(float(result["t_batched"]), 6),
        "cold_index_s": round(float(result["t_cold_index"]), 6),
        "build_speedup_vs_legacy": round(float(result["speedup"]), 3),
        "identical": bool(result["identical"]),
    }


def test_sketch_build(benchmark):
    """pytest-benchmark entry, full acceptance size."""
    result = benchmark.pedantic(
        lambda: run_build_benchmark(n=10_000, theta=200),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(result))
    assert result["identical"]
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=5)
    parser.add_argument("--theta", type=int, default=200)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the batched build out across processes (default: serial)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timings per construction; the best is reported (default: 3)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable BENCH_sketch_build.json",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help=(
            "report but never fail on the speedup target (for smoke "
            "runs at sizes the acceptance bar was not defined for)"
        ),
    )
    args = parser.parse_args(argv)
    result = run_build_benchmark(
        n=args.n,
        attach=args.attach,
        theta=args.theta,
        num_seeds=args.seeds,
        rng=args.rng,
        workers=args.workers,
        repeats=args.repeats,
    )
    emit(RESULT_FILE, render(result))
    if args.json is not None:
        params = {
            "n": args.n,
            "attach": args.attach,
            "theta": args.theta,
            "seeds": args.seeds,
            "rng": args.rng,
            "workers": args.workers,
            "repeats": args.repeats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(result, params), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if not result["identical"]:
        print("FAIL: batched trees differ from the legacy build")
        return 1
    if not args.no_check and result["speedup"] < TARGET_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
