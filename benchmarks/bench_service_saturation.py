"""Service saturation: find the knee and meter the profiler's cost.

The latency benchmark (``bench_service_latency.py``) asks how fast a
warm query is; this one asks how far the service bends before it
breaks.  A ladder of closed-loop client counts fires spread queries
at one warm artifact over real TCP; each rung reports its sustained
throughput and tail latency, and the **knee** is the highest sustained
qps whose p99 stays under the bar — expressed as a multiple of the
same-run single-client p50, so the bar moves with machine speed
instead of encoding it.

Two more things ride along:

* **profiler overhead** — the single-client phase runs twice, without
  and with the sampling profiler at its default rate; the report
  asserts the warm-query p50 moved less than the budget (default 5%,
  the ISSUE 8 acceptance bar).  The profiler then stays on through
  the whole sweep, so its collapsed-stack dump is a flamegraph of the
  service *under saturation* — written next to the JSON report (CI
  uploads it as an artifact).
* **per-phase span breakdowns** — a traced probe through the real
  protocol after the sweep, plus each rung's coalescing and
  executor-counter deltas, so a throughput regression can be blamed
  on a phase rather than re-measured from scratch.

CI gates ``sustained_speedup_vs_serial`` — knee qps over same-run
profiled serial qps, a ratio of two same-process measurements that
cancels machine speed — via ``benchmarks/check_bench_regression.py``.

Run standalone::

    python benchmarks/bench_service_saturation.py --scale 0.4
    python benchmarks/bench_service_saturation.py \\
        --json BENCH_service_saturation.json \\
        --profile-output BENCH_service_saturation.collapsed
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

from repro.obs import DEFAULT_HZ, iter_spans, MetricsRegistry
from repro.service import (
    ArtifactCache,
    ArtifactKey,
    BlockerService,
    default_registry,
    serve,
    ServiceClient,
)

JSON_SCHEMA = 1

PROFILE_STACK_LIMIT = 40
"""Hottest stacks embedded in the JSON report (the full dump goes to
``--profile-output``)."""


def _percentiles(latencies: list[float]) -> dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
        "mean_ms": round(float(arr.mean()), 4),
    }


def _blocked_for(query: int, seeds: list[int], n: int) -> list[int]:
    """A deterministic per-query blocked set avoiding the seeds."""
    gen = np.random.default_rng(20_000 + query)
    seed_set = set(seeds)
    candidates = [v for v in range(n) if v not in seed_set]
    count = int(gen.integers(0, min(3, len(candidates)) + 1))
    picks = gen.choice(len(candidates), size=count, replace=False)
    return sorted(candidates[i] for i in picks)


def _executor_counters(service: BlockerService, graph: str) -> dict:
    """Current executor saturation counters for one graph label."""
    metrics = service.metrics

    def counter(name: str) -> float:
        return metrics.counter(name, labels=("graph",)).labels(graph).value

    return {
        "submitted": counter("repro_executor_submitted_total"),
        "completed": counter("repro_executor_completed_total"),
        "pending": metrics.gauge(
            "repro_executor_pending", labels=("graph",)
        ).labels(graph).value,
        "queue_age_seconds": round(
            metrics.gauge(
                "repro_executor_queue_age_seconds", labels=("graph",)
            ).labels(graph).value,
            6,
        ),
    }


def _fire(
    host: str,
    port: int,
    key: ArtifactKey,
    seeds: list[int],
    n: int,
    clients: int,
    queries_per_client: int,
    offset: int,
) -> tuple[list[float], float]:
    """Closed-loop load: every client fires back-to-back queries.

    Returns (per-query latencies, wall seconds across the whole rung).
    """
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def worker(idx: int) -> None:
        try:
            with ServiceClient(host, port) as client:
                barrier.wait()
                for q in range(queries_per_client):
                    blocked = _blocked_for(
                        offset + idx * queries_per_client + q, seeds, n
                    )
                    start = time.perf_counter()
                    client.spread(
                        seeds=seeds, blocked=blocked, **key.as_dict()
                    )
                    latencies[idx].append(time.perf_counter() - start)
        except BaseException as error:  # noqa: BLE001 - surface
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    return [latency for per in latencies for latency in per], wall


def run(params: dict) -> dict[str, object]:
    key = ArtifactKey(
        params["dataset"], params["model"], params["theta"],
        params["seed"],
    )
    registry = default_registry(scale=params["scale"])
    service = BlockerService(
        registry=registry,
        cache=ArtifactCache(registry, max_entries=2),
        metrics=MetricsRegistry(),
    )
    server = serve(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    queries = params["queries_per_client"]
    try:
        with ServiceClient(host, port) as warm_client:
            warm_client.warm(**key.as_dict())
            artifact = service.cache.get(key)
            seeds = artifact.default_seeds(params["num_seeds"])
            n = artifact.csr.n
            warm_client.spread(seeds=seeds, **key.as_dict())

        # --- profiler overhead: A/B/A so warmup drift cancels ---
        # off and on batches straddle each other (off, on, off); the
        # off baseline pools both flanks, so a process that is still
        # speeding up (or slowing down) biases both sides equally
        # instead of being billed to the profiler
        offset = 0
        off1_lat, off1_wall = _fire(
            host, port, key, seeds, n, 1, queries, offset
        )
        offset += queries
        with ServiceClient(host, port) as ctl:
            ctl.profile("start", hz=params["profile_hz"])
        on_lat, on_wall = _fire(
            host, port, key, seeds, n, 1, queries, offset
        )
        offset += queries
        with ServiceClient(host, port) as ctl:
            ctl.profile("stop")
        off2_lat, off2_wall = _fire(
            host, port, key, seeds, n, 1, queries, offset
        )
        offset += queries
        off_lat = off1_lat + off2_lat
        serial_off = _percentiles(off_lat)
        serial_on = _percentiles(on_lat)
        serial_off["qps"] = round(
            len(off_lat) / (off1_wall + off2_wall), 2
        )
        serial_on["qps"] = round(len(on_lat) / on_wall, 2)
        overhead_pct = round(
            (serial_on["p50_ms"] - serial_off["p50_ms"])
            / serial_off["p50_ms"]
            * 100.0,
            2,
        )

        # --- re-arm the profiler for the sweep (same tally keeps
        # accumulating; the dump is the whole run's flamegraph) ---
        with ServiceClient(host, port) as ctl:
            ctl.profile("start", hz=params["profile_hz"])

        # --- the sweep, profiler still sampling ---
        bar_ms = round(
            serial_on["p50_ms"] * params["p99_bar_multiple"], 4
        )
        sweep: list[dict[str, object]] = []
        before_stats = service.stats.as_dict()
        for clients in params["client_ladder"]:
            counters_before = _executor_counters(service, key.graph)
            lat, wall = _fire(
                host, port, key, seeds, n, clients, queries, offset
            )
            offset += clients * queries
            counters_after = _executor_counters(service, key.graph)
            after_stats = service.stats.as_dict()
            point = _percentiles(lat)
            point["clients"] = clients
            point["queries"] = len(lat)
            point["qps"] = round(len(lat) / wall, 2)
            point["under_bar"] = point["p99_ms"] <= bar_ms
            point["coalesced_batches"] = (
                after_stats["batches"] - before_stats["batches"]
            )
            point["executor"] = {
                "submitted": counters_after["submitted"]
                - counters_before["submitted"],
                "completed": counters_after["completed"]
                - counters_before["completed"],
                "pending_after": counters_after["pending"],
                "queue_age_seconds": counters_after[
                    "queue_age_seconds"
                ],
            }
            before_stats = after_stats
            sweep.append(point)

        knee = None
        for point in sweep:
            if point["under_bar"] and (
                knee is None or point["qps"] > knee["qps"]
            ):
                knee = point
        sustained_qps = knee["qps"] if knee is not None else 0.0
        sustained_speedup = (
            round(sustained_qps / serial_on["qps"], 2)
            if serial_on["qps"]
            else 0.0
        )

        # --- per-phase breakdown: one traced probe, warm path ---
        with ServiceClient(host, port) as probe:
            traced = probe.request(
                "spread", seeds=seeds, blocked=[], trace=True,
                **key.as_dict(),
            )
        phases: dict[str, dict[str, float]] = {}
        for node in iter_spans(traced.get("trace", {})):
            entry = phases.setdefault(
                node["name"], {"count": 0, "total_ms": 0.0}
            )
            entry["count"] += 1
            entry["total_ms"] = round(
                entry["total_ms"] + node["duration_ms"], 3
            )

        # --- the profile artifact: the whole run's collapsed stacks ---
        with ServiceClient(host, port) as ctl:
            dump = ctl.profile("stop")
            collapsed_full = service.profiler.collapsed()
            collapsed_top = service.profiler.collapsed(
                PROFILE_STACK_LIMIT
            )
        return {
            "schema": JSON_SCHEMA,
            "params": params,
            "serial": serial_off,
            "serial_profiled": serial_on,
            "profiler_overhead_pct": overhead_pct,
            "p99_bar_ms": bar_ms,
            "sweep": sweep,
            "knee": knee,
            "sustained_qps": sustained_qps,
            "sustained_speedup_vs_serial": sustained_speedup,
            "phases": phases,
            "profile": {
                "hz": dump["hz"],
                "samples": dump["samples"],
                "overruns": dump["overruns"],
                "distinct_stacks": dump["distinct_stacks"],
                "top_stacks": collapsed_top.splitlines(),
            },
            "_collapsed_full": collapsed_full,
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def render(report: dict) -> str:
    serial = report["serial"]
    lines = [
        "service saturation — knee of the clients ladder "
        f"({report['params']['dataset']}, scale="
        f"{report['params']['scale']:g}, theta="
        f"{report['params']['theta']}, p99 bar "
        f"{report['p99_bar_ms']:.2f} ms)",
        f"  serial     p50 {serial['p50_ms']:8.2f} ms   "
        f"{serial['qps']:8.2f} q/s  (profiled: p50 "
        f"{report['serial_profiled']['p50_ms']:.2f} ms, overhead "
        f"{report['profiler_overhead_pct']:+.1f}%)",
    ]
    for point in report["sweep"]:
        marker = " " if point["under_bar"] else "!"
        lines.append(
            f"  {point['clients']:3d} client{'s' if point['clients'] != 1 else ' '}"
            f" {marker} p50 {point['p50_ms']:8.2f} ms   p99 "
            f"{point['p99_ms']:8.2f} ms   {point['qps']:8.2f} q/s   "
            f"batches {point['coalesced_batches']}"
        )
    knee = report["knee"]
    if knee is None:
        lines.append("  knee: NONE — every rung blew the p99 bar")
    else:
        lines.append(
            f"  knee: {knee['clients']} clients at "
            f"{report['sustained_qps']:.2f} q/s = "
            f"{report['sustained_speedup_vs_serial']:.2f}x serial "
            f"({report['profile']['samples']} profile samples, "
            f"{report['profile']['distinct_stacks']} stacks)"
        )
    return "\n".join(lines)


def test_service_saturation(benchmark):
    """pytest-benchmark entry, scaled down for suite runtime."""
    params = {
        "dataset": "email-core",
        "scale": 0.2,
        "model": "wc",
        "theta": 100,
        "seed": 7,
        "num_seeds": 3,
        "queries_per_client": 10,
        "client_ladder": [1, 2, 4],
        "p99_bar_multiple": 50.0,
        "profile_hz": DEFAULT_HZ,
    }
    report = benchmark.pedantic(
        lambda: run(params), rounds=1, iterations=1
    )
    print(render(report))
    assert report["profile"]["samples"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="email-core")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--model", choices=("tr", "wc"), default="wc")
    parser.add_argument("--theta", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-seeds", type=int, default=5)
    parser.add_argument(
        "--queries-per-client", type=int, default=40,
        help="closed-loop queries per client per rung (default: 40)",
    )
    parser.add_argument(
        "--clients", default="1,2,4,8", metavar="LADDER",
        help="comma-separated client counts to sweep (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--p99-bar-multiple", type=float, default=20.0,
        help=(
            "p99 bar as a multiple of the same-run serial p50 "
            "(default: 20) — a rung over the bar is past the knee"
        ),
    )
    parser.add_argument(
        "--profile-hz", type=float, default=DEFAULT_HZ,
        help="sampling-profiler rate for the overhead phase "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-profiler-overhead-pct", type=float, default=5.0,
        help=(
            "fail if the profiler moves warm-query p50 by more than "
            "this (default: 5, the ISSUE 8 acceptance bar)"
        ),
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only, skip the knee/overhead assertions",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write the machine-readable BENCH_service_saturation.json",
    )
    parser.add_argument(
        "--profile-output", type=str, default=None, metavar="PATH",
        help=(
            "write the run's full collapsed-stack profile here "
            "(flamegraph.pl input; the JSON embeds only the "
            f"{PROFILE_STACK_LIMIT} hottest stacks)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        ladder = sorted(
            {int(c) for c in args.clients.split(",") if c.strip()}
        )
    except ValueError:
        print(f"error: bad --clients ladder {args.clients!r}")
        return 2
    if not ladder or ladder[0] < 1:
        print("error: --clients needs positive client counts")
        return 2
    params = {
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "theta": args.theta,
        "seed": args.seed,
        "num_seeds": args.num_seeds,
        "queries_per_client": args.queries_per_client,
        "client_ladder": ladder,
        "p99_bar_multiple": args.p99_bar_multiple,
        "profile_hz": args.profile_hz,
    }
    report = run(params)
    collapsed_full = report.pop("_collapsed_full", "")
    print(render(report))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.profile_output is not None:
        with open(args.profile_output, "w", encoding="utf-8") as handle:
            handle.write(collapsed_full)
            if collapsed_full:
                handle.write("\n")
        print(f"wrote {args.profile_output}")
    if not args.no_check:
        failures = []
        if report["knee"] is None:
            failures.append("no rung stayed under the p99 bar")
        if (
            report["profiler_overhead_pct"]
            > args.max_profiler_overhead_pct
        ):
            failures.append(
                f"profiler overhead {report['profiler_overhead_pct']:+.1f}% "
                f"> budget {args.max_profiler_overhead_pct:g}%"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
