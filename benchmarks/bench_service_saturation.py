"""Service saturation: worker-ladder knee through the sharded tier.

The latency benchmark (``bench_service_latency.py``) asks how fast a
warm query is; this one asks how far the service bends before it
breaks — and, since the sharded front end landed, how much further
each extra worker process pushes the bend.  For every rung of the
**worker ladder** (1/2/4 shard workers behind one asyncio front end)
a ladder of closed-loop client counts fires spread queries over real
TCP at a set of graph aliases chosen to cover every shard; each rung
reports sustained throughput and tail latency, and its **knee** is
the highest sustained qps whose p99 stays under the bar — expressed
as a multiple of the same-run single-client serial p50, so the bar
moves with machine speed instead of encoding it.

The topology under test is exactly ``serve --serve-workers N``: the
aliases all resolve to one dataset, each owned by the shard
``shard_for(name, N)`` picks, artifacts persist to a shared
``cache_dir`` so later rungs rehydrate the PR 7 mmap artifacts
instead of re-building, and the sampling profiler runs *through the
fan-out op* — its collapsed dump keeps each worker's stacks under a
``workerN;`` root frame.

Two more things ride along, unchanged in spirit from schema 1:

* **profiler overhead** — the single-worker rung runs its
  single-client phase twice (A/B/A, off/on/off) and asserts the warm
  p50 moved less than the budget (default 5%).
* **per-phase span breakdowns** — a traced probe through the widest
  topology (includes the ``frontend.route`` span), plus each rung's
  coalescing and executor-counter deltas parsed from the merged
  exposition.

CI gates ``sustained_speedup_vs_serial`` — the widest rung's knee qps
over same-run profiled serial qps, a ratio of two same-process
measurements that cancels machine speed — via
``benchmarks/check_bench_regression.py``.  Scaling past 1x requires
real cores: on a single-CPU host every worker count measures
approximately the same ceiling, and the committed baseline records
whatever the bench host can actually sustain.

Run standalone::

    python benchmarks/bench_service_saturation.py --scale 0.4
    python benchmarks/bench_service_saturation.py \\
        --json BENCH_service_saturation.json \\
        --profile-output BENCH_service_saturation.collapsed
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

from repro.datasets import load_dataset
from repro.obs import DEFAULT_HZ, iter_spans
from repro.service import (
    shard_for,
    ServiceClient,
    ShardedFrontend,
    WorkerSpec,
)

JSON_SCHEMA = 2

PROFILE_STACK_LIMIT = 40
"""Hottest stacks embedded in the JSON report (the full dump goes to
``--profile-output``)."""


def _percentiles(latencies: list[float]) -> dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
        "mean_ms": round(float(arr.mean()), 4),
    }


def _blocked_for(query: int, seeds: list[int], n: int) -> list[int]:
    """A deterministic per-query blocked set avoiding the seeds."""
    gen = np.random.default_rng(20_000 + query)
    seed_set = set(seeds)
    candidates = [v for v in range(n) if v not in seed_set]
    count = int(gen.integers(0, min(3, len(candidates)) + 1))
    picks = gen.choice(len(candidates), size=count, replace=False)
    return sorted(candidates[i] for i in picks)


def _shard_aliases(dataset: str, workers: int) -> list[str]:
    """``workers`` alias names for one dataset covering every shard.

    Alias ``i`` lands on shard ``i`` at ``workers`` processes; because
    ``shard_for`` reduces one stable integer, an alias on shard ``i``
    of 4 sits on shard ``i mod 2`` of 2 — so the same alias set stays
    perfectly balanced at every power-of-two rung below the widest.
    """
    found: dict[int, str] = {}
    probe = 0
    while len(found) < workers:
        name = f"{dataset}~{probe}"
        shard = shard_for(name, workers)
        if shard not in found:
            found[shard] = name
        probe += 1
    return [found[shard] for shard in range(workers)]


def _metric_total(text: str, family: str) -> float:
    """Sum one family's samples across every worker label in a merged
    exposition page."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith(f"{family}{{") or line.startswith(
            f"{family} "
        ):
            total += float(line.rsplit(" ", 1)[1])
    return total


def _executor_counters(exposition: str) -> dict[str, float]:
    """Cross-shard executor saturation counters from one scrape."""
    return {
        "submitted": _metric_total(
            exposition, "repro_executor_submitted_total"
        ),
        "completed": _metric_total(
            exposition, "repro_executor_completed_total"
        ),
        "pending": _metric_total(exposition, "repro_executor_pending"),
        "batches": _metric_total(
            exposition, "repro_coalesced_batches_total"
        ),
    }


def _fire(
    host: str,
    port: int,
    key_fields: dict,
    graphs: list[str],
    seeds: list[int],
    n: int,
    clients: int,
    queries_per_client: int,
    offset: int,
) -> tuple[list[float], float]:
    """Closed-loop load: every client fires back-to-back queries at
    its own graph alias (``graphs[client % len(graphs)]``), so the
    ladder exercises every shard of whatever topology is listening.

    Returns (per-query latencies, wall seconds across the whole rung).
    """
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def worker(idx: int) -> None:
        try:
            graph = graphs[idx % len(graphs)]
            with ServiceClient(host, port) as client:
                barrier.wait()
                for q in range(queries_per_client):
                    blocked = _blocked_for(
                        offset + idx * queries_per_client + q, seeds, n
                    )
                    start = time.perf_counter()
                    client.spread(
                        graph=graph, seeds=seeds, blocked=blocked,
                        **key_fields,
                    )
                    latencies[idx].append(time.perf_counter() - start)
        except BaseException as error:  # noqa: BLE001 - surface
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    return [latency for per in latencies for latency in per], wall


def _start_topology(
    workers: int, params: dict, aliases: list[str], cache_dir: str
) -> ShardedFrontend:
    spec = WorkerSpec(
        scale=params["scale"],
        aliases=tuple((name, params["dataset"]) for name in aliases),
        cache_entries=len(aliases) + 1,
        cache_dir=cache_dir,
    )
    frontend = ShardedFrontend(
        workers=workers,
        worker_spec=spec,
        # bench rungs must measure queueing, not shedding
        max_pending=None,
    )
    return frontend.start()


def _warm_topology(
    frontend: ShardedFrontend,
    params: dict,
    aliases: list[str],
    key_fields: dict,
) -> list[int]:
    """Warm every alias (build or mmap-rehydrate) through the wire;
    returns the server-resolved seed set (identical across aliases —
    they are one dataset)."""
    host, port = frontend.address
    seeds: list[int] | None = None
    with ServiceClient(host, port) as client:
        for alias in aliases:
            client.warm(graph=alias, **key_fields)
            result = client.spread(
                graph=alias,
                num_seeds=params["num_seeds"],
                **key_fields,
            )
            resolved = result["seeds"]
            if seeds is None:
                seeds = resolved
            elif resolved != seeds:  # pragma: no cover - invariant
                raise AssertionError(
                    f"alias {alias} resolved different default seeds "
                    f"{resolved} != {seeds}"
                )
            client.warm(
                graph=alias, seeds=seeds, sketch=True, **key_fields
            )
    assert seeds is not None
    return seeds


def _merged_profile_stats(dump: dict) -> dict[str, object]:
    """Flatten the fan-out ``profile`` result: sum volumes across the
    per-worker reports, keep one hz."""
    hz = None
    overruns = 0
    distinct = 0
    for report in (dump.get("workers") or {}).values():
        if not isinstance(report, dict) or "hz" not in report:
            continue
        hz = report["hz"] if hz is None else hz
        overruns += int(report.get("overruns", 0))
        distinct += int(report.get("distinct_stacks", 0))
    return {
        "hz": hz,
        "samples": int(dump.get("samples", 0)),
        "overruns": overruns,
        "distinct_stacks": distinct,
    }


def run(params: dict) -> dict[str, object]:
    import tempfile

    key_fields = {
        "model": params["model"],
        "theta": params["theta"],
        "seed": params["seed"],
    }
    worker_ladder = params["worker_ladder"]
    max_workers = max(worker_ladder)
    aliases = _shard_aliases(params["dataset"], max_workers)
    n = load_dataset(params["dataset"], scale=params["scale"]).n
    queries = params["queries_per_client"]

    serial_off: dict | None = None
    serial_on: dict | None = None
    overhead_pct: float | None = None
    bar_ms: float | None = None
    worker_sweep: list[dict[str, object]] = []
    phases: dict[str, dict[str, float]] = {}
    profile_summary: dict[str, object] = {}
    collapsed_parts: list[str] = []
    offset = 0

    with tempfile.TemporaryDirectory(
        prefix="bench-saturation-"
    ) as cache_dir:
        for workers in worker_ladder:
            frontend = _start_topology(
                workers, params, aliases, cache_dir
            )
            host, port = frontend.address
            try:
                seeds = _warm_topology(
                    frontend, params, aliases, key_fields
                )
                if serial_on is None:
                    # --- profiler overhead on the narrowest topology:
                    # A/B/A (off, on, off) so warmup drift biases both
                    # flanks equally instead of being billed to the
                    # profiler; single client, single alias = the
                    # serial baseline every wider rung is scored
                    # against ---
                    off1_lat, off1_wall = _fire(
                        host, port, key_fields, aliases[:1], seeds, n,
                        1, queries, offset,
                    )
                    offset += queries
                    with ServiceClient(host, port) as ctl:
                        ctl.profile("start", hz=params["profile_hz"])
                    on_lat, on_wall = _fire(
                        host, port, key_fields, aliases[:1], seeds, n,
                        1, queries, offset,
                    )
                    offset += queries
                    with ServiceClient(host, port) as ctl:
                        ctl.profile("stop")
                    off2_lat, off2_wall = _fire(
                        host, port, key_fields, aliases[:1], seeds, n,
                        1, queries, offset,
                    )
                    offset += queries
                    off_lat = off1_lat + off2_lat
                    serial_off = _percentiles(off_lat)
                    serial_on = _percentiles(on_lat)
                    serial_off["qps"] = round(
                        len(off_lat) / (off1_wall + off2_wall), 2
                    )
                    serial_on["qps"] = round(len(on_lat) / on_wall, 2)
                    overhead_pct = round(
                        (serial_on["p50_ms"] - serial_off["p50_ms"])
                        / serial_off["p50_ms"]
                        * 100.0,
                        2,
                    )
                    bar_ms = round(
                        serial_on["p50_ms"]
                        * params["p99_bar_multiple"],
                        4,
                    )

                # --- the rung's client-ladder sweep, profiler
                # sampling in every worker ---
                with ServiceClient(host, port) as ctl:
                    ctl.profile("start", hz=params["profile_hz"])
                sweep: list[dict[str, object]] = []
                with ServiceClient(host, port) as scrape:
                    counters = _executor_counters(scrape.metrics())
                for clients in params["client_ladder"]:
                    lat, wall = _fire(
                        host, port, key_fields, aliases, seeds, n,
                        clients, queries, offset,
                    )
                    offset += clients * queries
                    with ServiceClient(host, port) as scrape:
                        after = _executor_counters(scrape.metrics())
                    point = _percentiles(lat)
                    point["clients"] = clients
                    point["queries"] = len(lat)
                    point["qps"] = round(len(lat) / wall, 2)
                    point["under_bar"] = point["p99_ms"] <= bar_ms
                    point["coalesced_batches"] = int(
                        after["batches"] - counters["batches"]
                    )
                    point["executor"] = {
                        "submitted": after["submitted"]
                        - counters["submitted"],
                        "completed": after["completed"]
                        - counters["completed"],
                        "pending_after": after["pending"],
                    }
                    counters = after
                    sweep.append(point)

                knee = None
                for point in sweep:
                    if point["under_bar"] and (
                        knee is None or point["qps"] > knee["qps"]
                    ):
                        knee = point
                rung_qps = knee["qps"] if knee is not None else 0.0
                worker_sweep.append({
                    "workers": workers,
                    "sweep": sweep,
                    "knee": knee,
                    "sustained_qps": rung_qps,
                    "sustained_speedup_vs_serial": (
                        round(rung_qps / serial_on["qps"], 2)
                        if serial_on["qps"]
                        else 0.0
                    ),
                })

                if workers == max_workers:
                    # --- per-phase breakdown through the widest
                    # topology: one traced probe (includes the
                    # frontend.route span) ---
                    with ServiceClient(host, port) as probe:
                        traced = probe.request(
                            "spread", graph=aliases[0], seeds=seeds,
                            blocked=[], trace=True, **key_fields,
                        )
                    for node in iter_spans(traced.get("trace", {})):
                        entry = phases.setdefault(
                            node["name"],
                            {"count": 0, "total_ms": 0.0},
                        )
                        entry["count"] += 1
                        entry["total_ms"] = round(
                            entry["total_ms"] + node["duration_ms"], 3
                        )

                # --- this rung's profile dump (the workers die with
                # the rung; collect before teardown) ---
                with ServiceClient(host, port) as ctl:
                    dump = ctl.profile("dump")
                    ctl.profile("stop")
                for line in (dump.get("collapsed") or "").splitlines():
                    collapsed_parts.append(f"workers{workers};{line}")
                if workers == max_workers:
                    profile_summary = _merged_profile_stats(dump)
            finally:
                frontend.shutdown()

    collapsed_full = "\n".join(collapsed_parts)
    top_stacks = sorted(
        collapsed_parts,
        key=lambda line: -int(line.rsplit(" ", 1)[1]),
    )[:PROFILE_STACK_LIMIT]
    widest = worker_sweep[-1]
    profile_summary["top_stacks"] = top_stacks
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "serial": serial_off,
        "serial_profiled": serial_on,
        "profiler_overhead_pct": overhead_pct,
        "p99_bar_ms": bar_ms,
        "worker_sweep": worker_sweep,
        "sweep": widest["sweep"],
        "knee": widest["knee"],
        "sustained_qps": widest["sustained_qps"],
        "sustained_speedup_vs_serial": widest[
            "sustained_speedup_vs_serial"
        ],
        "phases": phases,
        "profile": profile_summary,
        "_collapsed_full": collapsed_full,
    }


def render(report: dict) -> str:
    serial = report["serial"]
    lines = [
        "service saturation — worker ladder through the sharded tier "
        f"({report['params']['dataset']}, scale="
        f"{report['params']['scale']:g}, theta="
        f"{report['params']['theta']}, p99 bar "
        f"{report['p99_bar_ms']:.2f} ms)",
        f"  serial     p50 {serial['p50_ms']:8.2f} ms   "
        f"{serial['qps']:8.2f} q/s  (profiled: p50 "
        f"{report['serial_profiled']['p50_ms']:.2f} ms, overhead "
        f"{report['profiler_overhead_pct']:+.1f}%)",
    ]
    for rung in report["worker_sweep"]:
        lines.append(f"  -- {rung['workers']} worker(s) --")
        for point in rung["sweep"]:
            marker = " " if point["under_bar"] else "!"
            lines.append(
                f"  {point['clients']:3d} client"
                f"{'s' if point['clients'] != 1 else ' '}"
                f" {marker} p50 {point['p50_ms']:8.2f} ms   p99 "
                f"{point['p99_ms']:8.2f} ms   {point['qps']:8.2f} q/s"
                f"   batches {point['coalesced_batches']}"
            )
        knee = rung["knee"]
        if knee is None:
            lines.append(
                "     knee: NONE — every rung blew the p99 bar"
            )
        else:
            lines.append(
                f"     knee: {knee['clients']} clients at "
                f"{rung['sustained_qps']:.2f} q/s = "
                f"{rung['sustained_speedup_vs_serial']:.2f}x serial"
            )
    profile = report["profile"]
    lines.append(
        f"  widest rung: {report['sustained_qps']:.2f} q/s sustained "
        f"= {report['sustained_speedup_vs_serial']:.2f}x serial "
        f"({profile.get('samples', 0)} profile samples, "
        f"{profile.get('distinct_stacks', 0)} stacks)"
    )
    return "\n".join(lines)


def test_service_saturation(benchmark):
    """pytest-benchmark entry, scaled down for suite runtime."""
    params = {
        "dataset": "email-core",
        "scale": 0.2,
        "model": "wc",
        "theta": 100,
        "seed": 7,
        "num_seeds": 3,
        "queries_per_client": 8,
        "client_ladder": [1, 2],
        "worker_ladder": [1, 2],
        "p99_bar_multiple": 50.0,
        "profile_hz": DEFAULT_HZ,
    }
    report = benchmark.pedantic(
        lambda: run(params), rounds=1, iterations=1
    )
    print(render(report))
    assert len(report["worker_sweep"]) == 2
    assert report["profile"]["samples"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="email-core")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--model", choices=("tr", "wc"), default="wc")
    parser.add_argument("--theta", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-seeds", type=int, default=5)
    parser.add_argument(
        "--queries-per-client", type=int, default=40,
        help="closed-loop queries per client per rung (default: 40)",
    )
    parser.add_argument(
        "--clients", default="1,2,4,8", metavar="LADDER",
        help="comma-separated client counts to sweep (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--workers", default="1,2,4", metavar="LADDER",
        help=(
            "comma-separated shard-worker counts to sweep "
            "(default: 1,2,4); each rung is a fresh --serve-workers "
            "topology over the same persisted artifacts"
        ),
    )
    parser.add_argument(
        "--p99-bar-multiple", type=float, default=20.0,
        help=(
            "p99 bar as a multiple of the same-run serial p50 "
            "(default: 20) — a rung over the bar is past the knee"
        ),
    )
    parser.add_argument(
        "--profile-hz", type=float, default=DEFAULT_HZ,
        help="sampling-profiler rate for the overhead phase "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-profiler-overhead-pct", type=float, default=5.0,
        help=(
            "fail if the profiler moves warm-query p50 by more than "
            "this (default: 5, the ISSUE 8 acceptance bar)"
        ),
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only, skip the knee/overhead assertions",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write the machine-readable BENCH_service_saturation.json",
    )
    parser.add_argument(
        "--profile-output", type=str, default=None, metavar="PATH",
        help=(
            "write the run's full collapsed-stack profile here "
            "(flamegraph.pl input; the JSON embeds only the "
            f"{PROFILE_STACK_LIMIT} hottest stacks)"
        ),
    )
    args = parser.parse_args(argv)

    def parse_ladder(text: str, flag: str) -> list[int] | None:
        try:
            ladder = sorted({int(c) for c in text.split(",") if c.strip()})
        except ValueError:
            print(f"error: bad {flag} ladder {text!r}")
            return None
        if not ladder or ladder[0] < 1:
            print(f"error: {flag} needs positive counts")
            return None
        return ladder

    ladder = parse_ladder(args.clients, "--clients")
    workers = parse_ladder(args.workers, "--workers")
    if ladder is None or workers is None:
        return 2
    params = {
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "theta": args.theta,
        "seed": args.seed,
        "num_seeds": args.num_seeds,
        "queries_per_client": args.queries_per_client,
        "client_ladder": ladder,
        "worker_ladder": workers,
        "p99_bar_multiple": args.p99_bar_multiple,
        "profile_hz": args.profile_hz,
    }
    report = run(params)
    collapsed_full = report.pop("_collapsed_full", "")
    print(render(report))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.profile_output is not None:
        with open(args.profile_output, "w", encoding="utf-8") as handle:
            handle.write(collapsed_full)
            if collapsed_full:
                handle.write("\n")
        print(f"wrote {args.profile_output}")
    if not args.no_check:
        failures = []
        if report["knee"] is None:
            failures.append("no rung stayed under the p99 bar")
        if (
            report["profiler_overhead_pct"]
            > args.max_profiler_overhead_pct
        ):
            failures.append(
                f"profiler overhead {report['profiler_overhead_pct']:+.1f}% "
                f"> budget {args.max_profiler_overhead_pct:g}%"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
