"""Ablation: Lengauer–Tarjan vs the iterative dominator algorithm.

The paper builds one dominator tree per sampled graph with
Lengauer–Tarjan (almost-linear).  The Cooper–Harvey–Kennedy iterative
algorithm is asymptotically worse but famously fast in practice on
shallow graphs; this ablation times both over the actual sampled-graph
workload (and asserts they agree), justifying the default choice.
"""

from __future__ import annotations

import time

from repro.bench import prepare_graph
from repro.bench.reporting import format_table
from repro.datasets import load_dataset
from repro.dominator import (
    immediate_dominators,
    immediate_dominators_iterative,
)
from repro.sampling import ICSampler

from .conftest import bench_scale, emit

SAMPLES = 60


def run_dominator_ablation() -> list[list[object]]:
    rows = []
    for key, model in (("email-core", "tr"), ("email-core", "wc"),
                       ("twitter", "tr")):
        graph = prepare_graph(
            load_dataset(key, bench_scale()), model, rng=121
        )
        sampler = ICSampler(graph, rng=122)
        source = 0
        adjacencies = [
            sampler.sample_adjacency() for _ in range(SAMPLES)
        ]

        start = time.perf_counter()
        lt_results = [
            immediate_dominators(succ, source) for succ in adjacencies
        ]
        lt_time = time.perf_counter() - start

        start = time.perf_counter()
        it_results = [
            immediate_dominators_iterative(succ, source)
            for succ in adjacencies
        ]
        it_time = time.perf_counter() - start

        assert lt_results == it_results  # correctness on the workload
        mean_reachable = sum(len(r) for r in lt_results) / SAMPLES
        rows.append(
            [
                f"{key}/{model}",
                round(mean_reachable, 1),
                round(lt_time * 1000, 1),
                round(it_time * 1000, 1),
                round(it_time / max(lt_time, 1e-9), 2),
            ]
        )
    return rows


def test_ablation_dominator_algorithms(benchmark):
    rows = benchmark.pedantic(run_dominator_ablation, rounds=1, iterations=1)
    table = format_table(
        [
            "workload",
            "mean reachable",
            "LT (ms)",
            "iterative (ms)",
            "iter/LT",
        ],
        rows,
        title=(
            "Ablation — dominator-tree construction over "
            f"{SAMPLES} sampled graphs"
        ),
    )
    emit("ablation_dominators", table)
