"""Figure 7: running time of BG / AG / GR on all datasets (TR model).

The paper sets budget 10 and finds BaselineGreedy exceeding the
24-hour limit on 6 of 8 datasets under TR, while AG/GR finish in
seconds-to-minutes — a gap of 3+ orders of magnitude.  We run BG only
on the smallest stand-ins with a per-dataset time cap (mirroring the
paper's DNFs) and report the speedup where BG completes.
"""

from __future__ import annotations

import time

from repro.bench import format_table, pick_seeds, prepare_graph
from repro.core import advanced_greedy, baseline_greedy, greedy_replace
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_scale, bench_theta, emit

BUDGET = 10
NUM_SEEDS = 10
BG_MCS_ROUNDS = 50
# run BG only where the candidate enumeration is feasible in Python
BG_DATASETS = frozenset({"email-core", "wiki-vote"})
MODEL = "tr"
RESULT_FILE = "fig7_runtime_tr"
FIGURE = "Figure 7"


def run_runtime_comparison() -> list[list[object]]:
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(
            load_dataset(key, bench_scale()), MODEL, rng=51
        )
        seeds = pick_seeds(graph, NUM_SEEDS, rng=51)

        if key in BG_DATASETS:
            start = time.perf_counter()
            baseline_greedy(
                graph, seeds, BUDGET, rounds=BG_MCS_ROUNDS, rng=52
            )
            bg_time = time.perf_counter() - start
        else:
            bg_time = float("nan")  # DNF, as in the paper

        start = time.perf_counter()
        advanced_greedy(graph, seeds, BUDGET, theta=bench_theta(), rng=53)
        ag_time = time.perf_counter() - start

        start = time.perf_counter()
        greedy_replace(graph, seeds, BUDGET, theta=bench_theta(), rng=54)
        gr_time = time.perf_counter() - start

        speedup = (
            round(bg_time / max(ag_time, 1e-9), 1)
            if bg_time == bg_time
            else "DNF"
        )
        rows.append(
            [
                key,
                round(bg_time, 3) if bg_time == bg_time else "DNF",
                round(ag_time, 3),
                round(gr_time, 3),
                speedup,
            ]
        )
    return rows


def test_fig7_runtime_tr(benchmark):
    rows = benchmark.pedantic(run_runtime_comparison, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "BG (s)", "AG (s)", "GR (s)", "BG/AG speedup"],
        rows,
        title=(
            f"{FIGURE} — running time of BG/AG/GR "
            f"({MODEL.upper()} model, b={BUDGET}; DNF mirrors the "
            "paper's 24h timeout)"
        ),
    )
    emit(RESULT_FILE, table)
