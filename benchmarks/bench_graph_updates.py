"""Incremental graph deltas: patch-and-rebase vs cold rebuild.

ISSUE 10's tentpole claim: when a warm sketch artifact's graph mutates
(edges inserted, deleted, reweighted), ``SketchIndex.apply_delta``
patches the pooled samples in place and rebuilds only the dominator
trees the edits actually touched — instead of re-drawing ``theta``
coin streams over every edge and rebuilding every tree from scratch.
This benchmark measures exactly that boundary on a Barabasi-Albert
graph at the paper's ~1M-directed-edge scale (n=10k, WC weights,
theta=1000), over a ladder of delta sizes:

* **0.01% / 0.1% / 1% of edges** — each rung generates one randomized
  :class:`~repro.graph.GraphDelta` (a mix of deletes, reweights and
  inserts) against the *current* graph, so the ladder is cumulative:
  the warm index absorbs every rung in sequence, exactly like a
  long-lived serving artifact tracking an evolving network;
* **delta** — time to the next answer after the mutation: one
  ``apply_delta`` on the warm index plus one spread query;
* **rebuild** — time to the first answer from a from-scratch index
  over the same mutated graph (fresh coin draws, all trees), the cost
  every mutation paid before the delta path existed.

Both gated numbers are same-run ratios, so machine speed cancels.  The
acceptance bar: the delta path >= 10x faster than the cold rebuild at
the 0.1% rung, and the delta-applied index *bit-identical* to the cold
one at every rung — same expected spread, same marginal-gain vector,
same blocked spread.  Identity failure is a hard fail regardless of
tolerance.  ``--json PATH`` writes ``BENCH_graph_updates.json``; CI
gates ``delta_speedup_vs_rebuild`` against the committed baseline via
``benchmarks/check_bench_regression.py`` (report kind auto-detected).

Run standalone::

    python benchmarks/bench_graph_updates.py --n 2000 --attach 10 \\
        --theta 200 --no-check
    python benchmarks/bench_graph_updates.py --json \\
        BENCH_graph_updates.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.bench import format_table, pick_seeds
from repro.engine import build_evaluator, EngineSpec
from repro.graph import barabasi_albert, CSRGraph, GraphDelta
from repro.models import assign_weighted_cascade

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "graph_updates"
JSON_SCHEMA = 1
TARGET_SPEEDUP = 10.0
#: The ladder rung the acceptance bar is defined at (0.1% of edges).
GATED_FRACTION = 0.001
DEFAULT_FRACTIONS = (0.0001, 0.001, 0.01)


def random_delta(graph, edits: int, gen) -> GraphDelta:
    """One randomized batch against ``graph``: ~45% deletes, ~35%
    reweights, ~20% inserts (all deletes when ``edits`` < 3)."""
    deletes = max(1, (45 * edits) // 100) if edits >= 3 else edits
    reweights = max(1, (35 * edits) // 100) if edits >= 3 else 0
    inserts = edits - deletes - reweights
    n = graph.n

    # Existing edges sampled via random source vertices (every BA
    # vertex has out-degree >= attach, so this never spins).
    chosen: set[tuple[int, int]] = set()
    def draw_existing() -> tuple[int, int]:
        while True:
            u = int(gen.integers(n))
            nbrs = graph.out_neighbors(u)
            if not nbrs:
                continue
            v = int(nbrs[int(gen.integers(len(nbrs)))])
            if (u, v) not in chosen:
                chosen.add((u, v))
                return u, v

    delete_edges = [draw_existing() for _ in range(deletes)]
    reweight_edges = [
        (*draw_existing(), float(gen.uniform(0.005, 0.05)))
        for _ in range(reweights)
    ]
    insert_edges: list[tuple[int, int, float]] = []
    while len(insert_edges) < inserts:
        u = int(gen.integers(n))
        v = int(gen.integers(n))
        if u == v or (u, v) in chosen or graph.has_edge(u, v):
            continue
        chosen.add((u, v))
        insert_edges.append((u, v, float(gen.uniform(0.01, 0.1))))
    return GraphDelta(
        inserts=insert_edges,
        deletes=delete_edges,
        reweights=reweight_edges,
    )


def run_update_benchmark(
    n: int = 10_000,
    attach: int = 50,
    theta: int = 1000,
    num_seeds: int = 10,
    rng: int = 7,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    workers: int | None = None,
) -> dict[str, object]:
    """Apply the delta ladder to one warm index, cold-rebuilding at
    every rung for the timing contrast and the identity check."""
    graph = assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    spec = EngineSpec(
        engine="sketch", theta=theta, seed=rng, workers=workers
    )

    start = time.perf_counter()
    index = build_evaluator(CSRGraph(graph), spec)
    index.expected_spread(seeds, theta)
    t_base = time.perf_counter() - start
    # Warm the gains path too, so rung timings measure the update
    # itself rather than first-touch view construction.
    index.decrease_estimates(seeds, theta)
    base_m = index.csr.m if hasattr(index, "csr") else graph.m

    gen = np.random.default_rng(rng)
    rungs: list[dict[str, object]] = []
    identical = True
    try:
        for fraction in fractions:
            edits = max(1, round(fraction * graph.m))
            delta = random_delta(graph, edits, gen)
            rebuilt_before = index.stats.delta_trees_rebuilt
            start = time.perf_counter()
            report = index.apply_delta(delta)
            warm_spread = index.expected_spread(seeds, theta)
            t_delta = time.perf_counter() - start
            warm_gains = index.decrease_estimates(seeds, theta).copy()
            masked = warm_gains.copy()
            masked[list(seeds)] = -1.0
            blocker = int(np.argmax(masked))
            warm_blocked = index.expected_spread(
                seeds, theta, [blocker]
            )
            trees_rebuilt = (
                index.stats.delta_trees_rebuilt - rebuilt_before
            )

            # Cold contrast: what this mutation cost before the delta
            # path — fresh coins over every edge, every tree rebuilt.
            delta.apply_to(graph)
            csr = CSRGraph(graph)
            start = time.perf_counter()
            cold = build_evaluator(csr, spec)
            cold_spread = cold.expected_spread(seeds, theta)
            t_rebuild = time.perf_counter() - start
            cold_gains = cold.decrease_estimates(seeds, theta).copy()
            cold_blocked = cold.expected_spread(seeds, theta, [blocker])
            cold.close()

            rung_identical = (
                warm_spread == cold_spread
                and warm_blocked == cold_blocked
                and np.array_equal(warm_gains, cold_gains)
            )
            identical = identical and rung_identical
            rungs.append(
                {
                    "fraction": fraction,
                    "edits": edits,
                    "inserts": len(delta.inserts),
                    "deletes": len(delta.deletes),
                    "reweights": len(delta.reweights),
                    "touched_samples": report.touched_count,
                    "trees_rebuilt": int(trees_rebuilt),
                    "t_delta": t_delta,
                    "t_rebuild": t_rebuild,
                    "speedup": t_rebuild / t_delta,
                    "identical": rung_identical,
                    "spread": warm_spread,
                }
            )
    finally:
        index.close()

    gated = min(
        rungs,
        key=lambda r: abs(float(r["fraction"]) - GATED_FRACTION),
    )
    return {
        "n": n,
        "m": base_m,
        "theta": theta,
        "t_base": t_base,
        "rungs": rungs,
        "gated_fraction": gated["fraction"],
        "speedup": gated["speedup"],
        "identical": identical,
    }


def render(r: dict[str, object]) -> str:
    rows = []
    for rung in r["rungs"]:
        rows.append(
            [
                f"{100 * rung['fraction']:g}% ({rung['edits']} edits)",
                f"{rung['touched_samples']}",
                f"{rung['trees_rebuilt']}",
                f"{1e3 * rung['t_delta']:.1f}",
                f"{1e3 * rung['t_rebuild']:.1f}",
                f"{rung['speedup']:.1f}x",
            ]
        )
    verdict = "PASS" if r["speedup"] >= TARGET_SPEEDUP else "FAIL"
    summary = (
        f"delta-applied index bit-identical at every rung: "
        f"{r['identical']}; base build "
        f"{1e3 * r['t_base']:.0f} ms\n"
        f"delta speedup vs cold rebuild at the "
        f"{100 * r['gated_fraction']:g}% rung: {r['speedup']:.1f}x "
        f"(>= {TARGET_SPEEDUP:.0f}x target: {verdict})"
    )
    table = format_table(
        [
            "delta size",
            "touched",
            "trees",
            "delta ms",
            "rebuild ms",
            "speedup",
        ],
        rows,
        title=(
            f"incremental graph deltas (n={r['n']}, m={r['m']}, "
            f"WC model, theta={r['theta']})"
        ),
    )
    return f"{table}\n{summary}"


def to_json(result: dict[str, object], params: dict) -> dict:
    """The ``BENCH_graph_updates.json`` document (see module
    docstring)."""
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "m": int(result["m"]),
        "base_build_s": round(float(result["t_base"]), 6),
        "rungs": [
            {
                "fraction": rung["fraction"],
                "edits": int(rung["edits"]),
                "touched_samples": int(rung["touched_samples"]),
                "trees_rebuilt": int(rung["trees_rebuilt"]),
                "delta_s": round(float(rung["t_delta"]), 6),
                "rebuild_s": round(float(rung["t_rebuild"]), 6),
                "speedup": round(float(rung["speedup"]), 3),
            }
            for rung in result["rungs"]
        ],
        "delta_speedup_vs_rebuild": round(float(result["speedup"]), 3),
        "identical": bool(result["identical"]),
    }


def test_graph_updates(benchmark):
    """pytest-benchmark entry, full acceptance size (~1M edges)."""
    result = benchmark.pedantic(
        lambda: run_update_benchmark(),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(result))
    assert result["m"] >= 900_000
    assert result["identical"]
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=50)
    parser.add_argument("--theta", type=int, default=1000)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=list(DEFAULT_FRACTIONS),
        metavar="F",
        help="delta sizes as fractions of the edge count "
        "(default: 0.0001 0.001 0.01; the rung closest to 0.001 "
        "is the gated one)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard tree builds across processes "
        "(default: serial; results bit-identical either way)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable BENCH_graph_updates.json",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help=(
            "report but never fail on the speedup target (for smoke "
            "runs at sizes the acceptance bar was not defined for); "
            "identity is checked regardless"
        ),
    )
    args = parser.parse_args(argv)
    result = run_update_benchmark(
        n=args.n,
        attach=args.attach,
        theta=args.theta,
        num_seeds=args.seeds,
        rng=args.rng,
        fractions=tuple(args.fractions),
        workers=args.workers,
    )
    emit(RESULT_FILE, render(result))
    if args.json is not None:
        params = {
            "n": args.n,
            "attach": args.attach,
            "theta": args.theta,
            "seeds": args.seeds,
            "rng": args.rng,
            "fractions": list(args.fractions),
            "workers": args.workers,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(result, params), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if not result["identical"]:
        print(
            "FAIL: delta-applied index diverges from the cold rebuild "
            "(bit-identity contract)"
        )
        return 1
    if not args.no_check and result["speedup"] < TARGET_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
