"""Persistent sketch artifacts: cold build vs mmap rehydrate at 1M edges.

ISSUE 7's tentpole claim: once a million-edge graph has paid its cold
sketch construction *once*, every later process answers its first
query from the persisted artifact — ``np.load(mmap_mode="r")`` over
eleven flat arrays — instead of re-sampling and re-building dominator
trees.  This benchmark measures exactly that boundary on a
Barabasi-Albert graph sized past 1M directed edges (the paper's
Facebook/DBLP scale):

* **cold_build** — time to first answer with an empty cache directory:
  draw the pooled samples, build theta dominator trees, aggregate the
  arena view, persist everything, answer one spread query;
* **rehydrate** — time to first answer in a fresh index over the same
  cache directory: memory-map the pool + the arena artifact and answer
  the same query (best of ``--repeats`` fresh indexes);
* **warm_query** — steady-state ``decrease_estimates`` latency on the
  rehydrated index (the serving layer's hot path).

Both gated numbers are same-run ratios, so machine speed cancels.  The
acceptance bar: rehydrate >= 10x faster than cold build, and the
rehydrated index *bit-identical* to the cold one — same base gains
array, same greedy blocker picks, same spread trace through
``--budget`` rebase rounds (which exercises the copy-on-write
promotion).  Identity failure is a hard fail regardless of tolerance.
``--json PATH`` writes ``BENCH_mmap_artifacts.json``; CI gates
``rehydrate_speedup_vs_cold`` against the committed baseline via
``benchmarks/check_bench_regression.py`` (report kind auto-detected).

Run standalone::

    python benchmarks/bench_mmap_artifacts.py --n 20000 --theta 32 \\
        --no-check
    python benchmarks/bench_mmap_artifacts.py --json \\
        BENCH_mmap_artifacts.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import format_table, pick_seeds
from repro.engine import build_evaluator, EngineSpec
from repro.graph import barabasi_albert, CSRGraph
from repro.models import assign_weighted_cascade

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "mmap_artifacts"
JSON_SCHEMA = 1
TARGET_SPEEDUP = 10.0


def greedy_blockers(index, seeds, theta, budget):
    """Greedy blocker selection (one rebase per round — the COW
    promotion path on rehydrated views)."""
    blocked: list[int] = []
    trace: list[float] = []
    for _ in range(budget):
        gains = index.decrease_estimates(seeds, theta, blocked).copy()
        gains[list(seeds)] = -1.0
        if blocked:
            gains[blocked] = -1.0
        pick = int(np.argmax(gains))
        blocked.append(pick)
        trace.append(index.expected_spread(seeds, theta, blocked))
    return blocked, trace


def run_mmap_benchmark(
    n: int = 101_000,
    attach: int = 5,
    theta: int = 64,
    num_seeds: int = 10,
    rng: int = 7,
    budget: int = 3,
    workers: int | None = None,
    repeats: int = 3,
    query_repeats: int = 5,
    cache_dir: str | Path | None = None,
) -> dict[str, object]:
    """Time cold build vs rehydrate on one persisted cache directory."""
    graph = assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))
    csr = CSRGraph(graph)
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-mmap-")
        cache_dir = tmp.name
    spec = EngineSpec(
        engine="sketch",
        theta=theta,
        seed=rng,
        workers=workers,
        cache_dir=cache_dir,
    )
    try:
        # -- cold: empty cache -> sample, build, persist, answer ------
        start = time.perf_counter()
        cold = build_evaluator(csr, spec)
        base_spread = cold.expected_spread(seeds, theta)
        t_cold = time.perf_counter() - start
        if cold.stats.persists != 1:
            raise RuntimeError(
                "cold build did not persist its artifact — "
                "the benchmark is not measuring the mmap path"
            )
        base_gains = cold.decrease_estimates(seeds, theta).copy()
        cold_picks, cold_trace = greedy_blockers(
            cold, seeds, theta, budget
        )
        cold.close()

        # -- rehydrate: fresh index over the warmed directory ---------
        t_rehydrate = float("inf")
        warm = None
        for _ in range(max(1, repeats)):
            if warm is not None:
                warm.close()
            start = time.perf_counter()
            warm = build_evaluator(csr, spec)
            spread = warm.expected_spread(seeds, theta)
            t_rehydrate = min(
                t_rehydrate, time.perf_counter() - start
            )
            if warm.stats.rehydrations != 1:
                raise RuntimeError(
                    "fresh index did not rehydrate from disk — "
                    "the benchmark is not measuring the mmap path"
                )

        # -- warm query: steady-state gains on the rehydrated view ----
        t_query = float("inf")
        for _ in range(max(1, query_repeats)):
            start = time.perf_counter()
            warm_gains = warm.decrease_estimates(seeds, theta)
            t_query = min(t_query, time.perf_counter() - start)

        # -- identity: the tentpole's hard contract -------------------
        identical = (
            spread == base_spread
            and np.array_equal(warm_gains, base_gains)
        )
        warm_picks, warm_trace = greedy_blockers(
            warm, seeds, theta, budget
        )
        identical = (
            identical
            and warm_picks == cold_picks
            and warm_trace == cold_trace
        )
        warm.close()
    finally:
        if tmp is not None:
            tmp.cleanup()

    return {
        "n": n,
        "m": csr.m,
        "theta": theta,
        "budget": budget,
        "t_cold": t_cold,
        "t_rehydrate": t_rehydrate,
        "t_query": t_query,
        "speedup": t_cold / t_rehydrate,
        "identical": identical,
        "base_spread": base_spread,
        "blockers": cold_picks,
    }


def render(r: dict[str, object]) -> str:
    rows = [
        [
            "cold_build (sample+build+persist+query)",
            f"{1e3 * r['t_cold']:.1f}",
            "1.0x",
        ],
        [
            "rehydrate (mmap load+query)",
            f"{1e3 * r['t_rehydrate']:.1f}",
            f"{r['speedup']:.1f}x",
        ],
        [
            "warm_query (decrease_estimates)",
            f"{1e3 * r['t_query']:.1f}",
            "-",
        ],
    ]
    verdict = "PASS" if r["speedup"] >= TARGET_SPEEDUP else "FAIL"
    summary = (
        f"rehydrated index bit-identical: {r['identical']}; base "
        f"spread {r['base_spread']:.2f}, blockers {r['blockers']}\n"
        f"rehydrate speedup vs cold build: {r['speedup']:.1f}x "
        f"(>= {TARGET_SPEEDUP:.0f}x target: {verdict})"
    )
    table = format_table(
        ["time to first answer", "ms", "vs cold"],
        rows,
        title=(
            f"persistent sketch artifacts (n={r['n']}, m={r['m']}, "
            f"WC model, theta={r['theta']})"
        ),
    )
    return f"{table}\n{summary}"


def to_json(result: dict[str, object], params: dict) -> dict:
    """The ``BENCH_mmap_artifacts.json`` document (see module
    docstring)."""
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "m": int(result["m"]),
        "cold_build_s": round(float(result["t_cold"]), 6),
        "rehydrate_s": round(float(result["t_rehydrate"]), 6),
        "warm_query_s": round(float(result["t_query"]), 6),
        "rehydrate_speedup_vs_cold": round(
            float(result["speedup"]), 3
        ),
        "identical": bool(result["identical"]),
    }


def test_mmap_artifacts(benchmark):
    """pytest-benchmark entry, full acceptance size (>= 1M edges)."""
    result = benchmark.pedantic(
        lambda: run_mmap_benchmark(),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(result))
    assert result["m"] >= 1_000_000
    assert result["identical"]
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=101_000)
    parser.add_argument("--attach", type=int, default=5)
    parser.add_argument("--theta", type=int, default=64)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument("--budget", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the cold tree build across processes "
        "(default: serial; results bit-identical either way)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="fresh rehydrates timed; the best is reported (default: 3)",
    )
    parser.add_argument(
        "--query-repeats",
        type=int,
        default=5,
        help="warm gains queries timed; best reported (default: 5)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist artifacts here instead of a throwaway tempdir "
        "(the directory is then left in place for inspection)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable BENCH_mmap_artifacts.json",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help=(
            "report but never fail on the speedup target (for smoke "
            "runs at sizes the acceptance bar was not defined for); "
            "identity is checked regardless"
        ),
    )
    args = parser.parse_args(argv)
    result = run_mmap_benchmark(
        n=args.n,
        attach=args.attach,
        theta=args.theta,
        num_seeds=args.seeds,
        rng=args.rng,
        budget=args.budget,
        workers=args.workers,
        repeats=args.repeats,
        query_repeats=args.query_repeats,
        cache_dir=args.cache_dir,
    )
    emit(RESULT_FILE, render(result))
    if args.json is not None:
        params = {
            "n": args.n,
            "attach": args.attach,
            "theta": args.theta,
            "seeds": args.seeds,
            "rng": args.rng,
            "budget": args.budget,
            "workers": args.workers,
            "repeats": args.repeats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(result, params), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if not result["identical"]:
        print(
            "FAIL: rehydrated index diverges from the cold build "
            "(bit-identity contract)"
        )
        return 1
    if not args.no_check and result["speedup"] < TARGET_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
