"""Ablation (Section V-D): GreedyReplace's two ingredients.

GR = (out-neighbour initialisation) + (reverse-order replacement).
Table III's toy example shows plain greedy wins at small b and
out-neighbour blocking wins at large b; GR should match the best of
both at every budget.  This ablation compares, across a budget sweep:

* AG   — plain greedy (no out-neighbour restriction),
* ON   — out-neighbour phase only (GR without replacement),
* GR   — the full algorithm.

Expected shape: spread(GR) <= min(spread(AG), spread(ON)) up to
sampling noise at every budget.
"""

from __future__ import annotations

from repro.bench import (
    evaluate_spread,
    format_table,
    pick_seeds,
    prepare_graph,
)
from repro.core import advanced_greedy, greedy_replace, out_neighbors_blockers
from repro.datasets import load_dataset

from .conftest import bench_eval_rounds, bench_scale, bench_theta, emit

BUDGETS = (2, 5, 10, 20)
NUM_SEEDS = 5


def run_component_ablation() -> list[list[object]]:
    graph = prepare_graph(
        load_dataset("facebook", bench_scale()), "tr", rng=111
    )
    seeds = pick_seeds(graph, NUM_SEEDS, rng=111)
    rows = []
    for budget in BUDGETS:
        ag = advanced_greedy(
            graph, seeds, budget, theta=bench_theta() * 3, rng=112
        ).blockers
        on = out_neighbors_blockers(
            graph, seeds, budget, theta=bench_theta() * 3, rng=113
        )
        gr = greedy_replace(
            graph, seeds, budget, theta=bench_theta() * 3, rng=114
        ).blockers
        spread = {
            name: evaluate_spread(
                graph, seeds, chosen, rounds=bench_eval_rounds(), rng=99
            )
            for name, chosen in (("AG", ag), ("ON", on), ("GR", gr))
        }
        rows.append(
            [
                budget,
                round(spread["AG"], 3),
                round(spread["ON"], 3),
                round(spread["GR"], 3),
                round(min(spread["AG"], spread["ON"]) - spread["GR"], 3),
            ]
        )
    return rows


def test_ablation_gr_components(benchmark):
    rows = benchmark.pedantic(run_component_ablation, rounds=1, iterations=1)
    table = format_table(
        ["b", "AG spread", "ON spread", "GR spread", "GR gain vs best"],
        rows,
        title=(
            "Ablation §V-D — GR vs its components "
            f"(facebook stand-in, TR model, |S|={NUM_SEEDS})"
        ),
    )
    emit("ablation_gr_components", table)
