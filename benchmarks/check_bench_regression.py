"""CI benchmark-regression gate over ``BENCH_engine.json``.

Compares a freshly measured engine-throughput report (written by
``bench_engine_throughput.py --json``) against the committed baseline
and fails when any backend regressed by more than the tolerance.

The gated metric is ``speedup_vs_scalar`` — each backend's throughput
normalized by the scalar reference *measured in the same run*.  Raw
ms/round numbers differ wildly between the machine that committed the
baseline and the CI runner; the normalized ratio cancels machine speed
and isolates genuine engine regressions (a kernel slowdown, a cache
that stopped hitting, an accidental O(n) in the hot path).

Exit codes: 0 pass, 1 regression, 2 unusable input (missing file,
parameter mismatch between the runs).

Usage::

    python benchmarks/bench_engine_throughput.py --n 2000 --rounds 200 \\
        --workers 2 --json BENCH_engine.json
    python benchmarks/check_bench_regression.py BENCH_engine.json \\
        --baseline benchmarks/BENCH_engine.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# parameters that must match for the two reports to be comparable —
# including the extrapolation caps and repeat count, which change the
# measured statistic (per-round noise floor) even at identical sizes
_IDENTITY_PARAMS = (
    "n",
    "attach",
    "rounds",
    "seeds",
    "rng",
    "workers",
    "scalar_rounds",
    "sketch_rounds",
    "repeats",
)


def _die(message: str) -> None:
    print(message, file=sys.stderr)
    raise SystemExit(2)


def load_report(path: str | Path) -> dict:
    path = Path(path)
    if not path.is_file():
        _die(f"error: no such report: {path}")
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if "backends" not in report:
        _die(f"error: {path} is not a BENCH_engine.json report")
    return report


def compare(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Returns ``(failures, lines)`` — regressions and the full log."""
    failures: list[str] = []
    lines: list[str] = []

    cur_params = current.get("params", {})
    base_params = baseline.get("params", {})
    mismatched = [
        key
        for key in _IDENTITY_PARAMS
        if cur_params.get(key) != base_params.get(key)
    ]
    if mismatched:
        _die(
            "error: reports are not comparable — parameter mismatch on "
            + ", ".join(
                f"{k} ({base_params.get(k)!r} -> {cur_params.get(k)!r})"
                for k in mismatched
            )
        )

    base_backends = baseline["backends"]
    cur_backends = current["backends"]
    for name, base in sorted(base_backends.items()):
        if name == "scalar":
            continue  # the normalization reference, 1.0 by construction
        if not base.get("gate", True):
            lines.append(f"note {name}: gate-exempt in baseline")
            continue
        entry = cur_backends.get(name)
        if entry is None:
            failures.append(name)
            lines.append(f"FAIL {name}: missing from the current report")
            continue
        base_speed = float(base["speedup_vs_scalar"])
        cur_speed = float(entry["speedup_vs_scalar"])
        floor = (1.0 - tolerance) * base_speed
        verdict = "ok" if cur_speed >= floor else "FAIL"
        lines.append(
            f"{verdict:<5}{name:<18} baseline {base_speed:7.2f}x  "
            f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
        )
        if cur_speed < floor:
            failures.append(name)
    for name in sorted(set(cur_backends) - set(base_backends)):
        lines.append(f"note {name}: not in baseline (no gate)")
    return failures, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_engine.json",
        help="committed baseline report (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help=(
            "allowed fractional drop in normalized throughput before "
            "the gate fails (default: %(default)s)"
        ),
    )
    args = parser.parse_args(argv)
    current = load_report(args.current)
    baseline = load_report(args.baseline)
    failures, lines = compare(current, baseline, args.tolerance)
    print(
        f"benchmark-regression gate (tolerance "
        f"{args.tolerance:.0%} on speedup vs scalar)"
    )
    for line in lines:
        print(" ", line)
    if failures:
        print(f"regressed backends: {', '.join(failures)}")
        return 1
    print("all backends within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
