"""CI benchmark-regression gate over the committed ``BENCH_*.json``.

Compares a freshly measured report against the committed baseline and
fails when any gated metric regressed by more than the tolerance.
Three report kinds, auto-detected:

``BENCH_engine.json`` (``bench_engine_throughput.py --json``)
    Gates ``speedup_vs_scalar`` per backend — each backend's
    throughput normalized by the scalar reference *measured in the
    same run*.
``BENCH_service.json`` (``bench_service_latency.py --json``)
    Gates ``warm_speedup_vs_cold_inprocess`` — warm served-query
    latency normalized by the cold in-process build+query cost
    measured in the same run, i.e. the serving layer's whole reason
    to exist (the CLI-relative speedup is reported, not gated: its
    numerator includes interpreter startup).
``BENCH_sketch_build.json`` (``bench_sketch_build.py --json``)
    Gates ``build_speedup_vs_legacy`` — the batched array-native
    sketch construction normalized by the legacy per-sample Python
    build timed in the same run on the same pooled samples.  Also
    fails hard (regardless of tolerance) if the report says the two
    builds disagreed, since that is a correctness bug, not a
    regression.
``BENCH_sketch_query.json`` (``bench_sketch_query.py --json``)
    Gates ``select_speedup_vs_legacy`` — the arena-backed greedy
    selection loop normalized by the pre-arena query path run in the
    same process over the same pooled samples.  Fails hard if the two
    paths selected different blockers (the arena refactor's
    bit-compatibility contract); the rebase-microbench and cold-build
    speedups are reported but not gated (they are noisier slices of
    the same work the selection ratio already covers).
``BENCH_service_saturation.json`` (``bench_service_saturation.py
--json``)
    Gates ``sustained_speedup_vs_serial`` — the knee of the clients
    ladder (max sustained qps whose p99 stays under the bar)
    normalized by the single-client qps measured in the same run
    under the same profiler, so machine speed cancels.  Fails hard if
    the current report found no knee at all (every rung blew its p99
    bar): the service stopped absorbing concurrency, which is a
    regression at any ratio.  The profiler-overhead percentage is
    asserted by the benchmark itself, not gated here (an
    absolute-noise number, not a cross-machine ratio).
``BENCH_mmap_artifacts.json`` (``bench_mmap_artifacts.py --json``)
    Gates ``rehydrate_speedup_vs_cold`` — time-to-first-answer of a
    fresh index memory-mapping the persisted sketch artifact,
    normalized by the cold sample+build+persist path measured in the
    same run on the same cache directory.  Fails hard if the report
    says the rehydrated index diverged from the cold one (same base
    gains, same greedy blockers through rebase rounds): persistence
    is bit-identity or it is a bug.  The warm steady-state query
    latency is reported but not gated (the sketch-query report
    already covers that path).
``BENCH_graph_updates.json`` (``bench_graph_updates.py --json``)
    Gates ``delta_speedup_vs_rebuild`` — time to the next answer after
    a batched graph mutation through ``SketchIndex.apply_delta``
    (patch the pooled samples, rebuild only touched trees) normalized
    by the cold rebuild over the same mutated graph measured in the
    same run, at the ladder's 0.1%-of-edges rung.  Fails hard if the
    report says any rung's delta-applied index diverged from its cold
    rebuild: the incremental path is bit-identity or it is a bug.
    The other rungs are reported but not gated (the same mechanism at
    easier or harder delta sizes).

In every case the gated number is a *ratio of two same-run
measurements*: raw ms differ wildly between the machine that committed
the baseline and the CI runner, while the ratio cancels machine speed
and isolates genuine regressions (a kernel slowdown, a cache that
stopped hitting, an accidental O(n) in the hot path).

Exit codes: 0 pass, 1 regression, 2 unusable input (missing file,
kind or parameter mismatch between the runs).

``--adopt`` flips the tool from gate to recorder: the current report
is validated, copied over ``--baseline`` verbatim, and one provenance
line is appended to ``benchmarks/BASELINES.md`` — the recorded step
behind every committed baseline change (hand-editing the JSON loses
the trail).

Usage::

    python benchmarks/bench_engine_throughput.py --n 2000 --rounds 200 \\
        --workers 2 --json BENCH_engine.json
    python benchmarks/check_bench_regression.py BENCH_engine.json \\
        --baseline benchmarks/BENCH_engine.json --tolerance 0.25

    python benchmarks/bench_service_latency.py --json BENCH_service.json
    python benchmarks/check_bench_regression.py BENCH_service.json \\
        --baseline benchmarks/BENCH_service.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# parameters that must match for two engine reports to be comparable —
# including the extrapolation caps and repeat count, which change the
# measured statistic (per-round noise floor) even at identical sizes
_IDENTITY_PARAMS = (
    "n",
    "attach",
    "rounds",
    "seeds",
    "rng",
    "workers",
    "scalar_rounds",
    "sketch_rounds",
    "repeats",
)

# every parameter of a service report shapes its latency distribution
_SERVICE_IDENTITY_PARAMS = (
    "dataset",
    "scale",
    "model",
    "theta",
    "seed",
    "num_seeds",
    "cold_repeats",
    "clients",
    "queries_per_client",
)

# a sketch-build report is one ratio over one workload; every knob
# shapes both sides of it
_SKETCH_BUILD_IDENTITY_PARAMS = (
    "n",
    "attach",
    "theta",
    "seeds",
    "rng",
    "workers",
    "repeats",
)

# likewise for the sketch-query report (the greedy selection loop)
_SKETCH_QUERY_IDENTITY_PARAMS = (
    "n",
    "attach",
    "theta",
    "seeds",
    "budget",
    "rng",
    "repeats",
)

# and for the saturation report: every knob shapes where the knee sits
_SATURATION_IDENTITY_PARAMS = (
    "dataset",
    "scale",
    "model",
    "theta",
    "seed",
    "num_seeds",
    "queries_per_client",
    "client_ladder",
    "worker_ladder",
    "p99_bar_multiple",
    "profile_hz",
)

# and for the mmap-artifact report (cold build vs rehydrate)
_MMAP_IDENTITY_PARAMS = (
    "n",
    "attach",
    "theta",
    "seeds",
    "budget",
    "rng",
    "workers",
    "repeats",
)

# and for the graph-update report (delta ladder vs cold rebuild)
_GRAPH_UPDATES_IDENTITY_PARAMS = (
    "n",
    "attach",
    "theta",
    "seeds",
    "rng",
    "fractions",
    "workers",
)


def _die(message: str) -> None:
    print(message, file=sys.stderr)
    raise SystemExit(2)


def report_kind(report: dict) -> str | None:
    if "backends" in report:
        return "engine"
    if "warm_speedup_vs_cold" in report:
        return "service"
    if "sustained_speedup_vs_serial" in report:
        return "service_saturation"
    if "build_speedup_vs_legacy" in report:
        return "sketch_build"
    if "select_speedup_vs_legacy" in report:
        return "sketch_query"
    if "rehydrate_speedup_vs_cold" in report:
        return "mmap_artifacts"
    if "delta_speedup_vs_rebuild" in report:
        return "graph_updates"
    return None


def load_report(path: str | Path) -> dict:
    path = Path(path)
    if not path.is_file():
        _die(f"error: no such report: {path}")
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report_kind(report) is None:
        _die(
            f"error: {path} is not a BENCH_engine.json, "
            "BENCH_service.json, BENCH_service_saturation.json, "
            "BENCH_sketch_build.json, BENCH_sketch_query.json, "
            "BENCH_mmap_artifacts.json or BENCH_graph_updates.json "
            "report"
        )
    return report


def _check_params(
    current: dict, baseline: dict, identity: tuple[str, ...]
) -> None:
    cur_params = current.get("params", {})
    base_params = baseline.get("params", {})
    mismatched = [
        key
        for key in identity
        if cur_params.get(key) != base_params.get(key)
    ]
    if mismatched:
        _die(
            "error: reports are not comparable — parameter mismatch on "
            + ", ".join(
                f"{k} ({base_params.get(k)!r} -> {cur_params.get(k)!r})"
                for k in mismatched
            )
        )


def compare(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Returns ``(failures, lines)`` — regressions and the full log."""
    failures: list[str] = []
    lines: list[str] = []

    _check_params(current, baseline, _IDENTITY_PARAMS)

    base_backends = baseline["backends"]
    cur_backends = current["backends"]
    for name, base in sorted(base_backends.items()):
        if name == "scalar":
            continue  # the normalization reference, 1.0 by construction
        if not base.get("gate", True):
            lines.append(f"note {name}: gate-exempt in baseline")
            continue
        entry = cur_backends.get(name)
        if entry is None:
            failures.append(name)
            lines.append(f"FAIL {name}: missing from the current report")
            continue
        base_speed = float(base["speedup_vs_scalar"])
        cur_speed = float(entry["speedup_vs_scalar"])
        floor = (1.0 - tolerance) * base_speed
        verdict = "ok" if cur_speed >= floor else "FAIL"
        lines.append(
            f"{verdict:<5}{name:<18} baseline {base_speed:7.2f}x  "
            f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
        )
        if cur_speed < floor:
            failures.append(name)
    for name in sorted(set(cur_backends) - set(base_backends)):
        lines.append(f"note {name}: not in baseline (no gate)")
    return failures, lines


def compare_service(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Service-report gate vs the baseline.

    Gates ``warm_speedup_vs_cold_inprocess``: both sides of that ratio
    are numpy compute in one process, so machine speed cancels.  The
    CLI-relative speedup is reported but not gated — its numerator is
    part interpreter startup, which scales differently across runners.
    """
    _check_params(current, baseline, _SERVICE_IDENTITY_PARAMS)
    metric = "warm_speedup_vs_cold_inprocess"
    base_speed = float(baseline[metric])
    cur_speed = float(current[metric])
    floor = (1.0 - tolerance) * base_speed
    verdict = "ok" if cur_speed >= floor else "FAIL"
    lines = [
        f"{verdict:<5}{metric:<30} baseline "
        f"{base_speed:7.2f}x  current {cur_speed:7.2f}x  "
        f"floor {floor:7.2f}x",
        "      vs cold CLI "
        f"{current.get('warm_speedup_vs_cold', '?')}x, warm qps "
        f"{current.get('warm', {}).get('qps', '?')} "
        f"(baseline {baseline.get('warm', {}).get('qps', '?')}; "
        "informational, not gated)",
    ]
    failures = [] if cur_speed >= floor else [metric]
    return failures, lines


def compare_service_saturation(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Saturation-report gate vs the baseline.

    Gates ``sustained_speedup_vs_serial``: knee qps over same-run
    serial qps, both measured in one process under the same profiler,
    so machine speed cancels.  A current report with no knee fails
    unconditionally.  The profiler-overhead figure is printed for the
    log but asserted by the benchmark itself, not gated here.
    """
    _check_params(current, baseline, _SATURATION_IDENTITY_PARAMS)
    failures: list[str] = []
    lines: list[str] = []
    if current.get("knee") is None:
        failures.append("knee")
        lines.append(
            "FAIL knee: no rung of the clients ladder stayed under "
            "its p99 bar"
        )
    metric = "sustained_speedup_vs_serial"
    base_speed = float(baseline[metric])
    cur_speed = float(current[metric])
    floor = (1.0 - tolerance) * base_speed
    verdict = "ok" if cur_speed >= floor else "FAIL"
    lines.append(
        f"{verdict:<5}{metric:<30} baseline {base_speed:7.2f}x  "
        f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
    )
    knee = current.get("knee") or {}
    lines.append(
        f"      knee {knee.get('clients', '?')} clients at "
        f"{current.get('sustained_qps', '?')} q/s, profiler overhead "
        f"{current.get('profiler_overhead_pct', '?')}% "
        f"({current.get('profile', {}).get('samples', '?')} samples; "
        "informational, not gated)"
    )
    if cur_speed < floor:
        failures.append(metric)
    return failures, lines


def compare_sketch_build(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Sketch-build-report gate vs the baseline.

    Gates ``build_speedup_vs_legacy``: both sides of the ratio are
    same-process Python/numpy compute over identical pooled samples,
    so machine speed cancels.  A report with ``identical: false``
    fails unconditionally — the batched build diverging from the
    legacy build breaks the refactor's bit-compatibility contract.
    """
    _check_params(current, baseline, _SKETCH_BUILD_IDENTITY_PARAMS)
    failures: list[str] = []
    lines: list[str] = []
    if not current.get("identical", False):
        failures.append("identical")
        lines.append(
            "FAIL identical: batched trees diverge from the legacy build"
        )
    metric = "build_speedup_vs_legacy"
    base_speed = float(baseline[metric])
    cur_speed = float(current[metric])
    floor = (1.0 - tolerance) * base_speed
    verdict = "ok" if cur_speed >= floor else "FAIL"
    lines.append(
        f"{verdict:<5}{metric:<30} baseline {base_speed:7.2f}x  "
        f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
    )
    if cur_speed < floor:
        failures.append(metric)
    return failures, lines


def compare_sketch_query(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Sketch-query-report gate vs the baseline.

    Gates ``select_speedup_vs_legacy``: both sides of the ratio are
    same-process compute over identical pooled samples, so machine
    speed cancels (though the arena side's compiled kernel makes this
    ratio somewhat more compiler-sensitive than the numpy-vs-numpy
    gates — CI passes a wider tolerance).  A report with
    ``identical: false`` fails unconditionally — the arena query path
    selecting different blockers than the legacy path breaks the
    refactor's bit-compatibility contract.
    """
    _check_params(current, baseline, _SKETCH_QUERY_IDENTITY_PARAMS)
    failures: list[str] = []
    lines: list[str] = []
    if not current.get("identical", False):
        failures.append("identical")
        lines.append(
            "FAIL identical: arena selection diverges from the legacy "
            "query path"
        )
    metric = "select_speedup_vs_legacy"
    base_speed = float(baseline[metric])
    cur_speed = float(current[metric])
    floor = (1.0 - tolerance) * base_speed
    verdict = "ok" if cur_speed >= floor else "FAIL"
    lines.append(
        f"{verdict:<5}{metric:<30} baseline {base_speed:7.2f}x  "
        f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
    )
    lines.append(
        "      rebase "
        f"{current.get('rebase_speedup_vs_legacy', '?')}x, cold "
        f"{current.get('cold_speedup_vs_legacy', '?')}x, native "
        f"{current.get('native', '?')} (informational, not gated)"
    )
    if cur_speed < floor:
        failures.append(metric)
    return failures, lines


def compare_mmap_artifacts(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Mmap-artifact-report gate vs the baseline.

    Gates ``rehydrate_speedup_vs_cold``: both sides of the ratio are
    measured in one process against one cache directory, so machine
    and disk speed cancel.  A report with ``identical: false`` fails
    unconditionally — a rehydrated index that diverges from the cold
    build breaks the persistence layer's bit-identity contract.
    """
    _check_params(current, baseline, _MMAP_IDENTITY_PARAMS)
    failures: list[str] = []
    lines: list[str] = []
    if not current.get("identical", False):
        failures.append("identical")
        lines.append(
            "FAIL identical: rehydrated index diverges from the cold "
            "build"
        )
    metric = "rehydrate_speedup_vs_cold"
    base_speed = float(baseline[metric])
    cur_speed = float(current[metric])
    floor = (1.0 - tolerance) * base_speed
    verdict = "ok" if cur_speed >= floor else "FAIL"
    lines.append(
        f"{verdict:<5}{metric:<30} baseline {base_speed:7.2f}x  "
        f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
    )
    lines.append(
        "      cold "
        f"{current.get('cold_build_s', '?')}s, rehydrate "
        f"{current.get('rehydrate_s', '?')}s, warm query "
        f"{current.get('warm_query_s', '?')}s at m="
        f"{current.get('m', '?')} (informational, not gated)"
    )
    if cur_speed < floor:
        failures.append(metric)
    return failures, lines


def compare_graph_updates(
    current: dict, baseline: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Graph-update-report gate vs the baseline.

    Gates ``delta_speedup_vs_rebuild``: both sides of the ratio — the
    incremental ``apply_delta`` path and the cold rebuild over the
    same mutated graph — are measured in one process in one run, so
    machine speed cancels.  A report with ``identical: false`` fails
    unconditionally — a delta-applied index that diverges from the
    cold rebuild breaks the incremental path's bit-identity contract.
    """
    _check_params(current, baseline, _GRAPH_UPDATES_IDENTITY_PARAMS)
    failures: list[str] = []
    lines: list[str] = []
    if not current.get("identical", False):
        failures.append("identical")
        lines.append(
            "FAIL identical: delta-applied index diverges from the "
            "cold rebuild"
        )
    metric = "delta_speedup_vs_rebuild"
    base_speed = float(baseline[metric])
    cur_speed = float(current[metric])
    floor = (1.0 - tolerance) * base_speed
    verdict = "ok" if cur_speed >= floor else "FAIL"
    lines.append(
        f"{verdict:<5}{metric:<30} baseline {base_speed:7.2f}x  "
        f"current {cur_speed:7.2f}x  floor {floor:7.2f}x"
    )
    for rung in current.get("rungs", []):
        lines.append(
            f"      rung {100 * rung.get('fraction', 0):g}% "
            f"({rung.get('edits', '?')} edits): "
            f"{rung.get('speedup', '?')}x, touched "
            f"{rung.get('touched_samples', '?')} samples, rebuilt "
            f"{rung.get('trees_rebuilt', '?')} trees "
            "(informational, not gated)"
        )
    if cur_speed < floor:
        failures.append(metric)
    return failures, lines


# the headline number a ledger entry records per report kind
_GATED_METRIC = {
    "engine": "backends",
    "service": "warm_speedup_vs_cold_inprocess",
    "service_saturation": "sustained_speedup_vs_serial",
    "sketch_build": "build_speedup_vs_legacy",
    "sketch_query": "select_speedup_vs_legacy",
    "mmap_artifacts": "rehydrate_speedup_vs_cold",
    "graph_updates": "delta_speedup_vs_rebuild",
}

_LEDGER = Path("benchmarks/BASELINES.md")


def adopt(current_path: str, baseline_path: str) -> int:
    """Regenerate a committed baseline through a recorded step.

    Validates the fresh report, copies it over the baseline, and
    appends one line to the ledger (``benchmarks/BASELINES.md``) so a
    baseline change always carries its provenance in the same diff —
    never hand-edit the committed JSON.
    """
    import datetime

    current = load_report(current_path)
    kind = report_kind(current)
    baseline_file = Path(baseline_path)
    if baseline_file.is_file():
        old_kind = report_kind(load_report(baseline_file))
        if kind != old_kind:
            _die(
                f"error: refusing to adopt — {current_path} is a "
                f"{kind} report but {baseline_path} holds {old_kind}"
            )
    metric = _GATED_METRIC.get(kind, "")
    if metric == "backends":
        summary = ", ".join(
            f"{name}={entry.get('speedup_vs_scalar', '?')}x"
            for name, entry in sorted(current["backends"].items())
            if name != "scalar"
        )
    else:
        summary = f"{metric}={current.get(metric, '?')}x"
    payload = dict(current)
    payload.pop("_collapsed_full", None)
    with open(baseline_file, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    stamp = datetime.date.today().isoformat()
    if not _LEDGER.is_file():
        _LEDGER.write_text(
            "# Benchmark baseline ledger\n\n"
            "One line per adopted baseline, appended by\n"
            "`check_bench_regression.py --adopt` — the recorded step\n"
            "behind every committed `BENCH_*.json` change.\n\n",
            encoding="utf-8",
        )
    with open(_LEDGER, "a", encoding="utf-8") as handle:
        handle.write(
            f"- {stamp} `{baseline_file.name}` ({kind}): {summary}\n"
        )
    print(f"adopted {current_path} -> {baseline_file} ({summary})")
    print(f"recorded in {_LEDGER}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_engine.json",
        help="committed baseline report (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help=(
            "allowed fractional drop in normalized throughput before "
            "the gate fails (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--adopt",
        action="store_true",
        help=(
            "instead of gating, adopt the current report as the new "
            "committed baseline and append a ledger entry"
        ),
    )
    args = parser.parse_args(argv)
    if args.adopt:
        return adopt(args.current, args.baseline)
    current = load_report(args.current)
    baseline = load_report(args.baseline)
    kind = report_kind(current)
    if kind != report_kind(baseline):
        _die(
            f"error: report kinds differ — current is {kind}, baseline "
            f"is {report_kind(baseline)}"
        )
    if kind == "service":
        failures, lines = compare_service(
            current, baseline, args.tolerance
        )
        metric = "warm speedup vs cold"
    elif kind == "service_saturation":
        failures, lines = compare_service_saturation(
            current, baseline, args.tolerance
        )
        metric = "sustained speedup vs serial"
    elif kind == "sketch_build":
        failures, lines = compare_sketch_build(
            current, baseline, args.tolerance
        )
        metric = "build speedup vs legacy"
    elif kind == "sketch_query":
        failures, lines = compare_sketch_query(
            current, baseline, args.tolerance
        )
        metric = "selection speedup vs legacy"
    elif kind == "mmap_artifacts":
        failures, lines = compare_mmap_artifacts(
            current, baseline, args.tolerance
        )
        metric = "rehydrate speedup vs cold build"
    elif kind == "graph_updates":
        failures, lines = compare_graph_updates(
            current, baseline, args.tolerance
        )
        metric = "delta speedup vs cold rebuild"
    else:
        failures, lines = compare(current, baseline, args.tolerance)
        metric = "speedup vs scalar"
    print(
        f"benchmark-regression gate (tolerance "
        f"{args.tolerance:.0%} on {metric})"
    )
    for line in lines:
        print(" ", line)
    if failures:
        print(f"regressed metrics: {', '.join(failures)}")
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
