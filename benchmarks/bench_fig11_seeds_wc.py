"""Figure 11: GR running time vs number of seeds (WC model).

Same protocol as Figure 10 under weighted-cascade probabilities.
"""

from __future__ import annotations

import time

from repro.bench import format_table, pick_seeds, prepare_graph
from repro.core import greedy_replace
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_scale, bench_theta, emit

SEED_COUNTS = (1, 10, 100)
BUDGET = 20


def run_seed_sweep_wc() -> list[list[object]]:
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(load_dataset(key, bench_scale()), "wc")
        times = []
        for count in SEED_COUNTS:
            seeds = pick_seeds(graph, count, rng=91)
            start = time.perf_counter()
            greedy_replace(
                graph, seeds, BUDGET, theta=bench_theta(), rng=92
            )
            times.append(time.perf_counter() - start)
        growth = times[-1] / max(times[0], 1e-9)
        rows.append([key, *(round(t, 3) for t in times), round(growth, 2)])
    return rows


def test_fig11_seeds_wc(benchmark):
    rows = benchmark.pedantic(run_seed_sweep_wc, rounds=1, iterations=1)
    seed_growth = SEED_COUNTS[-1] / SEED_COUNTS[0]
    table = format_table(
        [
            "dataset",
            *(f"t(s) |S|={c}" for c in SEED_COUNTS),
            f"time growth (seeds grew {seed_growth:.0f}x)",
        ],
        rows,
        title=(
            f"Figure 11 — GR running time vs number of seeds "
            f"(WC model, b={BUDGET})"
        ),
    )
    emit("fig11_seeds_wc", table)
