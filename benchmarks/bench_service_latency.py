"""Service latency: cold single-shot cost vs warm served queries.

The serving layer's reason to exist (ISSUE 3): a single-shot CLI
invocation pays the full load -> prepare -> sample -> index cost
before answering one query, while ``repro serve`` keeps those
artifacts warm and answers from residency.  This benchmark measures
both paths at matched ``theta``:

* **cold** — per repeat, one real ``repro-imin spread --engine pooled``
  subprocess at the same theta: interpreter + imports + dataset build
  + sampling + one query, which is exactly what a user pays per
  question without the service (an in-process build+query figure is
  reported alongside as ``cold_inprocess``);
* **warm** — a real ``ServiceServer`` on an ephemeral port with a
  pre-warmed artifact; ``clients`` threads each fire
  ``queries-per-client`` spread queries over TCP (varying blocked
  sets), giving per-query p50/p99 latency, aggregate queries/sec, and
  the coalescing counters.

The acceptance bar: warm p50 latency at least **10x** below cold.
``--json PATH`` writes ``BENCH_service.json``; CI gates on
``warm_speedup_vs_cold`` — a ratio of two numbers measured in the
same run, which cancels machine speed — via
``benchmarks/check_bench_regression.py`` (the report kind is
auto-detected).

Run standalone::

    python benchmarks/bench_service_latency.py --scale 0.5 --clients 2
    python benchmarks/bench_service_latency.py --json BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.obs import iter_spans
from repro.service import (
    ArtifactCache,
    ArtifactKey,
    BlockerService,
    default_registry,
    serve,
    ServiceClient,
)

JSON_SCHEMA = 1


def _percentiles(latencies: list[float]) -> dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
        "mean_ms": round(float(arr.mean()), 4),
    }


def _blocked_for(query: int, seeds: list[int], n: int) -> list[int]:
    """A deterministic per-query blocked set avoiding the seeds."""
    gen = np.random.default_rng(10_000 + query)
    seed_set = set(seeds)
    candidates = [v for v in range(n) if v not in seed_set]
    count = int(gen.integers(0, min(3, len(candidates)) + 1))
    picks = gen.choice(len(candidates), size=count, replace=False)
    return sorted(candidates[i] for i in picks)


def run_cold_cli(
    key: ArtifactKey, scale: float, seeds_count: int, repeats: int
) -> dict[str, object]:
    """Time ``repeats`` real single-shot CLI invocations."""
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable, "-m", "repro.cli", "spread",
        "--dataset", key.graph, "--scale", f"{scale:g}",
        "--model", key.model, "--theta", str(key.theta),
        "--seeds", str(seeds_count), "--rng", str(key.seed),
        "--engine", "pooled",
    ]
    latencies = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = subprocess.run(
            command, env=env, capture_output=True, text=True
        )
        latencies.append(time.perf_counter() - start)
        if result.returncode != 0:
            raise RuntimeError(
                f"cold CLI invocation failed: {result.stderr.strip()}"
            )
    stats = _percentiles(latencies)
    stats["qps"] = round(len(latencies) / sum(latencies), 4)
    return stats


def run_cold_inprocess(
    key: ArtifactKey, scale: float, seeds_count: int, repeats: int
) -> dict[str, object]:
    """Time from-scratch build+query without interpreter startup."""
    latencies = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        registry = default_registry(scale=scale)
        cache = ArtifactCache(registry, max_entries=1)
        artifact = cache.get(key)
        seeds = artifact.default_seeds(seeds_count)
        artifact.spread(seeds, [])
        latencies.append(time.perf_counter() - start)
        cache.close()
    stats = _percentiles(latencies)
    stats["qps"] = round(len(latencies) / sum(latencies), 4)
    return stats


def run_warm(
    key: ArtifactKey,
    scale: float,
    seeds_count: int,
    clients: int,
    queries_per_client: int,
) -> dict[str, object]:
    """Serve from a warm artifact; many clients over real TCP."""
    registry = default_registry(scale=scale)
    service = BlockerService(
        registry=registry,
        cache=ArtifactCache(registry, max_entries=2),
    )
    server = serve(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        warm_client = ServiceClient(host, port)
        warm_client.warm(**key.as_dict())
        artifact = service.cache.get(key)
        seeds = artifact.default_seeds(seeds_count)
        n = artifact.csr.n
        warm_client.spread(seeds=seeds, **key.as_dict())  # first-query
        warm_client.close()

        latencies: list[list[float]] = [[] for _ in range(clients)]
        errors: list[BaseException] = []
        barrier = threading.Barrier(clients + 1)

        def worker(idx: int) -> None:
            try:
                with ServiceClient(host, port) as client:
                    barrier.wait()
                    for q in range(queries_per_client):
                        blocked = _blocked_for(
                            idx * queries_per_client + q, seeds, n
                        )
                        start = time.perf_counter()
                        client.spread(
                            seeds=seeds, blocked=blocked, **key.as_dict()
                        )
                        latencies[idx].append(
                            time.perf_counter() - start
                        )
            except BaseException as error:  # noqa: BLE001 - surface
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start
        if errors:
            raise errors[0]
        flat = [latency for per in latencies for latency in per]
        stats = _percentiles(flat)
        stats["qps"] = round(len(flat) / wall, 2)
        stats["queries"] = len(flat)
        stats["coalescing"] = {
            k: v
            for k, v in service.stats.as_dict().items()
            if k in ("batches", "batched_queries", "max_batch")
        }
        # one traced probe query through the real protocol: where a
        # warm request's time goes, phase by phase (queue wait,
        # artifact resolution, engine evaluation, sketch spans)
        with ServiceClient(host, port) as probe:
            traced = probe.request(
                "spread", seeds=seeds, blocked=[], trace=True,
                **key.as_dict(),
            )
        phases: dict[str, dict[str, float]] = {}
        for node in iter_spans(traced.get("trace", {})):
            entry = phases.setdefault(
                node["name"], {"count": 0, "total_ms": 0.0}
            )
            entry["count"] += 1
            entry["total_ms"] = round(
                entry["total_ms"] + node["duration_ms"], 3
            )
        stats["phases"] = phases
        return stats
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def run(params: dict) -> dict[str, object]:
    key = ArtifactKey(
        params["dataset"], params["model"], params["theta"],
        params["seed"],
    )
    cold = run_cold_cli(
        key, params["scale"], params["num_seeds"], params["cold_repeats"]
    )
    cold_inprocess = run_cold_inprocess(
        key, params["scale"], params["num_seeds"], params["cold_repeats"]
    )
    warm = run_warm(
        key,
        params["scale"],
        params["num_seeds"],
        params["clients"],
        params["queries_per_client"],
    )
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "cold": cold,
        "cold_inprocess": cold_inprocess,
        "warm": warm,
        # the headline number (the ISSUE's >= 10x acceptance bar): how
        # much a served query beats what a user actually pays per
        # single-shot CLI question
        "warm_speedup_vs_cold": round(
            cold["p50_ms"] / warm["p50_ms"], 2
        ),
        # the CI-gated number: compute vs compute in one process, so
        # the ratio genuinely cancels machine speed (the CLI figure
        # mixes interpreter startup, which scales differently than the
        # numpy work on a different runner)
        "warm_speedup_vs_cold_inprocess": round(
            cold_inprocess["p50_ms"] / warm["p50_ms"], 2
        ),
    }


def render(report: dict) -> str:
    cold, warm = report["cold"], report["warm"]
    inproc = report["cold_inprocess"]
    lines = [
        "service latency — cold single-shot vs warm served queries "
        f"({report['params']['dataset']}, scale="
        f"{report['params']['scale']:g}, theta="
        f"{report['params']['theta']})",
        f"  cold CLI   p50 {cold['p50_ms']:10.2f} ms   p99 "
        f"{cold['p99_ms']:10.2f} ms   {cold['qps']:8.2f} q/s",
        f"  cold build p50 {inproc['p50_ms']:10.2f} ms   p99 "
        f"{inproc['p99_ms']:10.2f} ms   (in-process, no interpreter)",
        f"  warm serve p50 {warm['p50_ms']:10.2f} ms   p99 "
        f"{warm['p99_ms']:10.2f} ms   {warm['qps']:8.2f} q/s",
        f"  warm speedup vs cold CLI: "
        f"{report['warm_speedup_vs_cold']:.1f}x  "
        f"(vs in-process build: "
        f"{report['warm_speedup_vs_cold_inprocess']:.1f}x; "
        f"coalescing: {warm['coalescing']})",
    ]
    return "\n".join(lines)


def test_service_latency(benchmark):
    """pytest-benchmark entry, scaled down for suite runtime."""
    params = {
        "dataset": "email-core",
        "scale": 0.2,
        "model": "wc",
        "theta": 100,
        "seed": 7,
        "num_seeds": 3,
        "cold_repeats": 2,
        "clients": 2,
        "queries_per_client": 10,
    }
    report = benchmark.pedantic(
        lambda: run(params), rounds=1, iterations=1
    )
    print(render(report))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="email-core")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--model", choices=("tr", "wc"), default="wc")
    parser.add_argument("--theta", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-seeds", type=int, default=5)
    parser.add_argument("--cold-repeats", type=int, default=5)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--queries-per-client", type=int, default=25)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help=(
            "fail unless warm p50 beats cold p50 by this factor "
            "(default: 10; the ISSUE 3 acceptance bar)"
        ),
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only, skip the --min-speedup assertion",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the machine-readable BENCH_service.json",
    )
    args = parser.parse_args(argv)
    params = {
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "theta": args.theta,
        "seed": args.seed,
        "num_seeds": args.num_seeds,
        "cold_repeats": args.cold_repeats,
        "clients": args.clients,
        "queries_per_client": args.queries_per_client,
    }
    report = run(params)
    print(render(report))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if not args.no_check and (
        report["warm_speedup_vs_cold"] < args.min_speedup
    ):
        print(
            f"FAIL: warm speedup {report['warm_speedup_vs_cold']:.1f}x "
            f"< required {args.min_speedup:g}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
