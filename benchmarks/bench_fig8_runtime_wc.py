"""Figure 8: running time of BG / AG / GR on all datasets (WC model).

Same protocol as Figure 7 under weighted-cascade probabilities (the
paper reports BG timing out on 5 of 8 datasets here).
"""

from __future__ import annotations

import time

from repro.bench import format_table, pick_seeds, prepare_graph
from repro.core import advanced_greedy, baseline_greedy, greedy_replace
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_scale, bench_theta, emit

BUDGET = 10
NUM_SEEDS = 10
BG_MCS_ROUNDS = 50
BG_DATASETS = frozenset({"email-core", "wiki-vote"})


def run_runtime_comparison_wc() -> list[list[object]]:
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(load_dataset(key, bench_scale()), "wc")
        seeds = pick_seeds(graph, NUM_SEEDS, rng=61)

        if key in BG_DATASETS:
            start = time.perf_counter()
            baseline_greedy(
                graph, seeds, BUDGET, rounds=BG_MCS_ROUNDS, rng=62
            )
            bg_time = time.perf_counter() - start
        else:
            bg_time = float("nan")

        start = time.perf_counter()
        advanced_greedy(graph, seeds, BUDGET, theta=bench_theta(), rng=63)
        ag_time = time.perf_counter() - start

        start = time.perf_counter()
        greedy_replace(graph, seeds, BUDGET, theta=bench_theta(), rng=64)
        gr_time = time.perf_counter() - start

        speedup = (
            round(bg_time / max(ag_time, 1e-9), 1)
            if bg_time == bg_time
            else "DNF"
        )
        rows.append(
            [
                key,
                round(bg_time, 3) if bg_time == bg_time else "DNF",
                round(ag_time, 3),
                round(gr_time, 3),
                speedup,
            ]
        )
    return rows


def test_fig8_runtime_wc(benchmark):
    rows = benchmark.pedantic(
        run_runtime_comparison_wc, rounds=1, iterations=1
    )
    table = format_table(
        ["dataset", "BG (s)", "AG (s)", "GR (s)", "BG/AG speedup"],
        rows,
        title=(
            f"Figure 8 — running time of BG/AG/GR (WC model, b={BUDGET}; "
            "DNF mirrors the paper's 24h timeout)"
        ),
    )
    emit("fig8_runtime_wc", table)
