"""Engine throughput: scalar vs vectorized vs parallel vs pooled.

The acceptance bar for ``repro.engine``: on a synthetic graph with
>= 10k vertices at 1000 evaluation rounds, the vectorized backend must
beat the scalar ``MonteCarloEngine`` by >= 5x, with the parallel
backend scaling further with worker count (visible on multi-core
hosts; on a single core it degenerates to the vectorized kernel plus
process overhead).

Run standalone (CI smoke uses tiny sizes)::

    python benchmarks/bench_engine_throughput.py --n 2000 --rounds 200
    python benchmarks/bench_engine_throughput.py            # full size

or through pytest-benchmark like the other reproduction benchmarks.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import format_table, pick_seeds
from repro.engine import default_workers, make_evaluator
from repro.graph import barabasi_albert
from repro.models import assign_weighted_cascade
from repro.spread import MonteCarloEngine

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "engine_throughput"


def build_graph(n: int, attach: int, rng: int):
    """Heavy-tailed synthetic graph under the paper's WC model."""
    return assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))


def run_throughput(
    n: int = 10_000,
    attach: int = 5,
    rounds: int = 1000,
    num_seeds: int = 10,
    rng: int = 7,
    workers: tuple[int, ...] = (),
    scalar_rounds: int | None = None,
) -> list[list[object]]:
    """Time every backend; returns table rows.

    ``scalar_rounds`` caps the scalar reference's measured rounds (its
    per-round cost is constant, so the per-round time extrapolates);
    the accelerated backends always run the full ``rounds``.
    """
    graph = build_graph(n, attach, rng)
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    if not workers:
        workers = (default_workers(),)

    rows: list[list[object]] = []

    measured = min(rounds, scalar_rounds or rounds)
    engine = MonteCarloEngine(graph, rng)
    start = time.perf_counter()
    spread = engine.expected_spread(seeds, measured)
    per_round = (time.perf_counter() - start) / measured
    scalar_per_round = per_round
    rows.append(
        ["scalar", measured, round(spread, 2),
         round(per_round * 1e3, 4), "1.0x"]
    )

    def time_backend(label: str, evaluator) -> None:
        evaluator.expected_spread(seeds, min(rounds, 16))  # warm-up
        start = time.perf_counter()
        est = evaluator.expected_spread(seeds, rounds)
        per = (time.perf_counter() - start) / rounds
        rows.append(
            [label, rounds, round(est, 2), round(per * 1e3, 4),
             f"{scalar_per_round / per:.1f}x"]
        )
        close = getattr(evaluator, "close", None)
        if close is not None:
            close()

    time_backend("vectorized", make_evaluator(graph, "vectorized", rng=rng))
    for w in workers:
        time_backend(
            f"parallel[w={w}]",
            make_evaluator(graph, "parallel", rng=rng, workers=w),
        )
    pooled = make_evaluator(graph, "pooled", rng=rng)
    time_backend("pooled (cold)", pooled)
    time_backend("pooled (warm)", pooled)  # samples already materialised

    return rows


def render(rows: list[list[object]], n: int, rounds: int) -> str:
    return format_table(
        ["backend", "rounds", "spread", "ms/round", "speedup"],
        rows,
        title=(
            f"engine throughput — expected_spread on a BA stand-in "
            f"(n={n}, WC model, {rounds} rounds)"
        ),
    )


def test_engine_throughput(benchmark):
    """pytest-benchmark entry, scaled for suite runtime."""
    n, rounds = 10_000, 1000
    rows = benchmark.pedantic(
        lambda: run_throughput(n=n, rounds=rounds, scalar_rounds=200),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(rows, n, rounds))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=5)
    parser.add_argument("--rounds", type=int, default=1000)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[],
        help="parallel worker counts to sweep (default: all cores)",
    )
    parser.add_argument(
        "--scalar-rounds",
        type=int,
        default=None,
        help="cap the scalar reference's measured rounds (extrapolated)",
    )
    args = parser.parse_args(argv)
    rows = run_throughput(
        n=args.n,
        attach=args.attach,
        rounds=args.rounds,
        num_seeds=args.seeds,
        rng=args.rng,
        workers=tuple(args.workers),
        scalar_rounds=args.scalar_rounds,
    )
    emit(RESULT_FILE, render(rows, args.n, args.rounds))
    return 0


if __name__ == "__main__":
    sys.exit(main())
