"""Engine throughput: scalar vs vectorized vs parallel vs pooled vs sketch.

The acceptance bar for ``repro.engine``: on a synthetic graph with
>= 10k vertices at 1000 evaluation rounds, the vectorized backend must
beat the scalar ``MonteCarloEngine`` by >= 5x, with the parallel
backend scaling further with worker count (visible on multi-core
hosts; on a single core it degenerates to the vectorized kernel plus
process overhead).  The sketch backend is timed cold (index build —
one dominator tree per sample) and warm (cached-index queries, where
its per-round cost collapses to an array read).

``--json PATH`` additionally writes a machine-readable report
(``BENCH_engine.json``): per backend the measured ms/round and the
*normalized throughput* (speedup vs the scalar reference measured in
the same run).  CI gates on the normalized number — it cancels
machine-speed differences between the committed baseline and the
runner — via ``benchmarks/check_bench_regression.py``.

Run standalone (CI smoke uses tiny sizes)::

    python benchmarks/bench_engine_throughput.py --n 2000 --rounds 200
    python benchmarks/bench_engine_throughput.py            # full size

or through pytest-benchmark like the other reproduction benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import format_table, pick_seeds
from repro.engine import default_workers, EngineSpec, make_evaluator
from repro.graph import barabasi_albert
from repro.models import assign_weighted_cascade
from repro.spread import MonteCarloEngine

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "engine_throughput"
JSON_SCHEMA = 1


def build_graph(n: int, attach: int, rng: int):
    """Heavy-tailed synthetic graph under the paper's WC model."""
    return assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))


def run_throughput(
    n: int = 10_000,
    attach: int = 5,
    rounds: int = 1000,
    num_seeds: int = 10,
    rng: int = 7,
    workers: tuple[int, ...] = (),
    scalar_rounds: int | None = None,
    sketch_rounds: int | None = None,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Time every backend; returns one record per (backend, phase).

    ``scalar_rounds`` caps the scalar reference's measured rounds (its
    per-round cost is constant, so the per-round time extrapolates);
    ``sketch_rounds`` does the same for the sketch index, whose cold
    cost is one dominator tree per sample and therefore also linear in
    the measured rounds.  The accelerated Monte-Carlo backends always
    run the full ``rounds``.

    Every number is the best of ``repeats`` timings (cold phases get a
    fresh evaluator per repeat) — the min filters scheduler noise,
    which matters because CI gates on the reported ratios.
    """
    graph = build_graph(n, attach, rng)
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    if not workers:
        workers = (default_workers(),)

    records: list[dict[str, object]] = []

    def best_of(run, measure: int) -> tuple[float, float]:
        """Min per-round seconds (and last estimate) over repeats."""
        per, est = float("inf"), 0.0
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            est = run()
            per = min(per, (time.perf_counter() - start) / measure)
        return per, est

    def close(evaluator) -> None:
        fn = getattr(evaluator, "close", None)
        if fn is not None:
            fn()

    measured = min(rounds, scalar_rounds or rounds)
    engine = MonteCarloEngine(graph, rng)
    scalar_per_round, spread = best_of(
        lambda: engine.expected_spread(seeds, measured), measured
    )
    records.append(
        {
            "backend": "scalar",
            "rounds": measured,
            "spread": spread,
            "ms_per_round": scalar_per_round * 1e3,
            "speedup_vs_scalar": 1.0,
        }
    )

    def record(label: str, measure: int, per: float, est: float) -> None:
        records.append(
            {
                "backend": label,
                "rounds": measure,
                "spread": est,
                "ms_per_round": per * 1e3,
                "speedup_vs_scalar": scalar_per_round / per,
            }
        )

    def time_warmable(label: str, evaluator, measure: int = rounds) -> None:
        evaluator.expected_spread(seeds, min(measure, 16))  # warm-up
        per, est = best_of(
            lambda: evaluator.expected_spread(seeds, measure), measure
        )
        record(label, measure, per, est)

    vectorized = make_evaluator(
        graph, EngineSpec(engine="vectorized", seed=rng)
    )
    time_warmable("vectorized", vectorized)
    close(vectorized)
    for w in workers:
        parallel = make_evaluator(
            graph, EngineSpec(engine="parallel", seed=rng, workers=w)
        )
        time_warmable(f"parallel[w={w}]", parallel)
        close(parallel)

    def time_cold_warm(
        backend: str, measure: int, query_rounds: int
    ) -> None:
        """Cold = build + first query on a fresh evaluator (each
        repeat pays the build); warm = repeat queries on the last."""
        per_cold, est, evaluator = float("inf"), 0.0, None
        for _ in range(max(1, repeats)):
            if evaluator is not None:
                close(evaluator)
            evaluator = make_evaluator(
                graph, EngineSpec(engine=backend, seed=rng)
            )
            start = time.perf_counter()
            est = evaluator.expected_spread(seeds, query_rounds)
            per_cold = min(
                per_cold, (time.perf_counter() - start) / query_rounds
            )
        record(f"{backend} (cold)", query_rounds, per_cold, est)
        per_warm, est = best_of(
            lambda: evaluator.expected_spread(seeds, query_rounds),
            query_rounds,
        )
        record(f"{backend} (warm)", query_rounds, per_warm, est)
        close(evaluator)

    time_cold_warm("pooled", rounds, rounds)
    # the sketch index builds one dominator tree per sample (cold) and
    # then answers repeated queries from the cached trees (warm)
    sketch_measured = min(rounds, sketch_rounds or min(rounds, 200))
    time_cold_warm("sketch", sketch_measured, sketch_measured)

    return records


def render(records: list[dict[str, object]], n: int, rounds: int) -> str:
    rows = [
        [
            r["backend"],
            r["rounds"],
            round(float(r["spread"]), 2),
            f"{float(r['ms_per_round']):.4g}",
            f"{float(r['speedup_vs_scalar']):.1f}x",
        ]
        for r in records
    ]
    return format_table(
        ["backend", "rounds", "spread", "ms/round", "speedup"],
        rows,
        title=(
            f"engine throughput — expected_spread on a BA stand-in "
            f"(n={n}, WC model, {rounds} rounds)"
        ),
    )


def to_json(
    records: list[dict[str, object]], params: dict[str, object]
) -> dict[str, object]:
    """The ``BENCH_engine.json`` document (see module docstring)."""
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "backends": {
            str(r["backend"]): {
                "rounds": r["rounds"],
                "ms_per_round": round(float(r["ms_per_round"]), 6),
                "speedup_vs_scalar": round(
                    float(r["speedup_vs_scalar"]), 4
                ),
                # the warm sketch query is O(1) — a cached-array read —
                # so its single-query timing is clock noise; report it
                # but exempt it from the CI regression gate
                "gate": str(r["backend"]) != "sketch (warm)",
            }
            for r in records
        },
    }


def test_engine_throughput(benchmark):
    """pytest-benchmark entry, scaled for suite runtime."""
    n, rounds = 10_000, 1000
    records = benchmark.pedantic(
        lambda: run_throughput(n=n, rounds=rounds, scalar_rounds=200),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(records, n, rounds))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=5)
    parser.add_argument("--rounds", type=int, default=1000)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[],
        help="parallel worker counts to sweep (default: all cores)",
    )
    parser.add_argument(
        "--scalar-rounds",
        type=int,
        default=None,
        help="cap the scalar reference's measured rounds (extrapolated)",
    )
    parser.add_argument(
        "--sketch-rounds",
        type=int,
        default=None,
        help=(
            "cap the sketch index's measured rounds (extrapolated; "
            "default min(rounds, 200))"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timings per backend; the best is reported (default: 3)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the machine-readable BENCH_engine.json report",
    )
    args = parser.parse_args(argv)
    records = run_throughput(
        n=args.n,
        attach=args.attach,
        rounds=args.rounds,
        num_seeds=args.seeds,
        rng=args.rng,
        workers=tuple(args.workers),
        scalar_rounds=args.scalar_rounds,
        sketch_rounds=args.sketch_rounds,
        repeats=args.repeats,
    )
    emit(RESULT_FILE, render(records, args.n, args.rounds))
    if args.json is not None:
        params = {
            "n": args.n,
            "attach": args.attach,
            "rounds": args.rounds,
            "seeds": args.seeds,
            "rng": args.rng,
            "workers": list(args.workers),
            "scalar_rounds": args.scalar_rounds,
            "sketch_rounds": args.sketch_rounds,
            "repeats": args.repeats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(records, params), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
