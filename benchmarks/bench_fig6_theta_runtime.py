"""Figure 6: running time vs number of sampled graphs.

The paper shows GR's runtime growing roughly linearly in theta across
all datasets.  We time the same theta ladder as Figure 5 (budget 20,
10 seeds, TR model) and report seconds per dataset — the expected shape
is monotone, near-proportional growth.
"""

from __future__ import annotations

import time

from repro.bench import format_table, pick_seeds, prepare_graph
from repro.core import greedy_replace
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_scale, bench_theta, emit

BUDGET = 20
NUM_SEEDS = 10


def _sweep() -> list[list[object]]:
    theta_ladder = [
        max(10, bench_theta() // 4),
        bench_theta(),
        bench_theta() * 4,
    ]
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(load_dataset(key, bench_scale()), "tr", rng=5)
        seeds = pick_seeds(graph, NUM_SEEDS, rng=5)
        times = []
        for theta in theta_ladder:
            start = time.perf_counter()
            greedy_replace(graph, seeds, BUDGET, theta=theta, rng=11)
            times.append(time.perf_counter() - start)
        growth = times[-1] / max(times[0], 1e-9)
        rows.append([key, *(round(t, 3) for t in times), round(growth, 2)])
    return rows


def test_fig6_theta_runtime(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    theta = bench_theta()
    table = format_table(
        [
            "dataset",
            f"t(s) θ={max(10, theta // 4)}",
            f"t(s) θ={theta}",
            f"t(s) θ={theta * 4}",
            "growth low→high (16x θ)",
        ],
        rows,
        title=(
            "Figure 6 — GR running time vs theta "
            f"(TR model, b={BUDGET}, |S|={NUM_SEEDS})"
        ),
    )
    emit("fig6_theta_runtime", table)
