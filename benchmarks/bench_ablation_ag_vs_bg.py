"""Ablation (Section V-C): the dominator-tree estimator vs per-candidate
Monte-Carlo, at equal sample counts.

The paper argues that with r = theta, AG's sampled-graph estimator
extracts the same information as BG's per-candidate MCS at a tiny
fraction of the cost: BG performs ~n spread evaluations per round,
AG exactly one pass over theta dominator trees.  This ablation fixes
r = theta and compares (i) final blocker quality and (ii) the number of
cascade/sample computations, isolating the paper's core efficiency
claim from implementation details.
"""

from __future__ import annotations

import time

from repro.bench import (
    evaluate_spread,
    format_table,
    pick_seeds,
    prepare_graph,
)
from repro.core import advanced_greedy, baseline_greedy
from repro.datasets import load_dataset

from .conftest import bench_eval_rounds, bench_scale, emit

BUDGET = 5
SAMPLES = 60  # r = theta
NUM_SEEDS = 5
DATASETS = ("email-core", "wiki-vote")


def run_ablation() -> list[list[object]]:
    rows = []
    for key in DATASETS:
        graph = prepare_graph(
            load_dataset(key, bench_scale() * 0.6), "tr", rng=101
        )
        seeds = pick_seeds(graph, NUM_SEEDS, rng=101)

        start = time.perf_counter()
        bg = baseline_greedy(
            graph, seeds, BUDGET, rounds=SAMPLES, rng=102
        )
        bg_time = time.perf_counter() - start

        start = time.perf_counter()
        ag = advanced_greedy(graph, seeds, BUDGET, theta=SAMPLES, rng=103)
        ag_time = time.perf_counter() - start

        bg_spread = evaluate_spread(
            graph, seeds, bg.blockers, rounds=bench_eval_rounds(), rng=99
        )
        ag_spread = evaluate_spread(
            graph, seeds, ag.blockers, rounds=bench_eval_rounds(), rng=99
        )
        # BG: `evaluations` spread estimates of `SAMPLES` cascades each;
        # AG: BUDGET rounds of `SAMPLES` sampled graphs each.
        bg_samples = bg.evaluations * SAMPLES
        ag_samples = BUDGET * SAMPLES
        rows.append(
            [
                key,
                round(bg_spread, 3),
                round(ag_spread, 3),
                bg_samples,
                ag_samples,
                round(bg_time, 2),
                round(ag_time, 2),
                round(bg_time / max(ag_time, 1e-9), 1),
            ]
        )
    return rows


def test_ablation_ag_vs_bg_equal_samples(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset",
            "BG spread",
            "AG spread",
            "BG cascades",
            "AG samples",
            "BG time (s)",
            "AG time (s)",
            "speedup",
        ],
        rows,
        title=(
            "Ablation §V-C — per-candidate MCS (BG) vs dominator-tree "
            f"estimator (AG) at equal sample count r = theta = {SAMPLES}, "
            f"b={BUDGET}"
        ),
    )
    emit("ablation_ag_vs_bg", table)
