"""Table VII: expected spread of RA / OD / AG / GR across all datasets.

The paper's largest table: for each of the 8 datasets, both propagation
models and budgets 20..100, it reports the final expected spread of
Rand, OutDegree, AdvancedGreedy and GreedyReplace (10 random seeds,
evaluated with 10^5 MCS rounds).  Expected shape: GR <= AG << OD < RA
everywhere, with the gap widening as the budget grows.

We run budgets scaled to our stand-in sizes and evaluate with a smaller
(but shared) MCS pass.
"""

from __future__ import annotations

from repro.bench import (
    evaluate_spread,
    format_table,
    pick_seeds,
    prepare_graph,
)
from repro.core import (
    advanced_greedy,
    greedy_replace,
    out_degree_blockers,
    random_blockers,
)
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_eval_rounds, bench_scale, bench_theta, emit

BUDGETS = (5, 10, 20)
NUM_SEEDS = 10


def run_model(model: str) -> list[list[object]]:
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(
            load_dataset(key, bench_scale()), model, rng=41
        )
        seeds = pick_seeds(graph, NUM_SEEDS, rng=41)
        for budget in BUDGETS:
            blockers = {
                "RA": random_blockers(graph, seeds, budget, rng=42),
                "OD": out_degree_blockers(graph, seeds, budget),
                "AG": advanced_greedy(
                    graph, seeds, budget, theta=bench_theta(), rng=43
                ).blockers,
                "GR": greedy_replace(
                    graph, seeds, budget, theta=bench_theta(), rng=44
                ).blockers,
            }
            spreads = {
                name: evaluate_spread(
                    graph, seeds, chosen,
                    rounds=bench_eval_rounds(), rng=99,
                )
                for name, chosen in blockers.items()
            }
            rows.append(
                [
                    key,
                    budget,
                    round(spreads["RA"], 3),
                    round(spreads["OD"], 3),
                    round(spreads["AG"], 3),
                    round(spreads["GR"], 3),
                ]
            )
    return rows


def test_table7_tr_model(benchmark):
    rows = benchmark.pedantic(run_model, args=("tr",), rounds=1, iterations=1)
    table = format_table(
        ["dataset", "b", "RA", "OD", "AG", "GR"],
        rows,
        title=(
            "Table VII (TR model) — expected spread by algorithm "
            f"(|S|={NUM_SEEDS})"
        ),
    )
    emit("table7_heuristics", table)


def test_table7_wc_model(benchmark):
    rows = benchmark.pedantic(run_model, args=("wc",), rounds=1, iterations=1)
    table = format_table(
        ["dataset", "b", "RA", "OD", "AG", "GR"],
        rows,
        title=(
            "Table VII (WC model) — expected spread by algorithm "
            f"(|S|={NUM_SEEDS})"
        ),
    )
    emit("table7_heuristics", table)
