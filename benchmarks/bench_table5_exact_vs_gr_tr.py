"""Table V: Exact vs GreedyReplace under the TR model.

The paper extracts 5 neighbourhood subgraphs (~100 vertices) from
EmailCore, runs the exhaustive Exact algorithm and GR for budgets
1..4, and reports GR achieving >= 99.88% of the optimal spread while
being up to 6 orders of magnitude faster.  We run the same protocol at
reduced subgraph size/budget (exhaustive search is exponential) and
expect the same shape: GR ratio ~100%, runtime gap growing explosively
with the budget.
"""

from __future__ import annotations

import time

from repro.bench import evaluate_spread, format_table, pick_seeds, prepare_graph
from repro.core import exact_blockers, greedy_replace
from repro.datasets import extract_subgraphs, load_dataset

from .conftest import bench_eval_rounds, bench_scale, bench_theta, emit

MODEL = "tr"
SUBGRAPH_SIZE = 18
SUBGRAPH_COUNT = 3
BUDGETS = (1, 2, 3)
EXACT_MCS_ROUNDS = 500
TABLE_NAME = "Table V"
RESULT_FILE = "table5_exact_vs_gr_tr"


def run_exact_vs_gr() -> list[list[object]]:
    graph = prepare_graph(
        load_dataset("email-core", bench_scale()), MODEL, rng=21
    )
    subgraphs = extract_subgraphs(
        graph, count=SUBGRAPH_COUNT, target_size=SUBGRAPH_SIZE, rng=22
    )
    rows = []
    for budget in BUDGETS:
        exact_spread_total = 0.0
        gr_spread_total = 0.0
        exact_time = 0.0
        gr_time = 0.0
        for index, (sub, _) in enumerate(subgraphs):
            seeds = pick_seeds(sub, 2, rng=23 + index)

            start = time.perf_counter()
            exact = exact_blockers(
                sub, seeds, budget,
                evaluator="mcs", rounds=EXACT_MCS_ROUNDS, rng=24,
            )
            exact_time += time.perf_counter() - start

            start = time.perf_counter()
            gr = greedy_replace(
                sub, seeds, budget, theta=bench_theta() * 4, rng=25
            )
            gr_time += time.perf_counter() - start

            rounds = bench_eval_rounds() * 4
            exact_spread_total += evaluate_spread(
                sub, seeds, exact.blockers, rounds=rounds, rng=99
            )
            gr_spread_total += evaluate_spread(
                sub, seeds, gr.blockers, rounds=rounds, rng=99
            )
        count = len(subgraphs)
        ratio = 100.0 * exact_spread_total / max(gr_spread_total, 1e-9)
        rows.append(
            [
                budget,
                round(exact_spread_total / count, 3),
                round(gr_spread_total / count, 3),
                f"{ratio:.2f}%",
                round(exact_time, 3),
                round(gr_time, 3),
            ]
        )
    return rows


def test_table5_exact_vs_gr_tr(benchmark):
    rows = benchmark.pedantic(run_exact_vs_gr, rounds=1, iterations=1)
    table = format_table(
        [
            "b",
            "Exact spread",
            "GR spread",
            "ratio (Exact/GR)",
            "Exact time (s)",
            "GR time (s)",
        ],
        rows,
        title=(
            f"{TABLE_NAME} — Exact vs GreedyReplace "
            f"({MODEL.upper()} model, {SUBGRAPH_COUNT} subgraphs of "
            f"~{SUBGRAPH_SIZE} vertices)"
        ),
    )
    emit(RESULT_FILE, table)
