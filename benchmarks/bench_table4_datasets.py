"""Table IV: dataset statistics — original vs stand-in.

The paper's Table IV lists n, m, average degree and max degree for the
eight SNAP datasets.  This benchmark builds every stand-in at the
configured scale and prints both the paper's numbers and the
stand-in's, which is how the substitution documented in DESIGN.md is
kept honest: directedness, density ordering and degree skew must match
even though absolute sizes are scaled down.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import DATASETS
from repro.graph.metrics import degree_gini, graph_stats

from .conftest import bench_scale, emit


def collect_stats() -> list[list[object]]:
    rows = []
    for info in DATASETS.values():
        graph = info.load(bench_scale())
        stats = graph_stats(graph)
        rows.append(
            [
                info.key,
                "dir" if info.directed else "und",
                info.paper_n,
                info.paper_m,
                round(info.paper_davg, 1),
                stats.n,
                stats.m,
                round(stats.average_degree, 1),
                stats.max_degree,
                round(degree_gini(graph), 2),
            ]
        )
    return rows


def test_table4_dataset_statistics(benchmark):
    rows = benchmark.pedantic(collect_stats, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset",
            "type",
            "paper n",
            "paper m",
            "paper davg",
            "standin n",
            "standin m(dir)",
            "standin davg",
            "standin dmax",
            "degree gini",
        ],
        rows,
        title=(
            "Table IV — dataset statistics, original vs synthetic "
            f"stand-in (scale={bench_scale()})"
        ),
    )
    emit("table4_datasets", table)
