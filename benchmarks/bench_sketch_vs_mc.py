"""Sketch index vs vectorized Monte Carlo at matched estimation error.

The workload is the greedy inner loop's primitive (Algorithm 2): the
marginal spread decrease of *every* candidate blocker.  Both backends
average over ``theta`` i.i.d. live-edge worlds, so their estimation
error is matched by construction — Theorem 5's sample bound applies to
either — and the comparison isolates mechanics:

* the **sketch index** draws ``theta`` pooled samples once, builds one
  dominator tree per sample, and reads all ``n`` candidate decreases
  off the aggregated subtree sizes (one array);
* **vectorized Monte Carlo** must re-simulate the cascade for every
  candidate — ``n + 1`` ``expected_spread`` calls of ``theta`` rounds
  each.  The full sweep is extrapolated from a measured probe of
  candidates (per-call cost is candidate-independent), exactly like
  the scalar reference in ``bench_engine_throughput.py``.

The acceptance bar: on the 10k-vertex WC graph the sketch must beat
the vectorized MC full sweep by >= 2x.  In practice it wins by orders
of magnitude — the paper's point — and the report also times a full
CELF-lazy AdvancedGreedy selection on the warm index.

Run standalone (CI smoke uses tiny sizes)::

    python benchmarks/bench_sketch_vs_mc.py --n 2000 --theta 100
    python benchmarks/bench_sketch_vs_mc.py        # full size
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench import format_table, pick_seeds
from repro.core import advanced_greedy
from repro.engine import EngineSpec, make_evaluator
from repro.graph import barabasi_albert
from repro.models import assign_weighted_cascade

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "sketch_vs_mc"
TARGET_SPEEDUP = 2.0


def run_comparison(
    n: int = 10_000,
    attach: int = 5,
    theta: int = 200,
    num_seeds: int = 10,
    rng: int = 7,
    mc_candidates: int = 32,
    budget: int = 10,
) -> dict[str, object]:
    """Time both backends on the all-candidates decrease sweep."""
    graph = assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    seed_set = set(seeds)
    candidates = [v for v in range(graph.n) if v not in seed_set]
    gen = np.random.default_rng(rng)
    probe = sorted(
        gen.choice(
            candidates,
            size=min(mc_candidates, len(candidates)),
            replace=False,
        ).tolist()
    )

    # ------------------------------------------------------------------
    # sketch: index build + the whole sweep (all candidates at once)
    # ------------------------------------------------------------------
    sketch = make_evaluator(graph, EngineSpec(engine="sketch", seed=rng))
    start = time.perf_counter()
    spread_sketch = sketch.expected_spread(seeds, theta)
    delta_sketch = sketch.decrease_estimates(seeds, theta)
    t_sketch = time.perf_counter() - start

    # ------------------------------------------------------------------
    # vectorized MC: baseline + one blocked re-simulation per candidate,
    # measured on the probe set and extrapolated to the full sweep
    # ------------------------------------------------------------------
    mc = make_evaluator(
        graph, EngineSpec(engine="vectorized", seed=rng)
    )
    start = time.perf_counter()
    spread_mc = mc.expected_spread(seeds, theta)
    delta_mc = {
        v: spread_mc - mc.expected_spread(seeds, theta, [v])
        for v in probe
    }
    t_probe = time.perf_counter() - start
    per_call = t_probe / (len(probe) + 1)
    t_mc_full = per_call * (len(candidates) + 1)

    # ------------------------------------------------------------------
    # matched-error evidence: agreement on the probe candidates
    # ------------------------------------------------------------------
    diffs = [abs(float(delta_sketch[v]) - delta_mc[v]) for v in probe]
    mean_abs_diff = sum(diffs) / len(diffs)
    base_spread = max(spread_sketch, spread_mc, 1.0)

    # ------------------------------------------------------------------
    # end-to-end: CELF-lazy AdvancedGreedy on the (warm) sketch index
    # ------------------------------------------------------------------
    start = time.perf_counter()
    selection = advanced_greedy(
        graph, seeds, budget, theta=theta, evaluator=sketch
    )
    t_greedy = time.perf_counter() - start

    return {
        "n": n,
        "theta": theta,
        "probe": len(probe),
        "candidates": len(candidates),
        "spread_sketch": spread_sketch,
        "spread_mc": spread_mc,
        "t_sketch": t_sketch,
        "t_probe": t_probe,
        "t_mc_full": t_mc_full,
        "speedup": t_mc_full / t_sketch,
        "mean_abs_diff": mean_abs_diff,
        "rel_diff": mean_abs_diff / base_spread,
        "t_greedy": t_greedy,
        "blockers": selection.blockers,
        "blocked_spread": selection.estimated_spread,
    }


def render(r: dict[str, object]) -> str:
    rows = [
        [
            "sketch (build + sweep)",
            r["candidates"],
            f"{r['t_sketch']:.2f}",
            f"{r['spread_sketch']:.2f}",
        ],
        [
            f"vectorized MC (probe {r['probe']})",
            r["probe"],
            f"{r['t_probe']:.2f}",
            f"{r['spread_mc']:.2f}",
        ],
        [
            "vectorized MC (full sweep, extrap.)",
            r["candidates"],
            f"{r['t_mc_full']:.2f}",
            f"{r['spread_mc']:.2f}",
        ],
        [
            "lazy AdvancedGreedy on warm sketch",
            f"b={len(r['blockers'])}",
            f"{r['t_greedy']:.2f}",
            f"{r['blocked_spread']:.2f}",
        ],
    ]
    verdict = "PASS" if r["speedup"] >= TARGET_SPEEDUP else "FAIL"
    summary = (
        f"matched error: theta={r['theta']} worlds for both backends; "
        f"probe agreement mean |diff| = {r['mean_abs_diff']:.3f} "
        f"({100 * r['rel_diff']:.2f}% of spread)\n"
        f"sketch full-sweep speedup vs vectorized MC: "
        f"{r['speedup']:.1f}x (>= {TARGET_SPEEDUP:.0f}x target: {verdict})"
    )
    table = format_table(
        ["workload", "candidates", "seconds", "spread"],
        rows,
        title=(
            f"sketch vs vectorized MC — all-candidates decrease sweep "
            f"(n={r['n']}, WC model, theta={r['theta']})"
        ),
    )
    return f"{table}\n{summary}"


def test_sketch_vs_mc(benchmark):
    """pytest-benchmark entry, scaled for suite runtime."""
    result = benchmark.pedantic(
        lambda: run_comparison(n=10_000, theta=200),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(result))
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=5)
    parser.add_argument("--theta", type=int, default=200)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument(
        "--mc-candidates",
        type=int,
        default=32,
        help="candidates measured for the MC extrapolation",
    )
    parser.add_argument(
        "--budget", type=int, default=10, help="lazy-greedy budget"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help=(
            "report but never fail on the speedup target (for smoke "
            "runs at sizes the acceptance bar was not defined for)"
        ),
    )
    args = parser.parse_args(argv)
    result = run_comparison(
        n=args.n,
        attach=args.attach,
        theta=args.theta,
        num_seeds=args.seeds,
        rng=args.rng,
        mc_candidates=args.mc_candidates,
        budget=args.budget,
    )
    emit(RESULT_FILE, render(result))
    if args.no_check:
        return 0
    return 0 if result["speedup"] >= TARGET_SPEEDUP else 1


if __name__ == "__main__":
    sys.exit(main())
