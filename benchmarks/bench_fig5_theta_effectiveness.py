"""Figure 5: effectiveness (expected spread) vs number of sampled graphs.

The paper varies theta over {10^3, 10^4, 10^5} with budget 20 and 10
seeds under the TR model, and reports the *decrease ratio* of the final
spread when theta grows — finding it below 2.89% from 10^3 to 10^4 and
below 0.1% beyond.  We sweep a scaled theta ladder on every dataset
stand-in and report the same ratios; the expected shape is the same
flatness (quality saturates quickly in theta).
"""

from __future__ import annotations

from repro.bench import evaluate_spread, format_table, pick_seeds, prepare_graph
from repro.core import greedy_replace
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_eval_rounds, bench_scale, bench_theta, emit

BUDGET = 20
NUM_SEEDS = 10


def _sweep() -> list[list[object]]:
    theta_ladder = [
        max(10, bench_theta() // 4),
        bench_theta(),
        bench_theta() * 4,
    ]
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(load_dataset(key, bench_scale()), "tr", rng=5)
        seeds = pick_seeds(graph, NUM_SEEDS, rng=5)
        spreads = []
        for theta in theta_ladder:
            result = greedy_replace(
                graph, seeds, BUDGET, theta=theta, rng=11
            )
            spreads.append(
                evaluate_spread(
                    graph, seeds, result.blockers,
                    rounds=bench_eval_rounds(), rng=99,
                )
            )
        ratio_mid = 100.0 * (spreads[0] - spreads[1]) / max(spreads[0], 1e-9)
        ratio_high = 100.0 * (spreads[1] - spreads[2]) / max(spreads[1], 1e-9)
        rows.append(
            [key, *(round(s, 3) for s in spreads), ratio_mid, ratio_high]
        )
    return rows


def test_fig5_theta_effectiveness(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    theta = bench_theta()
    table = format_table(
        [
            "dataset",
            f"spread θ={max(10, theta // 4)}",
            f"spread θ={theta}",
            f"spread θ={theta * 4}",
            "decr% low→mid",
            "decr% mid→high",
        ],
        rows,
        title=(
            "Figure 5 — GR expected spread vs theta "
            f"(TR model, b={BUDGET}, |S|={NUM_SEEDS})"
        ),
    )
    emit("fig5_theta_effectiveness", table)
