"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
Section VI at laptop scale.  Scale knobs (environment variables):

``REPRO_BENCH_SCALE``
    Multiplier on the dataset stand-in sizes (default 0.25).
``REPRO_BENCH_THETA``
    Sampled graphs per greedy round for AG/GR (default 100; the paper
    uses 10^4 in C++ — Figure 5 shows quality is flat in theta).
``REPRO_BENCH_EVAL_ROUNDS``
    Monte-Carlo rounds for final spread evaluation (default 600; the
    paper uses 10^5).

Each run appends its rendered table to ``benchmarks/results/<name>.txt``
so the output survives pytest's capture; run with ``-s`` to watch live.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


def bench_theta() -> int:
    return int(os.environ.get("REPRO_BENCH_THETA", "100"))


def bench_eval_rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_EVAL_ROUNDS", "600"))


_emitted_this_run: set[str] = set()


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/.

    The first emit for a name in a pytest run truncates the file (so
    re-running a benchmark replaces stale output); later emits for the
    same name append (multi-part tables like Table VII).
    """
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    mode = "a" if name in _emitted_this_run else "w"
    _emitted_this_run.add(name)
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n\n")
