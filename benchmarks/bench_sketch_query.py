"""Greedy selection loop: arena-backed query path vs the pre-arena one.

PR 4 made the cold sketch *build* array-native; this benchmark times
the other half of Algorithm 2's life — the per-selection rebase + gains
sweep inside the CELF greedy loop, the hot path of every ``block``
query the service answers.  Both sides run the same greedy
(:func:`repro.core.advanced_greedy.lazy_blocking`) over the **same
pooled samples** and must produce bit-identical blocker sets, gains
and spread estimates; they differ only in the sketch view layout:

* **legacy** — the pre-arena query path, preserved verbatim as
  ``SketchIndex(layout="legacy")``: Python lists of per-sample
  ``(order, sizes)`` arrays, one ``frozenset`` reachable set per
  sample, a Python touch scan over all ``theta`` samples per rebase,
  per-sample scatter updates, per-sample Python tree rebuilds;
* **arena** — ``SketchIndex(layout="arena")``: pooled tree arena +
  inverted membership index (vectorized touch detection, one batched
  delta scatter, one flat write-back) with touched trees rebuilt by
  the compiled batched kernel (:mod:`repro.native`) when the host has
  a C compiler, the Python path otherwise.

A rebase microbench row isolates one representative blocker-set
transition (first pick's rebase + whole-candidate sweep) from the
CELF machinery around it.

Timing excludes sampling (shared pool) and is a same-process
Python-vs-Python ratio, so machine speed cancels.  The acceptance
bar: on the 10k-vertex WC graph at theta=1000 the arena selection
loop must be >= 5x faster end-to-end.  ``--json PATH`` writes
``BENCH_sketch_query.json``; CI gates ``select_speedup_vs_legacy``
against the committed baseline via
``benchmarks/check_bench_regression.py`` (report kind auto-detected;
an identity failure is a hard fail regardless of tolerance).

Run standalone::

    python benchmarks/bench_sketch_query.py --n 2000 --theta 150 \\
        --no-check
    python benchmarks/bench_sketch_query.py --json BENCH_sketch_query.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import format_table, pick_seeds
from repro.core.advanced_greedy import lazy_blocking
from repro.engine import SketchIndex
from repro.engine.pool import SamplePool
from repro.graph import barabasi_albert, CSRGraph
from repro.models import assign_weighted_cascade
from repro.native import native_build_available
from repro.obs import new_trace, use_trace

try:  # pytest package context vs standalone script
    from .conftest import emit
except ImportError:  # pragma: no cover - script mode
    def emit(name: str, text: str) -> None:
        print(text)

RESULT_FILE = "sketch_query"
JSON_SCHEMA = 1
TARGET_SPEEDUP = 5.0


def run_query_benchmark(
    n: int = 10_000,
    attach: int = 5,
    theta: int = 1000,
    num_seeds: int = 10,
    budget: int = 20,
    rng: int = 7,
    repeats: int = 2,
) -> dict[str, object]:
    """Time the greedy selection loop under both view layouts."""
    graph = assign_weighted_cascade(barabasi_albert(n, attach, rng=rng))
    seeds = pick_seeds(graph, num_seeds, rng=rng)
    csr = CSRGraph(graph)
    pool = SamplePool(csr, rng=rng)
    pool.get(theta)  # shared samples: excluded from every timing

    def once(layout: str):
        with SketchIndex(csr, pool=pool, layout=layout) as index:
            start = time.perf_counter()
            index.expected_spread(seeds, theta)
            t_cold = time.perf_counter() - start
            start = time.perf_counter()
            result = lazy_blocking(graph, seeds, budget, theta, index)
            t_select = time.perf_counter() - start
            # one representative transition on a fresh warm view: the
            # top pick's rebase plus the whole-candidate gains sweep
            with SketchIndex(csr, pool=pool, layout=layout) as fresh:
                fresh.expected_spread(seeds, theta)
                start = time.perf_counter()
                fresh.decrease_estimates(
                    seeds, theta, [result.blockers[0]]
                )
                t_rebase = time.perf_counter() - start
            return t_cold, t_select, t_rebase, result

    measurements: dict[str, dict[str, float]] = {}
    results: dict[str, object] = {}
    phases: dict[str, dict] = {}
    for layout in ("legacy", "arena"):
        best = {"cold": float("inf"), "select": float("inf"),
                "rebase": float("inf")}
        for _ in range(max(1, repeats)):
            # per-phase span breakdown (sketch.build / rebase / gains /
            # treebuild ...) of one full repeat, attached to the report
            trace = new_trace()
            with use_trace(trace):
                t_cold, t_select, t_rebase, result = once(layout)
            best["cold"] = min(best["cold"], t_cold)
            best["select"] = min(best["select"], t_select)
            best["rebase"] = min(best["rebase"], t_rebase)
            results[layout] = result
        measurements[layout] = best
        phases[layout] = trace.summary()

    legacy, arena = results["legacy"], results["arena"]
    identical = (
        legacy.blockers == arena.blockers
        and legacy.round_deltas == arena.round_deltas
        and legacy.estimated_spread == arena.estimated_spread
    )
    return {
        "n": n,
        "m": csr.m,
        "theta": theta,
        "budget": budget,
        "picked": len(arena.blockers),
        "legacy": measurements["legacy"],
        "arena": measurements["arena"],
        "select_speedup": (
            measurements["legacy"]["select"]
            / measurements["arena"]["select"]
        ),
        "rebase_speedup": (
            measurements["legacy"]["rebase"]
            / measurements["arena"]["rebase"]
        ),
        "cold_speedup": (
            measurements["legacy"]["cold"] / measurements["arena"]["cold"]
        ),
        "identical": identical,
        "native": native_build_available(),
        "phases": phases,
    }


def render(r: dict[str, object]) -> str:
    rows = [
        [
            phase,
            f"{1e3 * r['legacy'][key]:.1f}",
            f"{1e3 * r['arena'][key]:.1f}",
            f"{r[speed]:.1f}x",
        ]
        for phase, key, speed in (
            ("cold view build", "cold", "cold_speedup"),
            (f"greedy selection (budget {r['budget']})", "select",
             "select_speedup"),
            ("single rebase + gains sweep", "rebase", "rebase_speedup"),
        )
    ]
    verdict = "PASS" if r["select_speedup"] >= TARGET_SPEEDUP else "FAIL"
    summary = (
        f"selections bit-identical: {r['identical']}; "
        f"native kernel: {r['native']}; picked {r['picked']} blockers\n"
        f"selection-loop speedup vs pre-arena path: "
        f"{r['select_speedup']:.1f}x "
        f"(>= {TARGET_SPEEDUP:.0f}x target: {verdict})"
    )
    table = format_table(
        ["phase", "legacy ms", "arena ms", "speedup"],
        rows,
        title=(
            f"sketch query path (n={r['n']}, WC model, "
            f"theta={r['theta']})"
        ),
    )
    return f"{table}\n{summary}"


def to_json(result: dict[str, object], params: dict) -> dict:
    """The ``BENCH_sketch_query.json`` document (see module docstring)."""
    return {
        "schema": JSON_SCHEMA,
        "params": params,
        "legacy_select_s": round(float(result["legacy"]["select"]), 6),
        "arena_select_s": round(float(result["arena"]["select"]), 6),
        "legacy_rebase_s": round(float(result["legacy"]["rebase"]), 6),
        "arena_rebase_s": round(float(result["arena"]["rebase"]), 6),
        "legacy_cold_s": round(float(result["legacy"]["cold"]), 6),
        "arena_cold_s": round(float(result["arena"]["cold"]), 6),
        "select_speedup_vs_legacy": round(
            float(result["select_speedup"]), 3
        ),
        "rebase_speedup_vs_legacy": round(
            float(result["rebase_speedup"]), 3
        ),
        "cold_speedup_vs_legacy": round(float(result["cold_speedup"]), 3),
        "identical": bool(result["identical"]),
        "native": bool(result["native"]),
        # per-layout {span: {count, total_ms}} from the last repeat —
        # extra keys are ignored by check_bench_regression.py
        "phases": result["phases"],
    }


def test_sketch_query(benchmark):
    """pytest-benchmark entry, full acceptance size."""
    result = benchmark.pedantic(
        lambda: run_query_benchmark(n=10_000, theta=1000),
        rounds=1,
        iterations=1,
    )
    emit(RESULT_FILE, render(result))
    assert result["identical"]
    assert result["select_speedup"] >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=5)
    parser.add_argument("--theta", type=int, default=1000)
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--budget", type=int, default=20)
    parser.add_argument("--rng", type=int, default=7)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timings per layout; the best is reported (default: 2)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable BENCH_sketch_query.json",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help=(
            "report but never fail on the speedup target (for smoke "
            "runs at sizes the acceptance bar was not defined for)"
        ),
    )
    args = parser.parse_args(argv)
    result = run_query_benchmark(
        n=args.n,
        attach=args.attach,
        theta=args.theta,
        num_seeds=args.seeds,
        budget=args.budget,
        rng=args.rng,
        repeats=args.repeats,
    )
    emit(RESULT_FILE, render(result))
    if args.json is not None:
        params = {
            "n": args.n,
            "attach": args.attach,
            "theta": args.theta,
            "seeds": args.seeds,
            "budget": args.budget,
            "rng": args.rng,
            "repeats": args.repeats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(result, params), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if not result["identical"]:
        print("FAIL: arena selection diverges from the legacy path")
        return 1
    if not args.no_check and result["select_speedup"] < TARGET_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
