"""Figure 10: GR running time vs number of seeds (TR model).

The paper fixes b = 100 and grows |S| from 1 to 1000, observing that
runtime grows sub-linearly in the seed count (the sampled-graph size,
not the seed count, drives the cost).  We sweep a scaled seed ladder on
every stand-in and report the runtime growth ratio, expecting it to
stay far below the seed-count growth ratio.
"""

from __future__ import annotations

import time

from repro.bench import format_table, pick_seeds, prepare_graph
from repro.core import greedy_replace
from repro.datasets import dataset_keys, load_dataset

from .conftest import bench_scale, bench_theta, emit

SEED_COUNTS = (1, 10, 100)
BUDGET = 20
MODEL = "tr"
RESULT_FILE = "fig10_seeds_tr"
FIGURE = "Figure 10"


def run_seed_sweep() -> list[list[object]]:
    rows = []
    for key in dataset_keys():
        graph = prepare_graph(
            load_dataset(key, bench_scale()), MODEL, rng=81
        )
        times = []
        for count in SEED_COUNTS:
            seeds = pick_seeds(graph, count, rng=81)
            start = time.perf_counter()
            greedy_replace(
                graph, seeds, BUDGET, theta=bench_theta(), rng=82
            )
            times.append(time.perf_counter() - start)
        growth = times[-1] / max(times[0], 1e-9)
        rows.append([key, *(round(t, 3) for t in times), round(growth, 2)])
    return rows


def test_fig10_seeds_tr(benchmark):
    rows = benchmark.pedantic(run_seed_sweep, rounds=1, iterations=1)
    seed_growth = SEED_COUNTS[-1] / SEED_COUNTS[0]
    table = format_table(
        [
            "dataset",
            *(f"t(s) |S|={c}" for c in SEED_COUNTS),
            f"time growth (seeds grew {seed_growth:.0f}x)",
        ],
        rows,
        title=(
            f"{FIGURE} — GR running time vs number of seeds "
            f"({MODEL.upper()} model, b={BUDGET})"
        ),
    )
    emit(RESULT_FILE, table)
