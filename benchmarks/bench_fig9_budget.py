"""Figure 9: running time vs budget (Facebook and DBLP stand-ins).

The paper sweeps the budget and observes (i) AG/GR orders of magnitude
below BG, (ii) AG's time growing with b while GR's replacement phase
with early termination can make GR *cheaper* than AG at large budgets.
We sweep budgets on both stand-ins under both models with AG and GR
(BG is covered by Figures 7/8 and would dominate the wall-clock here).
"""

from __future__ import annotations

import time

from repro.bench import format_series, pick_seeds, prepare_graph
from repro.core import advanced_greedy, greedy_replace
from repro.datasets import load_dataset

from .conftest import bench_scale, bench_theta, emit

BUDGETS = (1, 5, 10, 20, 40)
NUM_SEEDS = 10


def run_budget_sweep(dataset: str, model: str) -> dict[str, list[float]]:
    graph = prepare_graph(
        load_dataset(dataset, bench_scale()), model, rng=71
    )
    seeds = pick_seeds(graph, NUM_SEEDS, rng=71)
    ag_times = []
    gr_times = []
    for budget in BUDGETS:
        start = time.perf_counter()
        advanced_greedy(graph, seeds, budget, theta=bench_theta(), rng=72)
        ag_times.append(round(time.perf_counter() - start, 3))
        start = time.perf_counter()
        greedy_replace(graph, seeds, budget, theta=bench_theta(), rng=73)
        gr_times.append(round(time.perf_counter() - start, 3))
    return {"AG (s)": ag_times, "GR (s)": gr_times}


def _emit(dataset: str, model: str, series: dict[str, list[float]]) -> None:
    emit(
        "fig9_budget",
        format_series(
            "budget",
            list(BUDGETS),
            series,
            title=(
                f"Figure 9 — running time vs budget "
                f"({dataset}, {model.upper()} model, |S|={NUM_SEEDS})"
            ),
        ),
    )


def test_fig9a_facebook_tr(benchmark):
    series = benchmark.pedantic(
        run_budget_sweep, args=("facebook", "tr"), rounds=1, iterations=1
    )
    _emit("facebook", "tr", series)


def test_fig9b_facebook_wc(benchmark):
    series = benchmark.pedantic(
        run_budget_sweep, args=("facebook", "wc"), rounds=1, iterations=1
    )
    _emit("facebook", "wc", series)


def test_fig9c_dblp_tr(benchmark):
    series = benchmark.pedantic(
        run_budget_sweep, args=("dblp", "tr"), rounds=1, iterations=1
    )
    _emit("dblp", "tr", series)


def test_fig9d_dblp_wc(benchmark):
    series = benchmark.pedantic(
        run_budget_sweep, args=("dblp", "wc"), rounds=1, iterations=1
    )
    _emit("dblp", "wc", series)
