"""Empirical checkers for the spread function's properties (Theorem 2).

Theorem 2: the blocked-spread function ``f(B) = E(S, G[V \\ B])`` is
monotone (non-increasing in ``B``) and **not** supermodular.  The
checkers here verify monotonicity on concrete instances and search for
supermodularity violations, which tests exercise both on the paper's
Figure 1 counterexample and on random graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..spread import exact_expected_spread

__all__ = [
    "check_monotonicity",
    "find_supermodularity_violation",
    "SupermodularityViolation",
]


def check_monotonicity(
    graph: DiGraph,
    seeds: Sequence[int],
    blocker_chain: Sequence[Sequence[int]],
    tolerance: float = 1e-9,
) -> bool:
    """True iff spread is non-increasing along a chain of blocker sets.

    ``blocker_chain`` must be ordered by inclusion (each set a superset
    of the previous); spread is evaluated exactly.
    """
    previous = None
    for blockers in blocker_chain:
        spread = exact_expected_spread(graph, seeds, blocked=blockers)
        if previous is not None and spread > previous + tolerance:
            return False
        previous = spread
    return True


class SupermodularityViolation:
    """Witness that ``f(B) = E(S, G[V \\ B])`` is not supermodular.

    Supermodularity would require
    ``f(X + x) - f(X) <= f(Y + x) - f(Y)`` for all ``X ⊆ Y`` and
    ``x ∉ Y``; the witness stores sets and values with the inequality
    reversed.
    """

    def __init__(
        self,
        smaller: tuple[int, ...],
        larger: tuple[int, ...],
        vertex: int,
        marginal_small: float,
        marginal_large: float,
    ):
        self.smaller = smaller
        self.larger = larger
        self.vertex = vertex
        self.marginal_small = marginal_small
        self.marginal_large = marginal_large

    def __repr__(self) -> str:
        return (
            f"SupermodularityViolation(X={self.smaller}, Y={self.larger}, "
            f"x={self.vertex}, f(X+x)-f(X)={self.marginal_small:.4f} > "
            f"f(Y+x)-f(Y)={self.marginal_large:.4f})"
        )


def find_supermodularity_violation(
    graph: DiGraph,
    seeds: Sequence[int],
    max_set_size: int = 2,
    tolerance: float = 1e-9,
    rng: RngLike = None,
    max_checks: int = 20000,
) -> SupermodularityViolation | None:
    """Search for a supermodularity violation by exhaustive/randomised
    enumeration of small ``X ⊆ Y`` pairs.  Returns the first witness or
    ``None``.  Spread is computed exactly, so keep the graph small."""
    gen = ensure_rng(rng)
    seed_set = set(seeds)
    pool = [v for v in graph.vertices() if v not in seed_set]
    cache: dict[frozenset[int], float] = {}

    def f(blockers: frozenset[int]) -> float:
        if blockers not in cache:
            cache[blockers] = exact_expected_spread(
                graph, list(seeds), blocked=blockers
            )
        return cache[blockers]

    checks = 0
    for y_size in range(1, max_set_size + 1):
        y_sets = list(combinations(pool, y_size))
        gen.shuffle(y_sets)
        for y in y_sets:
            y_fs = frozenset(y)
            for x_size in range(y_size):
                for x in combinations(y, x_size):
                    x_fs = frozenset(x)
                    for vertex in pool:
                        if vertex in y_fs:
                            continue
                        checks += 1
                        if checks > max_checks:
                            return None
                        gain_small = f(x_fs | {vertex}) - f(x_fs)
                        gain_large = f(y_fs | {vertex}) - f(y_fs)
                        if gain_small > gain_large + tolerance:
                            return SupermodularityViolation(
                                tuple(sorted(x_fs)),
                                tuple(sorted(y_fs)),
                                vertex,
                                gain_small,
                                gain_large,
                            )
    return None
