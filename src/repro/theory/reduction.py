"""The DKS -> IMIN reduction behind Theorems 1 and 3.

The paper proves NP-hardness (and APX-hardness) of influence
minimization by reducing the densest k-subgraph problem: given an
undirected graph ``H`` and integer ``k``, build an IMIN instance whose
optimal blocker set of size ``k`` identifies the densest k-subgraph
(Figure 2).  This module makes the construction executable — it is used
by tests that verify the equivalence on small instances, and by an
example that demonstrates the hardness argument end to end.

Construction: one seed ``S``; a ``C`` vertex per DKS vertex with an
edge ``S -> c_i``; a ``D`` vertex per DKS edge with edges from both
endpoint ``C`` vertices; all probabilities 1.  Blocking ``A ⊆ C`` with
``|A| = k`` yields spread ``1 + (n - k) + (m - g)`` where ``g`` is the
number of DKS edges inside ``A`` — minimum spread == densest subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from ..graph import DiGraph

__all__ = [
    "DKSInstance",
    "ReducedInstance",
    "reduce_dks_to_imin",
    "densest_k_subgraph_bruteforce",
    "imin_spread_for_blockers",
]


@dataclass(frozen=True)
class DKSInstance:
    """A densest-k-subgraph instance: undirected edges over ``n``
    vertices and the subgraph size ``k``."""

    n: int
    edges: tuple[tuple[int, int], ...]
    k: int

    def __post_init__(self) -> None:
        if not 0 < self.k <= self.n:
            raise ValueError("need 0 < k <= n")
        for u, v in self.edges:
            if u == v or not (0 <= u < self.n and 0 <= v < self.n):
                raise ValueError(f"bad DKS edge ({u}, {v})")


@dataclass(frozen=True)
class ReducedInstance:
    """The IMIN instance produced by the reduction.

    ``c_vertex[i]`` is the IMIN vertex for DKS vertex ``i``;
    ``d_vertex[j]`` the IMIN vertex for DKS edge ``j``; ``seed`` the
    single seed; ``budget`` equals ``k``.
    """

    graph: DiGraph
    seed: int
    budget: int
    c_vertex: tuple[int, ...]
    d_vertex: tuple[int, ...]
    dks: DKSInstance

    def blockers_for(self, dks_vertices: Sequence[int]) -> list[int]:
        """IMIN blockers corresponding to a DKS vertex subset."""
        return [self.c_vertex[i] for i in dks_vertices]

    def spread_if_blocking(self, dks_vertices: Sequence[int]) -> float:
        """Closed-form spread when blocking the given ``C`` vertices
        (all probabilities are 1, so the spread is a reach count)."""
        return imin_spread_for_blockers(self, self.blockers_for(dks_vertices))


def reduce_dks_to_imin(dks: DKSInstance) -> ReducedInstance:
    """Build the Figure 2 construction for a DKS instance."""
    n, m = dks.n, len(dks.edges)
    graph = DiGraph(1 + n + m)
    seed = 0
    c_vertex = tuple(range(1, 1 + n))
    d_vertex = tuple(range(1 + n, 1 + n + m))
    for c in c_vertex:
        graph.add_edge(seed, c, 1.0)
    for j, (u, v) in enumerate(dks.edges):
        graph.add_edge(c_vertex[u], d_vertex[j], 1.0)
        graph.add_edge(c_vertex[v], d_vertex[j], 1.0)
    return ReducedInstance(
        graph=graph,
        seed=seed,
        budget=dks.k,
        c_vertex=c_vertex,
        d_vertex=d_vertex,
        dks=dks,
    )


def imin_spread_for_blockers(
    reduced: ReducedInstance, blockers: Sequence[int]
) -> float:
    """Deterministic spread of the reduced instance (probabilities 1)."""
    blocked = set(blockers)
    if reduced.seed in blocked:
        raise ValueError("the seed cannot be blocked")
    active = 1  # the seed
    blocked_c = set()
    for i, c in enumerate(reduced.c_vertex):
        if c in blocked:
            blocked_c.add(i)
        else:
            active += 1
    for j, (u, v) in enumerate(reduced.dks.edges):
        if reduced.d_vertex[j] in blocked:
            continue
        if u in blocked_c and v in blocked_c:
            continue  # unreachable: both in-neighbours blocked
        active += 1
    return float(active)


def densest_k_subgraph_bruteforce(
    dks: DKSInstance,
) -> tuple[tuple[int, ...], int]:
    """Optimal DKS solution by exhaustive search (test oracle).

    Returns ``(vertex_subset, edges_inside)``.
    """
    best: tuple[int, ...] = ()
    best_edges = -1
    for subset in combinations(range(dks.n), dks.k):
        inside = set(subset)
        count = sum(
            1 for u, v in dks.edges if u in inside and v in inside
        )
        if count > best_edges:
            best = subset
            best_edges = count
    return best, best_edges
