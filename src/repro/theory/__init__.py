"""Executable hardness constructions and property checkers."""

from .properties import (
    check_monotonicity,
    find_supermodularity_violation,
    SupermodularityViolation,
)
from .reduction import (
    densest_k_subgraph_bruteforce,
    DKSInstance,
    imin_spread_for_blockers,
    reduce_dks_to_imin,
    ReducedInstance,
)

__all__ = [
    "DKSInstance",
    "ReducedInstance",
    "reduce_dks_to_imin",
    "imin_spread_for_blockers",
    "densest_k_subgraph_bruteforce",
    "check_monotonicity",
    "find_supermodularity_violation",
    "SupermodularityViolation",
]
