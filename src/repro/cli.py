"""Command-line interface: ``repro-imin`` / ``python -m repro.cli``.

Subcommands
-----------
``datasets``
    List the built-in dataset stand-ins with paper vs stand-in stats.
``block``
    Run a blocking algorithm on a dataset and print blockers + spread.
``spread``
    Estimate the expected spread of a seed set (optionally blocked).
``serve``
    Run the long-lived blocker-query service (``repro.service``).
``query``
    Send one request to a running service and print the JSON reply.
``update``
    Apply a batched graph delta (insert/delete/reweight edges) to a
    running service's warm artifact — patched in place, not rebuilt.
``profile``
    Sample a running service's wall-clock for a few seconds and write
    the collapsed stacks (flamegraph.pl / speedscope input).

Examples
--------
::

    repro-imin datasets
    repro-imin block --dataset email-core --model tr --budget 10 \\
        --algorithm gr --theta 200 --seeds 5 --rng 7
    repro-imin spread --dataset facebook --model wc --seeds 3 --rng 1
    repro-imin serve --port 7727 &
    repro-imin query block --graph toy --budget 2
    repro-imin update --graph toy --insert 0:5:0.3 --delete 1:2 --seq 1
    repro-imin query shutdown
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time

from .bench import evaluate_spread, pick_seeds, prepare_graph
from .core import ALGORITHMS, solve_imin
from .datasets import DATASETS, load_dataset
from .engine import BACKENDS, build_evaluator, EngineSpec
from .sampling import estimate_spread_sampled, resolve_theta

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-imin",
        description=(
            "Influence minimization via vertex blocking (ICDE 2023 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in dataset stand-ins")

    block = sub.add_parser("block", help="select blockers on a dataset")
    _common_args(block)
    block.add_argument(
        "--algorithm",
        choices=ALGORITHMS + ("ag", "gr", "bg", "rand", "outdeg"),
        default="greedy-replace",
        help="blocking algorithm (default: greedy-replace)",
    )
    block.add_argument(
        "--budget", type=int, default=10, help="max blockers b"
    )
    block.add_argument(
        "--theta",
        type=int,
        default=None,
        help=(
            "sampled graphs per round for ag/gr (default 200; "
            "alternatively derive it from --eps/--ell)"
        ),
    )
    block.add_argument(
        "--mcs-rounds",
        type=int,
        default=200,
        help="Monte-Carlo rounds per evaluation for bg",
    )

    spread = sub.add_parser("spread", help="estimate expected spread")
    _common_args(spread)
    spread.add_argument(
        "--theta",
        type=int,
        default=None,
        help=(
            "sampled graphs (default 2000; alternatively derive it "
            "from --eps/--ell)"
        ),
    )
    spread.add_argument(
        "--block",
        type=int,
        nargs="*",
        default=[],
        help="vertex ids to block before estimating",
    )

    experiment = sub.add_parser(
        "experiment",
        help="reproduce one of the paper's tables/figures",
    )
    experiment.add_argument(
        "key",
        nargs="?",
        default=None,
        help="experiment id (omit to list all)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived blocker-query service (repro.service)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 7727; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor for the registered dataset stand-ins",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=8,
        help="max resident warm artifacts (LRU beyond; default: 8)",
    )
    serve.add_argument(
        "--cache-mb", type=float, default=None,
        help="max resident sample-pool megabytes (LRU beyond)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help=(
            "persist sample pools here so evicted artifacts rehydrate "
            "from disk (mmapped)"
        ),
    )
    serve.add_argument(
        "--build-workers", type=int, default=None,
        help=(
            "worker processes for each artifact's batched sketch-tree "
            "builds (default: serial; answers are bit-identical either "
            "way)"
        ),
    )
    serve.add_argument(
        "--edge-list",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help=(
            "register a SNAP edge-list file (.gz accepted) under NAME; "
            "repeatable"
        ),
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help=(
            "also serve Prometheus metrics over HTTP on this port "
            "(GET /metrics; 0 binds an ephemeral port). The JSON "
            "protocol's `metrics` op exposes the same registry"
        ),
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help=(
            "emit structured request logs: one JSON object per event "
            "on stderr (trace_id, op, graph, duration_ms)"
        ),
    )
    serve.add_argument(
        "--max-pending", type=int, default=None,
        help=(
            "per-artifact executor queue bound: queries beyond it are "
            "rejected with error code `overloaded` instead of queueing "
            "without bound (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--profile-hz", type=float, default=None,
        help=(
            "arm the sampling wall-clock profiler from boot at this "
            "rate (collapsed stacks via the `profile` op / "
            "`repro-imin profile`; default: off)"
        ),
    )
    serve.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "declare a latency/error SLO (repeatable): p99=250ms, "
            "p95=1s@2m, error_rate=1%%. Burn rates are exported as "
            "repro_slo_* gauges and under `query stats`"
        ),
    )
    serve.add_argument(
        "--serve-workers", type=int, default=None,
        help=(
            "run the sharded topology: an asyncio front end routing "
            "each graph to one of N worker processes (stable hash of "
            "the graph name). Coalescing, single-flight builds and "
            "LRU accounting stay shard-local; --max-pending becomes "
            "the front end's global admission bound (default: one "
            "threaded process, no front end)"
        ),
    )
    serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help=(
            "persist per-artifact access counts here on drain; the "
            "next --serve-workers start prewarms the hottest keys "
            "from it before traffic arrives"
        ),
    )
    serve.add_argument(
        "--slow-ms", type=float, default=1000.0,
        help=(
            "slow-query threshold in milliseconds; slower requests are "
            "logged with their per-phase breakdown and kept in the "
            "slow-query ring visible under `query stats` "
            "(default: 1000)"
        ),
    )

    query = sub.add_parser(
        "query",
        help="send one request to a running service, print the JSON reply",
    )
    query.add_argument(
        "op",
        choices=(
            "ping", "graphs", "stats", "metrics", "warm", "spread",
            "block", "shutdown",
        ),
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument(
        "--port", type=int, default=None,
        help="TCP port of the service (default: 7727)",
    )
    query.add_argument(
        "--timeout", type=float, default=60.0,
        help="socket timeout in seconds (default: 60)",
    )
    query.add_argument("--graph", default=None, help="registered graph name")
    query.add_argument("--model", choices=("tr", "wc"), default=None)
    query.add_argument("--theta", type=int, default=None)
    query.add_argument(
        "--layout", choices=("arena", "legacy"), default=None,
        help="sketch view layout of the artifact (default: arena)",
    )
    query.add_argument(
        "--seed", type=int, default=None,
        help="artifact seed: keys the samples and the TR assignment",
    )
    query.add_argument(
        "--seeds", type=int, nargs="*", default=None,
        help="explicit seed vertex ids (default: server-picked)",
    )
    query.add_argument(
        "--num-seeds", type=int, default=None,
        help="how many seeds the server should pick",
    )
    query.add_argument(
        "--blocked", type=int, nargs="*", default=None,
        help="blocked vertex ids (spread op)",
    )
    query.add_argument("--budget", type=int, default=None)
    query.add_argument(
        "--algorithm", choices=ALGORITHMS, default=None,
        help="blocking algorithm (block op)",
    )
    query.add_argument(
        "--rng", type=int, default=None,
        help="algorithm RNG seed (block op; default: artifact seed)",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help=(
            "ask the server for this request's span breakdown (queue "
            "wait, artifact resolution, engine phases) and print it "
            "after the JSON reply"
        ),
    )
    query.add_argument(
        "--trace-id", default=None,
        help=(
            "client-chosen trace id to stamp on the request (default: "
            "server-assigned; always echoed in the reply)"
        ),
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help=(
            "after the op, also fetch the warm artifact's stats "
            "(sample-pool counters plus the sketch index's "
            "arena/postings gauges) and attach them to the printed "
            "reply; `query stats --graph NAME` asks for them directly"
        ),
    )

    update = sub.add_parser(
        "update",
        help=(
            "apply a batched graph delta (insert/delete/reweight "
            "edges) to a running service's warm artifact"
        ),
    )
    update.add_argument("--host", default="127.0.0.1")
    update.add_argument(
        "--port", type=int, default=None,
        help="TCP port of the service (default: 7727)",
    )
    update.add_argument(
        "--timeout", type=float, default=60.0,
        help="socket timeout in seconds (default: 60)",
    )
    update.add_argument(
        "--graph", default=None, help="registered graph name"
    )
    update.add_argument("--model", choices=("tr", "wc"), default=None)
    update.add_argument("--theta", type=int, default=None)
    update.add_argument(
        "--layout", choices=("arena", "legacy"), default=None,
        help="sketch view layout of the artifact (default: arena)",
    )
    update.add_argument(
        "--seed", type=int, default=None,
        help="artifact seed: keys the samples and the TR assignment",
    )
    update.add_argument(
        "--insert", action="append", default=[], metavar="U:V:P",
        help="edge (u, v) to insert with probability p; repeatable",
    )
    update.add_argument(
        "--delete", action="append", default=[], metavar="U:V",
        help="edge (u, v) to remove; repeatable",
    )
    update.add_argument(
        "--reweight", action="append", default=[], metavar="U:V:P",
        help="existing edge whose probability becomes p; repeatable",
    )
    update.add_argument(
        "--seq", type=int, default=None,
        help=(
            "monotone sequence number for exactly-once delivery: the "
            "server applies each seq at most once and acknowledges a "
            "duplicate with applied=false, so resending after a "
            "dropped connection is safe"
        ),
    )

    profile = sub.add_parser(
        "profile",
        help=(
            "sample a running service's wall-clock and write the "
            "collapsed stacks (flamegraph.pl / speedscope input)"
        ),
    )
    profile.add_argument("--host", default="127.0.0.1")
    profile.add_argument(
        "--port", type=int, default=None,
        help="TCP port of the service (default: 7727)",
    )
    profile.add_argument(
        "--hz", type=float, default=None,
        help="sampling rate (default: the server's, 67 Hz)",
    )
    profile.add_argument(
        "--seconds", type=float, default=10.0,
        help="how long to sample before dumping (default: 10)",
    )
    profile.add_argument(
        "--output", default=None, metavar="FILE",
        help=(
            "write the collapsed stacks here (default: stdout); pipe "
            "into flamegraph.pl for the flamegraph"
        ),
    )
    profile.add_argument(
        "--limit", type=int, default=None,
        help="keep only the N hottest stacks",
    )
    profile.add_argument(
        "--keep-running",
        action="store_true",
        help=(
            "leave the server's profiler sampling after the dump "
            "(default: stop it)"
        ),
    )
    return parser


def _common_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--dataset",
        default="email-core",
        help="dataset key (see `repro-imin datasets`)",
    )
    sub.add_argument(
        "--model", choices=("tr", "wc"), default="tr",
        help="propagation probability model",
    )
    sub.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )
    sub.add_argument(
        "--seeds", type=int, default=10, help="number of random seeds"
    )
    sub.add_argument("--rng", type=int, default=42, help="random seed")
    sub.add_argument(
        "--engine",
        choices=BACKENDS,
        default="scalar",
        help=(
            "spread-evaluation backend (default: scalar, the exact "
            "historical behaviour; see repro.engine)"
        ),
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes: simulation chunks for --engine parallel, "
            "batched sketch-tree builds for --engine sketch (default: "
            "all cores / serial)"
        ),
    )
    sub.add_argument(
        "--sketch-layout",
        choices=("arena", "legacy"),
        default="arena",
        help=(
            "sketch view layout for --engine sketch: arena (pooled "
            "tree arena + inverted membership index, the fast query "
            "path; default) or legacy (per-sample reference layout); "
            "results are bit-identical either way"
        ),
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persist pooled samples and sketch arena artifacts here "
            "(--engine pooled/sketch): a rerun with the same "
            "dataset/model/rng re-attaches them memory-mapped instead "
            "of re-drawing and re-building"
        ),
    )
    sub.add_argument(
        "--eps",
        type=float,
        default=None,
        help=(
            "Theorem-5 relative estimation error; derives theta via "
            "required_samples (mutually exclusive with --theta)"
        ),
    )
    sub.add_argument(
        "--ell",
        type=float,
        default=1.0,
        help=(
            "Theorem-5 confidence exponent l (success probability "
            "1 - n^-l; only meaningful with --eps)"
        ),
    )
    sub.add_argument(
        "--max-theta",
        type=int,
        default=None,
        help="cap on the theta derived from --eps (the bound is "
        "conservative; Figure 5 shows quality is flat in theta)",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "block":
        return _cmd_block(args)
    if args.command == "spread":
        return _cmd_spread(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "update":
        return _cmd_update(args)
    if args.command == "profile":
        return _cmd_profile(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_datasets() -> int:
    print(
        f"{'key':<12}{'paper name':<12}{'directed':<10}"
        f"{'paper n':>10}{'paper m':>10}  description"
    )
    for info in DATASETS.values():
        print(
            f"{info.key:<12}{info.paper_name:<12}"
            f"{str(info.directed):<10}{info.paper_n:>10}{info.paper_m:>10}"
            f"  {info.description}"
        )
    return 0


def _load(args) -> tuple:
    graph = load_dataset(args.dataset, scale=args.scale)
    graph = prepare_graph(graph, args.model, rng=args.rng)
    seeds = pick_seeds(graph, args.seeds, rng=args.rng)
    return graph, seeds


def _resolve_theta(args, graph, default: int) -> int:
    """``--theta``/``--eps``/``--ell`` -> a concrete sample count.

    Mapped through :func:`repro.sampling.resolve_theta` (Theorem 5);
    prints the derived value so runs are reproducible from the log.
    """
    if args.eps is not None and args.theta is not None:
        print("error: pass either --theta or --eps, not both")
        raise SystemExit(2)
    if args.eps is None:
        return args.theta if args.theta is not None else default
    theta = resolve_theta(
        graph.n, epsilon=args.eps, ell=args.ell, max_theta=args.max_theta
    )
    print(
        f"theta={theta} from Theorem 5 "
        f"(eps={args.eps}, ell={args.ell}, n={graph.n})"
    )
    return theta


_SHORT_NAMES = {
    "ag": "advanced-greedy",
    "gr": "greedy-replace",
    "bg": "baseline-greedy",
    "rand": "random",
    "outdeg": "out-degree",
}


def _engine_spec(args, theta: int | None = None) -> EngineSpec:
    """The :class:`~repro.engine.EngineSpec` the CLI flags pin down."""
    return EngineSpec(
        engine=args.engine,
        model=args.model,
        theta=theta if theta is not None else 200,
        seed=args.rng,
        workers=args.workers,
        layout=getattr(args, "sketch_layout", "arena"),
        cache_dir=getattr(args, "cache_dir", None),
    )


def _make_engine(args, graph, stream: int = 0, theta: int | None = None):
    """The injected evaluator, or None for the historical default.

    A thin shell over :func:`repro.engine.build_evaluator` (shared
    with the serving layer) driven by one :class:`EngineSpec`, which
    owns the stream discipline: the selection loop and the final
    quality evaluation get independent RNG streams from ``--rng`` so
    they never share random worlds (with the pooled backend, sharing
    would score the winner on the very samples that selected it).
    """
    if args.workers is not None:
        if args.workers < 1:
            print("error: --workers must be >= 1")
            raise SystemExit(2)
        if args.engine not in ("parallel", "sketch"):
            print("error: --workers requires --engine parallel or sketch")
            raise SystemExit(2)
    if args.engine == "scalar":
        return None
    return build_evaluator(
        graph, _engine_spec(args, theta), stream=stream
    )


def _cmd_block(args) -> int:
    graph, seeds = _load(args)
    print(
        f"dataset={args.dataset} n={graph.n} m={graph.m} "
        f"model={args.model} seeds={seeds}"
    )
    algorithm = _SHORT_NAMES.get(args.algorithm, args.algorithm)
    theta = _resolve_theta(args, graph, default=200)
    with contextlib.ExitStack() as stack:
        selector = _make_engine(args, graph, stream=0, theta=theta)
        if selector is not None:
            stack.enter_context(selector)
        start = time.perf_counter()
        blockers = solve_imin(
            graph,
            seeds,
            args.budget,
            algorithm=algorithm,
            theta=theta,
            mcs_rounds=args.mcs_rounds,
            rng=args.rng,
            evaluator=selector,
        ).blockers
        elapsed = time.perf_counter() - start
        # final quality is judged by a separate evaluator stream so the
        # selection's random worlds are never reused to score their
        # winner
        judge = _make_engine(args, graph, stream=1, theta=theta)
        if judge is not None:
            stack.enter_context(judge)
        spread = evaluate_spread(
            graph, seeds, blockers, rng=args.rng, evaluator=judge
        )
        unblocked = evaluate_spread(
            graph, seeds, [], rng=args.rng, evaluator=judge
        )
    print(f"algorithm={args.algorithm} time={elapsed:.3f}s")
    print(f"blockers={sorted(blockers)}")
    print(
        f"expected spread: {unblocked:.3f} (unblocked) -> "
        f"{spread:.3f} (blocked)"
    )
    return 0


def _cmd_spread(args) -> int:
    graph, seeds = _load(args)
    blocked = [v for v in args.block if v not in set(seeds)]
    if len(blocked) != len(args.block):
        print("note: ignoring blocked ids that are seeds")
    print(
        f"dataset={args.dataset} n={graph.n} m={graph.m} "
        f"model={args.model} seeds={seeds} blocked={blocked}"
    )
    theta = _resolve_theta(args, graph, default=2000)
    evaluator = _make_engine(args, graph, theta=theta)
    if evaluator is not None:
        with evaluator:
            mean = evaluator.expected_spread(seeds, theta, blocked)
        print(
            f"expected spread = {mean:.3f} "
            f"(engine={args.engine}, rounds={theta})"
        )
        return 0
    estimate = estimate_spread_sampled(
        graph, seeds, theta=theta, rng=args.rng, blocked=blocked
    )
    low, high = estimate.confidence_interval()
    print(
        f"expected spread = {estimate.mean:.3f} "
        f"(95% CI [{low:.3f}, {high:.3f}], theta={estimate.theta})"
    )
    return 0


def _cmd_serve(args) -> int:
    from .obs import (
        EventLog,
        install_build_info,
        parse_slo,
        start_metrics_server,
    )
    from .service import (
        ArtifactCache,
        BlockerService,
        default_registry,
        DEFAULT_PORT,
        serve,
    )

    edge_pairs: list[tuple[str, str]] = []
    for spec in args.edge_list:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"error: --edge-list expects NAME=PATH, got {spec!r}")
            return 2
        edge_pairs.append((name, path))
    max_bytes = (
        None if args.cache_mb is None else int(args.cache_mb * 2**20)
    )
    if args.build_workers is not None and args.build_workers < 1:
        print("error: --build-workers must be >= 1")
        return 2
    if args.max_pending is not None and args.max_pending < 0:
        print("error: --max-pending must be >= 0")
        return 2
    try:
        slos = [parse_slo(spec) for spec in args.slo]
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if args.serve_workers is not None:
        return _cmd_serve_sharded(args, edge_pairs, max_bytes)
    registry = default_registry(scale=args.scale)
    for name, path in edge_pairs:
        registry.register_edge_list(name, path)
    cache = ArtifactCache(
        registry,
        max_entries=args.cache_entries,
        max_bytes=max_bytes,
        cache_dir=args.cache_dir,
        build_workers=args.build_workers,
    )
    log = EventLog(json_mode=args.log_json)
    try:
        service = BlockerService(
            registry=registry,
            cache=cache,
            log=log,
            slow_ms=args.slow_ms,
            max_pending=args.max_pending,
            profile_hz=args.profile_hz,
            slos=slos or None,
        )
    except ValueError as error:  # bad --profile-hz / duplicate --slo
        print(f"error: {error}")
        return 2
    install_build_info(service.metrics, worker="standalone")
    if args.profile_hz is not None:
        log.event("profiler_started", hz=args.profile_hz)
    for slo in slos:
        log.event("slo_declared", slo=slo.name, spec=slo.spec)
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = start_metrics_server(
            host=args.host,
            port=args.metrics_port,
            registry=service.metrics,
        )
        log.event(
            "metrics_listening",
            host=args.host,
            port=metrics_server.port,
        )
    port = DEFAULT_PORT if args.port is None else args.port
    server = serve(host=args.host, port=port, service=service)
    host, port = server.server_address[:2]
    print(f"repro.service listening on {host}:{port}", flush=True)
    log.event("listening", host=host, port=port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
    log.event("stopped")
    print("repro.service stopped")
    return 0


def _cmd_serve_sharded(
    args, edge_pairs: list[tuple[str, str]], max_bytes: int | None
) -> int:
    """``serve --serve-workers N``: the two-tier sharded topology.

    The listener process never loads a graph — each worker builds its
    own registry/cache from the picklable :class:`WorkerSpec`, and the
    ``--max-pending`` bound moves up to the front end where it caps
    in-flight queries across every shard.
    """
    from .obs import EventLog, start_metrics_server
    from .service import DEFAULT_PORT, ShardedFrontend, WorkerSpec

    if args.serve_workers < 1:
        print("error: --serve-workers must be >= 1")
        return 2
    log = EventLog(json_mode=args.log_json)
    spec = WorkerSpec(
        scale=args.scale,
        edge_lists=tuple(edge_pairs),
        cache_entries=args.cache_entries,
        cache_bytes=max_bytes,
        cache_dir=args.cache_dir,
        build_workers=args.build_workers,
        slow_ms=args.slow_ms,
        profile_hz=args.profile_hz,
        slo_specs=tuple(args.slo),
        log_json=args.log_json,
    )
    frontend = ShardedFrontend(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        workers=args.serve_workers,
        worker_spec=spec,
        max_pending=args.max_pending,
        access_log=args.access_log,
        log=log,
    )
    try:
        frontend.start()
    except (OSError, RuntimeError, ValueError) as error:
        print(f"error: {error}")
        return 1
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = start_metrics_server(
            host=args.host,
            port=args.metrics_port,
            registry=frontend.metrics,
            render_fn=frontend.render_metrics,
            health_fn=frontend.health,
        )
        log.event(
            "metrics_listening",
            host=args.host,
            port=metrics_server.port,
        )
    host, port = frontend.address
    print(f"repro.service listening on {host}:{port}", flush=True)
    log.event(
        "listening", host=host, port=port, workers=args.serve_workers
    )
    try:
        frontend.serve_forever()
    finally:
        frontend.shutdown()
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
    log.event("stopped")
    print("repro.service stopped")
    return 0


def _cmd_query(args) -> int:
    from .obs import format_trace
    from .service import DEFAULT_PORT, ServiceClient, ServiceError

    port = DEFAULT_PORT if args.port is None else args.port
    client = ServiceClient(args.host, port, timeout=args.timeout)
    params = {
        "graph": args.graph,
        "model": args.model,
        "theta": args.theta,
        "seed": args.seed,
        "layout": args.layout,
        "seeds": args.seeds,
        "num_seeds": args.num_seeds,
        "blocked": args.blocked,
        "budget": args.budget,
        "algorithm": args.algorithm,
        "rng": args.rng,
        "trace_id": args.trace_id,
        "trace": True if args.trace else None,
    }
    try:
        with client:
            response = client.request(args.op, **params)
            if args.stats and args.op != "stats" and response.get("ok"):
                # the per-artifact stats form: same key fields, never
                # builds server-side (peek-only)
                response["artifact_stats"] = client.request(
                    "stats",
                    artifact=True,
                    graph=args.graph,
                    model=args.model,
                    theta=args.theta,
                    seed=args.seed,
                ).get("result")
    except (OSError, ServiceError) as error:
        print(
            json.dumps(
                {"ok": False, "error": f"{error}"}, indent=2
            )
        )
        return 1
    if args.op == "metrics" and response.get("ok"):
        # exposition text, not JSON — print it raw for scrape parity
        print(response.get("result", ""), end="")
        return 0
    trace_dict = response.pop("trace", None)
    print(json.dumps(response, indent=2, sort_keys=True))
    if trace_dict is not None:
        print(format_trace(trace_dict))
    return 0 if response.get("ok") else 1


def _parse_edge(spec: str, with_prob: bool):
    """``U:V`` / ``U:V:P`` -> an edge tuple for the update op."""
    parts = spec.split(":")
    expected = 3 if with_prob else 2
    if len(parts) != expected:
        raise ValueError(
            f"expected {'U:V:P' if with_prob else 'U:V'}, got {spec!r}"
        )
    u, v = int(parts[0]), int(parts[1])
    return (u, v, float(parts[2])) if with_prob else (u, v)


def _cmd_update(args) -> int:
    """Round-trip the ``update`` op: one batched delta, one reply."""
    from .service import DEFAULT_PORT, ServiceClient, ServiceError

    try:
        inserts = [_parse_edge(s, True) for s in args.insert]
        deletes = [_parse_edge(s, False) for s in args.delete]
        reweights = [_parse_edge(s, True) for s in args.reweight]
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if not (inserts or deletes or reweights):
        print("error: pass at least one --insert/--delete/--reweight")
        return 2
    port = DEFAULT_PORT if args.port is None else args.port
    client = ServiceClient(args.host, port, timeout=args.timeout)
    try:
        with client:
            result = client.update(
                graph=args.graph,
                model=args.model,
                theta=args.theta,
                seed=args.seed,
                layout=args.layout,
                inserts=inserts or None,
                deletes=deletes or None,
                reweights=reweights or None,
                seq=args.seq,
            )
    except (OSError, ServiceError) as error:
        print(json.dumps({"ok": False, "error": f"{error}"}, indent=2))
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_profile(args) -> int:
    """Round-trip the `profile` op: start, sample, dump, (stop).

    The dump is collapsed-stack text — ``repro-imin profile --output
    prof.collapsed && flamegraph.pl prof.collapsed > prof.svg`` is the
    whole flamegraph workflow.
    """
    from .service import DEFAULT_PORT, ServiceClient, ServiceError

    if args.seconds <= 0:
        print("error: --seconds must be positive")
        return 2
    port = DEFAULT_PORT if args.port is None else args.port
    client = ServiceClient(args.host, port, timeout=args.seconds + 60.0)
    started_here = False
    try:
        with client:
            status = None
            if args.hz is None:
                try:
                    status = client.profile("status")
                except ServiceError:
                    status = None  # profiler never started on the server
            if status is None or not status.get("active"):
                client.profile("start", hz=args.hz)
                started_here = True
                print(
                    f"sampling {args.host}:{port} for "
                    f"{args.seconds:g}s ...",
                    file=sys.stderr,
                )
                time.sleep(args.seconds)
            dump = client.profile("dump", limit=args.limit)
            if started_here and not args.keep_running:
                client.profile("stop")
    except (OSError, ServiceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    collapsed = dump.pop("collapsed", "")
    print(
        "profile: "
        + " ".join(f"{k}={dump[k]}" for k in sorted(dump)),
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(collapsed + ("\n" if collapsed else ""))
        print(f"wrote {args.output}", file=sys.stderr)
    elif collapsed:
        print(collapsed)
    return 0


def _cmd_experiment(args) -> int:
    from .bench import experiment_command, EXPERIMENTS

    if args.key is None:
        print(f"{'key':<22}{'paper item':<12}description")
        for experiment in EXPERIMENTS.values():
            print(
                f"{experiment.key:<22}{experiment.paper_item:<12}"
                f"{experiment.description}"
            )
        print(
            "\nrun one with: repro-imin experiment <key>  "
            "(from the repository root)"
        )
        return 0
    try:
        command = experiment_command(args.key)
    except KeyError as error:
        print(error.args[0])
        return 2
    print("+", " ".join(command))
    import subprocess

    return subprocess.call(command)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
