"""Expected-spread computation: Monte-Carlo, exact, and sampled-graph."""

from .exact import (
    UncertainEdgeLimitError,
    exact_activation_probabilities,
    exact_expected_spread,
    exact_spread_dag,
)
from .montecarlo import (
    MonteCarloEngine,
    expected_spread_mcs,
    shared_engine,
    simulate_cascade,
)
from .temporal import (
    cascade_timeline,
    containment_report,
    ContainmentReport,
    expected_activation_curve,
)

__all__ = [
    "MonteCarloEngine",
    "simulate_cascade",
    "expected_spread_mcs",
    "shared_engine",
    "exact_activation_probabilities",
    "exact_expected_spread",
    "exact_spread_dag",
    "UncertainEdgeLimitError",
    "cascade_timeline",
    "expected_activation_curve",
    "containment_report",
    "ContainmentReport",
]
