"""Monte-Carlo simulation of the independent cascade model.

This is the spread oracle used by the BaselineGreedy state of the art
(Algorithm 1) and by the final-quality evaluation of every experiment
table.  One simulation round flips a coin per touched edge and counts
the activated vertices; the expected spread is the average count over
``rounds`` rounds (Kempe et al.'s classic estimator, Section V-B1).

Definition 3 nuance: the paper's ``E(S, G)`` counts *all* active
vertices — seeds included — which is what Example 1's value of 7.66 for
the toy graph implies.  We follow that convention everywhere.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, python_rng, RngLike

__all__ = [
    "MonteCarloEngine",
    "simulate_cascade",
    "expected_spread_mcs",
    "shared_engine",
]


class MonteCarloEngine:
    """Reusable Monte-Carlo IC simulator over a frozen CSR graph.

    The engine keeps version-stamped visit buffers so repeated
    ``expected_spread`` calls (the inner loop of BaselineGreedy) never
    reallocate.  Blocking is expressed per call via ``blocked`` ids.
    """

    def __init__(self, graph: DiGraph | CSRGraph, rng: RngLike = None):
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self._rand = python_rng(ensure_rng(rng))
        self._visit_mark = [0] * self.csr.n
        self._block_mark = [0] * self.csr.n
        self._stamp = 0

    def reseed(self, rng: RngLike = None) -> "MonteCarloEngine":
        """Reset the coin-flip stream, as a fresh engine would draw it.

        ``engine.reseed(s)`` then ``expected_spread(...)`` reproduces
        ``MonteCarloEngine(graph, s).expected_spread(...)`` exactly —
        what lets :func:`shared_engine` reuse buffers across calls
        without changing any fixed-seed result.
        """
        self._rand = python_rng(ensure_rng(rng))
        return self

    def simulate(
        self,
        seeds: Sequence[int],
        blocked: Iterable[int] = (),
    ) -> int:
        """One cascade round; returns the number of active vertices."""
        return self._run(list(seeds), list(blocked))

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Average active count over ``rounds`` independent cascades."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        seed_list = list(seeds)
        blocked_list = list(blocked)
        total = 0
        for _ in range(rounds):
            total += self._run(seed_list, blocked_list)
        return total / rounds

    def activation_frequencies(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """Per-vertex activation frequency estimate of ``P_G(x, S)``."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        counts = np.zeros(self.csr.n, dtype=np.int64)
        seed_list = list(seeds)
        blocked_list = list(blocked)
        for _ in range(rounds):
            for v in self._run_collect(seed_list, blocked_list):
                counts[v] += 1
        return counts / rounds

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prepare(self, seeds: list[int], blocked: list[int]) -> int:
        self._stamp += 1
        stamp = self._stamp
        block_mark = self._block_mark
        for v in blocked:
            block_mark[v] = stamp
        for s in seeds:
            if block_mark[s] == stamp:
                raise ValueError(f"seed {s} cannot be blocked")
        return stamp

    def _run(self, seeds: list[int], blocked: list[int]) -> int:
        stamp = self._prepare(seeds, blocked)
        visit = self._visit_mark
        block = self._block_mark
        indptr = self.csr.indptr_list
        indices = self.csr.indices_list
        probs = self.csr.probs_list
        rand = self._rand.random
        stack: list[int] = []
        active = 0
        for s in seeds:
            if visit[s] != stamp:
                visit[s] = stamp
                active += 1
                stack.append(s)
        while stack:
            u = stack.pop()
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                if (
                    visit[v] != stamp
                    and block[v] != stamp
                    and rand() < probs[j]
                ):
                    visit[v] = stamp
                    active += 1
                    stack.append(v)
        return active

    def _run_collect(self, seeds: list[int], blocked: list[int]) -> list[int]:
        stamp = self._prepare(seeds, blocked)
        visit = self._visit_mark
        block = self._block_mark
        indptr = self.csr.indptr_list
        indices = self.csr.indices_list
        probs = self.csr.probs_list
        rand = self._rand.random
        out: list[int] = []
        for s in seeds:
            if visit[s] != stamp:
                visit[s] = stamp
                out.append(s)
        head = 0
        while head < len(out):
            u = out[head]
            head += 1
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                if (
                    visit[v] != stamp
                    and block[v] != stamp
                    and rand() < probs[j]
                ):
                    visit[v] = stamp
                    out.append(v)
        return out


# ----------------------------------------------------------------------
# per-graph engine cache: the convenience wrappers below used to build
# a fresh engine — and re-freeze a fresh CSRGraph — on every call, which
# dominated benchmark loops.  Keyed weakly so graphs die normally.
# Entries remember the graph's mutation version so in-place edits
# (including pure probability reassignment) rebuild the engine.
# ----------------------------------------------------------------------
_ENGINE_CACHE: "weakref.WeakKeyDictionary[DiGraph, tuple[int, MonteCarloEngine]]" = (  # noqa: E501
    weakref.WeakKeyDictionary()
)


def shared_engine(
    graph: DiGraph | CSRGraph, rng: RngLike = None
) -> MonteCarloEngine:
    """The cached engine for ``graph``, reseeded with ``rng``.

    Cached per :class:`DiGraph`, invalidated by the graph's mutation
    ``version`` — any ``add_edge``/``remove_edge``/probability
    reassignment since caching rebuilds the frozen CSR.  ``CSRGraph``
    inputs are never cached: an engine holds a strong reference to its
    CSR, which would pin a weakly-keyed entry forever, and building an
    engine over an existing CSR is cheap anyway (no freeze).
    """
    if isinstance(graph, CSRGraph):
        return MonteCarloEngine(graph, rng)
    cached = _ENGINE_CACHE.get(graph)
    if cached is not None and cached[0] == graph.version:
        return cached[1].reseed(rng)
    engine = MonteCarloEngine(graph, rng)
    _ENGINE_CACHE[graph] = (graph.version, engine)
    return engine


def simulate_cascade(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rng: RngLike = None,
    blocked: Iterable[int] = (),
) -> int:
    """Convenience one-shot cascade; see :class:`MonteCarloEngine`."""
    return shared_engine(graph, rng).simulate(seeds, blocked)


def expected_spread_mcs(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rounds: int = 1000,
    rng: RngLike = None,
    blocked: Iterable[int] = (),
) -> float:
    """Monte-Carlo estimate of ``E(S, G[V \\ blocked])``.

    The paper uses ``r = 10000`` rounds on a C++ testbed; pure-Python
    callers typically pass 500–2000, which the Chernoff analysis in
    :mod:`repro.sampling.estimator` shows is adequate at our scales.

    Repeated calls on the same graph object reuse a cached engine (and
    its frozen CSR) via :func:`shared_engine`; fixed-seed results are
    identical to constructing a fresh engine per call.
    """
    return shared_engine(graph, rng).expected_spread(seeds, rounds, blocked)
