"""Temporal cascade analysis: who gets activated *when*.

The IC model's definition (Section III-A) is timestamped — seeds at
step 0, each new activation one step after its activator — but the
expected spread collapses the timeline.  Containment analysis often
needs the timeline back ("how fast does the rumor move, and how much
does blocking slow it down?"), so this module exposes it:

* :func:`cascade_timeline` — one simulation, newly activated vertices
  per timestep;
* :func:`expected_activation_curve` — Monte-Carlo average of the
  cumulative active count per timestep;
* :func:`containment_report` — blocked-vs-unblocked curve comparison
  with the step at which the cascades diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, python_rng, RngLike

__all__ = [
    "cascade_timeline",
    "expected_activation_curve",
    "ContainmentReport",
    "containment_report",
]


def cascade_timeline(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rng: RngLike = None,
    blocked: Iterable[int] = (),
) -> list[list[int]]:
    """One IC cascade as levels: ``result[t]`` = vertices activated at
    timestep ``t`` (``result[0]`` is the seed set)."""
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    rand = python_rng(rng).random
    indptr = csr.indptr_list
    indices = csr.indices_list
    probs = csr.probs_list
    banned = set(blocked)
    for s in seeds:
        if s in banned:
            raise ValueError(f"seed {s} cannot be blocked")

    active: set[int] = set()
    frontier: list[int] = []
    for s in seeds:
        if s not in active:
            active.add(s)
            frontier.append(s)
    levels = [list(frontier)]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                if v not in active and v not in banned and rand() < probs[j]:
                    active.add(v)
                    nxt.append(v)
        if not nxt:
            break
        levels.append(nxt)
        frontier = nxt
    return levels


def expected_activation_curve(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rounds: int = 1000,
    rng: RngLike = None,
    blocked: Iterable[int] = (),
    max_steps: int = 64,
) -> np.ndarray:
    """Expected cumulative active count per timestep.

    ``curve[t]`` is the expected number of active vertices after step
    ``t``; the curve is flat once cascades die out, and ``curve[-1]``
    converges to the expected spread.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    totals = np.zeros(max_steps + 1, dtype=np.float64)
    blocked_list = list(blocked)
    gen = ensure_rng(rng)  # one stream: each round draws fresh coins
    for _ in range(rounds):
        levels = cascade_timeline(csr, seeds, gen, blocked_list)
        cumulative = 0
        for t in range(max_steps + 1):
            if t < len(levels):
                cumulative += len(levels[t])
            totals[t] += cumulative
    return totals / rounds


@dataclass(frozen=True)
class ContainmentReport:
    """Side-by-side timeline of an outbreak with and without blocking."""

    unblocked_curve: np.ndarray
    blocked_curve: np.ndarray

    @property
    def final_reduction(self) -> float:
        """Fraction of the final spread removed by blocking."""
        final = self.unblocked_curve[-1]
        if final == 0:
            return 0.0
        return float(1.0 - self.blocked_curve[-1] / final)

    @property
    def divergence_step(self) -> int:
        """First timestep where blocking visibly bends the curve
        (difference exceeding 1% of the final unblocked spread);
        -1 if the curves never diverge."""
        threshold = 0.01 * max(float(self.unblocked_curve[-1]), 1e-9)
        gaps = self.unblocked_curve - self.blocked_curve
        for t, gap in enumerate(gaps.tolist()):
            if gap > threshold:
                return t
        return -1


def containment_report(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    blockers: Sequence[int],
    rounds: int = 1000,
    rng: RngLike = None,
    max_steps: int = 64,
) -> ContainmentReport:
    """Compare the activation curve with and without ``blockers``."""
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    gen = ensure_rng(rng)
    return ContainmentReport(
        unblocked_curve=expected_activation_curve(
            csr, seeds, rounds, gen, (), max_steps
        ),
        blocked_curve=expected_activation_curve(
            csr, seeds, rounds, gen, blockers, max_steps
        ),
    )
