"""Exact expected-spread computation by possible-world enumeration.

Computing IC spread exactly is #P-hard (Chen et al.), so exact methods
only work on small graphs — the paper cites Maehara et al.'s BDD method
for graphs with a few hundred edges and uses exact computation to
validate the Exact-vs-GR comparison (Tables V/VI).  Our implementation
enumerates the *uncertain* edges (probability strictly between 0 and 1):
each of the ``2^k`` live-edge worlds is weighted by its probability and
solved by plain reachability.  Deterministic edges (p == 1) are merged
once up front, so graphs like the paper's Figure 1 toy (3 uncertain
edges out of 10) cost only 8 reachability passes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..graph import DiGraph, reachable_set

__all__ = [
    "UncertainEdgeLimitError",
    "exact_activation_probabilities",
    "exact_expected_spread",
    "exact_spread_dag",
]

DEFAULT_MAX_UNCERTAIN_EDGES = 22


class UncertainEdgeLimitError(ValueError):
    """Raised when a graph has too many probabilistic edges to enumerate."""


def _split_edges(
    graph: DiGraph, blocked: set[int]
) -> tuple[list[tuple[int, int]], list[tuple[int, int, float]]]:
    """Partition edges into certain (p == 1) and uncertain (0 < p < 1).

    Edges with p == 0 and edges incident to blocked vertices are dropped
    outright: they can never carry influence.
    """
    certain: list[tuple[int, int]] = []
    uncertain: list[tuple[int, int, float]] = []
    for u, v, p in graph.edges():
        if u in blocked or v in blocked or p == 0.0:
            continue
        if p == 1.0:
            certain.append((u, v))
        else:
            uncertain.append((u, v, p))
    return certain, uncertain


def exact_activation_probabilities(
    graph: DiGraph,
    seeds: Sequence[int],
    blocked: Iterable[int] = (),
    max_uncertain_edges: int = DEFAULT_MAX_UNCERTAIN_EDGES,
) -> np.ndarray:
    """Exact ``P_G(x, S)`` for every vertex ``x`` (Definition 1).

    Raises :class:`UncertainEdgeLimitError` when more than
    ``max_uncertain_edges`` edges are probabilistic, since the cost is
    ``O(2^k * (n + m))``.
    """
    drop = set(blocked)
    seed_list = [s for s in seeds]
    for s in seed_list:
        if s in drop:
            raise ValueError(f"seed {s} cannot be blocked")

    certain, uncertain = _split_edges(graph, drop)
    k = len(uncertain)
    if k > max_uncertain_edges:
        raise UncertainEdgeLimitError(
            f"{k} uncertain edges exceed the limit of "
            f"{max_uncertain_edges}; use Monte-Carlo or sampled-graph "
            "estimation instead"
        )

    base = DiGraph(graph.n)
    for u, v in certain:
        base.add_edge(u, v)

    probabilities = np.zeros(graph.n, dtype=np.float64)
    for world in range(1 << k):
        weight = 1.0
        live = base.copy()
        for bit, (u, v, p) in enumerate(uncertain):
            if world >> bit & 1:
                weight *= p
                if not live.has_edge(u, v):
                    live.add_edge(u, v)
            else:
                weight *= 1.0 - p
        if weight == 0.0:
            continue
        for x in reachable_set(live, seed_list):
            probabilities[x] += weight
    return probabilities


def exact_expected_spread(
    graph: DiGraph,
    seeds: Sequence[int],
    blocked: Iterable[int] = (),
    max_uncertain_edges: int = DEFAULT_MAX_UNCERTAIN_EDGES,
) -> float:
    """Exact ``E(S, G[V \\ blocked])`` — the sum of activation
    probabilities over all vertices (Definition 3, seeds included)."""
    return float(
        exact_activation_probabilities(
            graph, seeds, blocked, max_uncertain_edges
        ).sum()
    )


def exact_spread_dag(
    graph: DiGraph,
    seed: int,
    blocked: Iterable[int] = (),
) -> float:
    """Exact expected spread on an *out-tree* in linear time.

    On a tree rooted at the seed there is exactly one path to each
    vertex, so ``P(x) = prod of p along the path`` and the spread is a
    single downward pass.  (On general DAGs path probabilities are not
    independent, hence the tree restriction — the name records that a
    tree is the only DAG shape with a closed form like this.)  Used by
    the optimal tree DP and its tests.
    """
    drop = set(blocked)
    if seed in drop:
        raise ValueError("seed cannot be blocked")
    for v in graph.vertices():
        if v != seed and graph.in_degree(v) > 1:
            raise ValueError(
                "exact_spread_dag requires an out-tree: vertex "
                f"{v} has in-degree {graph.in_degree(v)}"
            )
    total = 0.0
    stack: list[tuple[int, float]] = [(seed, 1.0)]
    while stack:
        u, prob = stack.pop()
        total += prob
        for v, p in graph.successors(u).items():
            if v not in drop:
                stack.append((v, prob * p))
    return total
