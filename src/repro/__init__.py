"""repro — influence minimization via vertex blocking.

A complete, from-scratch reproduction of

    Jiadong Xie, Fan Zhang, Kai Wang, Xuemin Lin, Wenjie Zhang.
    "Minimizing the Influence of Misinformation via Vertex Blocking."
    ICDE 2023 (arXiv:2302.13529).

Quick start
-----------
::

    from repro import assign_weighted_cascade, greedy_replace, evaluate_spread
    from repro.datasets import load_dataset
    from repro.bench import pick_seeds

    graph = assign_weighted_cascade(load_dataset("email-core"))
    seeds = pick_seeds(graph, 10, rng=7)
    result = greedy_replace(graph, seeds, budget=20, theta=200, rng=7)
    print(result.blockers, result.estimated_spread)

Package map
-----------
``repro.graph``
    Directed-graph substrate (adjacency + CSR), traversals, generators.
``repro.models``
    Propagation-probability assignment (TR/WC/...) and the triggering
    model (LT) extension.
``repro.spread``
    Monte-Carlo and exact expected-spread computation.
``repro.engine``
    The production spread-evaluation engine: vectorized batch
    kernels, a persistent (optionally disk-backed) live-edge sample
    pool, a multi-core executor with deterministic per-worker RNG
    streams, the dominator-tree sketch index (the paper's estimator
    as a persistent backend with O(1) marginal gains), and the
    pluggable ``SpreadEvaluator`` protocol the algorithms and
    benchmarks accept.
``repro.sampling``
    Live-edge sampled graphs, reachability statistics, Theorem 5
    sample-size bounds.
``repro.dominator``
    Lengauer–Tarjan, iterative and naive dominator trees.
``repro.core``
    The IMIN problem, Algorithms 1–4 (BaselineGreedy,
    DecreaseESComputation, AdvancedGreedy, GreedyReplace), heuristics,
    exhaustive Exact search and the optimal tree DP.
``repro.theory``
    Executable hardness reduction (Theorems 1/3) and property checkers
    (Theorem 2).
``repro.datasets``
    The Figure 1 toy graph, synthetic SNAP stand-ins, subgraph tools.
``repro.bench``
    Experiment harness shared by the ``benchmarks/`` suite.
``repro.service``
    The long-lived blocker-query service: named-graph registry, LRU
    cache of warm ``(SamplePool, SketchIndex)`` artifacts, threaded
    TCP/JSON-lines server with request coalescing, and the matching
    client (``repro-imin serve`` / ``repro-imin query``).
"""

from .core import (
    advanced_greedy,
    baseline_greedy,
    BlockingResult,
    decrease_es_computation,
    exact_blockers,
    greedy_replace,
    IMINInstance,
    optimal_tree_blockers,
    out_degree_blockers,
    out_neighbors_blockers,
    random_blockers,
    solve_imin,
    unify_seeds,
)
from .bench import evaluate_spread
from .dominator import DominatorTree, immediate_dominators
from .engine import (
    EngineSpec,
    make_evaluator,
    ParallelEvaluator,
    SamplePool,
    SketchIndex,
    SpreadEvaluator,
    VectorizedEvaluator,
)
from .graph import CSRGraph, DiGraph
from .models import (
    assign_constant,
    assign_trivalency,
    assign_uniform,
    assign_weighted_cascade,
    LinearThresholdSampler,
)
from .sampling import (
    estimate_spread_sampled,
    ICSampler,
    required_samples,
)
from .spread import (
    exact_activation_probabilities,
    exact_expected_spread,
    expected_spread_mcs,
    MonteCarloEngine,
    simulate_cascade,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "DiGraph",
    "CSRGraph",
    # probability models
    "assign_trivalency",
    "assign_weighted_cascade",
    "assign_constant",
    "assign_uniform",
    "LinearThresholdSampler",
    # spread computation
    "MonteCarloEngine",
    "simulate_cascade",
    "expected_spread_mcs",
    # the evaluation engine
    "SpreadEvaluator",
    "EngineSpec",
    "make_evaluator",
    "VectorizedEvaluator",
    "ParallelEvaluator",
    "SamplePool",
    "SketchIndex",
    "exact_expected_spread",
    "exact_activation_probabilities",
    "estimate_spread_sampled",
    "evaluate_spread",
    "ICSampler",
    "required_samples",
    # dominators
    "immediate_dominators",
    "DominatorTree",
    # the IMIN problem and algorithms
    "IMINInstance",
    "unify_seeds",
    "decrease_es_computation",
    "advanced_greedy",
    "greedy_replace",
    "baseline_greedy",
    "exact_blockers",
    "optimal_tree_blockers",
    "random_blockers",
    "out_degree_blockers",
    "out_neighbors_blockers",
    "solve_imin",
    "BlockingResult",
]
