"""repro.native — optional compiled kernels, loaded via ``ctypes``.

The sketch estimator's irreducible per-sample cost is the
Lengauer–Tarjan walk, which no amount of numpy vectorisation removes
(every step is data-dependent).  This package ships the batched
tree-build kernel as plain C (``lt_kernel.c``), compiled **on demand**
with whatever ``cc``/``gcc`` the host already has and loaded through
the standard library's ``ctypes`` — no build-time dependency, no
compiled artifact in the repository, and a clean fallback: when no
compiler is available (or ``REPRO_NATIVE=0`` is set) every caller uses
the pure-Python path and produces bit-identical results, just slower.

Compiled objects are cached under a per-user temp directory keyed by a
hash of the C source, so a source change triggers exactly one
recompile and concurrent processes race benignly (atomic rename).

The only consumer today is
:meth:`repro.engine.treebuild.TreeBuilder.build_packed`; anything else
wanting a native kernel should follow the same pattern: ship C next to
this file, add a loader entry, keep the Python path as the semantic
reference.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import stat
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from ..obs import global_registry

__all__ = [
    "native_build_available",
    "native_build_trees",
    "native_cache_dir",
]


def _count(name: str, help_text: str) -> None:
    """Bump a loader counter in the shared metrics registry — how the
    ops surface answers "did this process compile the kernel, reuse a
    cached object, or fall back to Python?" without log spelunking."""
    global_registry().counter(name, help_text).inc()

_SOURCE = Path(__file__).with_name("lt_kernel.c")

# resolved lazily, exactly once per process: None = not yet attempted,
# False = unavailable (no compiler / disabled / compile failed)
_lib: "ctypes.CDLL | bool | None" = None


def _disabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "1") in ("0", "false", "no")


def native_cache_dir() -> Path:
    """Directory holding compiled kernel objects (override with
    ``REPRO_NATIVE_CACHE``)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    if hasattr(os, "getuid"):
        tag = f"repro-native-{os.getuid()}"
    else:  # pragma: no cover - non-POSIX hosts
        tag = "repro-native"
    return Path(tempfile.gettempdir()) / tag


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _cache_dir_trusted(cache: Path) -> bool:
    """Refuse to trust (or load from) a cache dir another user could
    have planted: the default lives under the world-writable temp
    root, so a predictable path + digest would otherwise let a local
    attacker pre-seed a malicious ``.so`` for us to ``dlopen``."""
    try:
        st = os.lstat(cache)
    except OSError:
        return False
    if not stat.S_ISDIR(st.st_mode):
        return False
    if hasattr(os, "getuid"):
        if st.st_uid != os.getuid():
            return False
        if st.st_mode & 0o022:  # group/other writable
            return False
    return True


def _compile() -> Path | None:
    """Compile (or reuse) the kernel shared object; None on failure."""
    if not _SOURCE.is_file():
        return None
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = native_cache_dir()
    try:
        cache.mkdir(parents=True, exist_ok=True, mode=0o700)
    except OSError:
        return None
    if not _cache_dir_trusted(cache):
        return None
    so_path = cache / f"lt_kernel-{digest}-py{sys.version_info[0]}.so"
    if so_path.is_file():
        _count(
            "repro_native_compile_cache_hits_total",
            "Kernel loads served by an already-compiled shared object",
        )
        return so_path
    compiler = _compiler()
    if compiler is None:
        return None
    try:
        tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
        subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC",
             str(_SOURCE), "-o", str(tmp)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        tmp.replace(so_path)  # atomic: concurrent compiles race benignly
        _count(
            "repro_native_compiles_total",
            "On-demand compiles of the batched LT kernel",
        )
        return so_path
    except (OSError, subprocess.SubprocessError):
        _count(
            "repro_native_compile_failures_total",
            "Kernel compile attempts that failed (callers fall back)",
        )
        return None


_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _load() -> "ctypes.CDLL | bool":
    global _lib
    if _lib is None:
        _lib = False
        if not _disabled():
            so_path = _compile()
            if so_path is not None:
                try:
                    lib = ctypes.CDLL(str(so_path))
                    lib.repro_build_trees.restype = ctypes.c_int64
                    lib.repro_build_trees.argtypes = [
                        ctypes.c_int64,  # n
                        _I64P,  # indptr
                        _I64P,  # edge_dst
                        _I64P,  # positions
                        _I64P,  # offsets
                        _I64P,  # sample_idx
                        ctypes.c_int64,  # batch
                        _I64P,  # seeds
                        ctypes.c_int64,  # num_seeds
                        _U8P,  # blocked
                        _I64P,  # out_order
                        _I64P,  # out_sizes
                        _I64P,  # out_lengths
                    ]
                    _lib = lib
                except OSError:
                    _lib = False
    return _lib


def native_build_available() -> bool:
    """True when the compiled tree-build kernel is loadable here."""
    return _load() is not False


def native_build_trees(
    n: int,
    indptr: np.ndarray,
    edge_dst: np.ndarray,
    positions: np.ndarray,
    offsets: np.ndarray,
    sample_idx: np.ndarray,
    seeds: np.ndarray,
    blocked_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Batched ``(lengths, orders, sizes)`` dominator payloads, or
    ``None`` when the kernel is unavailable (callers fall back to the
    Python path — results are bit-identical either way).

    ``offsets``/``positions`` are the pool's flat sample arrays (no
    packing or copying: the kernel indexes the requested
    ``sample_idx`` windows directly); ``indptr`` is the base graph's
    CSR row-pointer array and ``blocked_mask`` a ``uint8[n]`` mask.
    Output arrays are trimmed to the written payload.
    """
    lib = _load()
    if lib is False:
        _count(
            "repro_native_fallbacks_total",
            "Batched tree builds answered by the pure-Python path",
        )
        return None
    _count(
        "repro_native_calls_total",
        "Batched tree builds answered by the compiled kernel",
    )
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    sample_idx = np.ascontiguousarray(sample_idx, dtype=np.int64)
    batch = sample_idx.shape[0]
    lengths = np.empty(max(batch, 1), dtype=np.int64)
    # every non-root reachable vertex is a seed or has a surviving
    # in-edge, so the payload is bounded by edges + roots + seeds
    window = int((offsets[sample_idx + 1] - offsets[sample_idx]).sum())
    cap = window + batch * (1 + int(seeds.shape[0])) + 1
    out_order = np.empty(cap, dtype=np.int64)
    out_sizes = np.empty(cap, dtype=np.int64)
    total = lib.repro_build_trees(
        n,
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(edge_dst, dtype=np.int64),
        np.ascontiguousarray(positions, dtype=np.int64),
        offsets,
        sample_idx,
        batch,
        np.ascontiguousarray(seeds, dtype=np.int64),
        int(seeds.shape[0]),
        np.ascontiguousarray(blocked_mask, dtype=np.uint8),
        out_order,
        out_sizes,
        lengths,
    )
    if total < 0:  # pragma: no cover - scratch malloc failure
        raise MemoryError("native tree-build kernel out of memory")
    # copy, don't slice: a slice would pin the whole cap-sized output
    # buffer (sized by surviving *edges*, typically ~10x the payload)
    # for as long as a consumer — e.g. an arena view — holds it, and
    # byte gauges built on .nbytes would wildly under-count residency
    return (
        lengths[:batch].copy(),
        out_order[:total].copy(),
        out_sizes[:total].copy(),
    )
