/* Batched dominator-tree construction over pooled live-edge samples.
 *
 * One call builds the (preorder, subtree-size) payload of Algorithm 2
 * for a whole batch of samples, straight from the sample pool's flat
 * arrays: per sample it walks the reachable subgraph from the virtual
 * super-source, runs the simple O(m log n) Lengauer-Tarjan variant
 * with an iterative DFS and path-compressed union-find, and
 * accumulates subtree sizes in one descending sweep.
 *
 * The routine is a LINE-FOR-LINE translation of the pure-Python core
 * (repro/dominator/lengauer_tarjan.py::dominator_tree_csr composed
 * with repro/engine/kernels.py::sample_csr and tree.py::subtree_sizes):
 * identical DFS successor order (edge-position order per source, seed
 * order for the virtual root), identical FIFO bucket processing,
 * identical path-compression fold.  Outputs are bit-identical to the
 * Python path, which the cross-check tests and the benchmark identity
 * gates rely on.
 *
 * Two scaling properties the Python path lacks:
 *
 * - a vertex's surviving out-edges are found by binary searching the
 *   sample's (ascending) edge-position slice against the base CSR row
 *   bounds, so per-sample work scales with the REACHABLE subgraph,
 *   not with the sample's total surviving-edge count (under WC-style
 *   models cascades reach a few percent of the graph while ~n edges
 *   survive per sample);
 * - per-sample state is reset through the preorder list (O(reachable)
 *   per sample, not O(n)), and all scratch lives in one malloc per
 *   call.
 */

#include <stdint.h>
#include <stdlib.h>

/* First index in positions[lo:hi) whose value is >= key. */
static int64_t lower_bound(const int64_t *a, int64_t lo, int64_t hi,
                           int64_t key) {
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (a[mid] < key) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

/* Min-semi label on the union-find forest path from v to its root.
 * Iterative path compression, folded top-down exactly like the Python
 * evaluate(): collect the path, then each node inherits the better
 * label of its already-compressed ancestor. */
static int64_t lt_eval(int64_t v, int64_t *ancestor, int64_t *label,
                       const int64_t *semi, int64_t *path) {
    if (ancestor[v] < 0) {
        return v;
    }
    int64_t depth = 0;
    int64_t u = v;
    while (ancestor[ancestor[u]] >= 0) {
        path[depth++] = u;
        u = ancestor[u];
    }
    for (int64_t k = depth - 1; k >= 0; k--) {
        int64_t w = path[k];
        int64_t anc = ancestor[w];
        if (semi[label[anc]] < semi[label[w]]) {
            label[w] = label[anc];
        }
        ancestor[w] = ancestor[anc];
    }
    return label[v];
}

/* Build (order, sizes) dominator payloads for `batch` samples.
 *
 * indptr: base-graph CSR row pointers (n + 1 entries); a sample's
 *     surviving out-edges of vertex v are the positions p in its
 *     slice with indptr[v] <= p < indptr[v + 1].
 * edge_dst: base-graph CSR targets (one per edge position).
 * positions / offsets: the pool's flat sample arrays — sample t
 *     survives positions[offsets[t]:offsets[t+1]] (ascending).
 * sample_idx: the samples to build, in output order.
 * seeds: targets of the virtual root (id n), in order.
 * blocked: byte mask over the n real vertices; edges into a blocked
 *     vertex are skipped and blocked seeds lose their root edge,
 *     exactly like sample_csr() (blocked sources are never reached).
 * out_order / out_sizes: payload arrays, written back to back; the
 *     caller sizes them at (total surviving edges of the requested
 *     samples) + batch * (1 + num_seeds), a safe bound because every
 *     non-root reachable vertex is a seed or has a surviving in-edge.
 * out_lengths[i]: payload length of sample sample_idx[i].
 *
 * Returns the total payload length, or -1 when scratch allocation
 * fails.
 */
int64_t repro_build_trees(
    int64_t n,
    const int64_t *indptr,
    const int64_t *edge_dst,
    const int64_t *positions,
    const int64_t *offsets,
    const int64_t *sample_idx,
    int64_t batch,
    const int64_t *seeds,
    int64_t num_seeds,
    const uint8_t *blocked,
    int64_t *out_order,
    int64_t *out_sizes,
    int64_t *out_lengths) {
    if (batch <= 0) {
        return 0;
    }
    int64_t max_edges = 0;
    for (int64_t i = 0; i < batch; i++) {
        int64_t t = sample_idx[i];
        int64_t count = offsets[t + 1] - offsets[t];
        if (count > max_edges) {
            max_edges = count;
        }
    }

    const int64_t nv = n + 1; /* real vertices plus the virtual root */
    /* one vertex-indexed array (dfn), 16 preorder-indexed arrays
     * (nv + 1 each for safety), predecessor data. */
    int64_t words = nv + 16 * (nv + 1) + (max_edges + num_seeds);
    int64_t *scratch = (int64_t *)malloc((size_t)words * sizeof(int64_t));
    if (scratch == NULL) {
        return -1;
    }
    int64_t *cursor_ptr = scratch;
    int64_t *dfn = cursor_ptr;        cursor_ptr += nv;
    int64_t *order = cursor_ptr;      cursor_ptr += nv + 1;
    int64_t *parent = cursor_ptr;     cursor_ptr += nv + 1;
    int64_t *row_lo = cursor_ptr;     cursor_ptr += nv + 1;
    int64_t *row_hi = cursor_ptr;     cursor_ptr += nv + 1;
    int64_t *semi = cursor_ptr;       cursor_ptr += nv + 1;
    int64_t *idom = cursor_ptr;       cursor_ptr += nv + 1;
    int64_t *ancestor = cursor_ptr;   cursor_ptr += nv + 1;
    int64_t *label = cursor_ptr;      cursor_ptr += nv + 1;
    int64_t *bkt_head = cursor_ptr;   cursor_ptr += nv + 1;
    int64_t *bkt_tail = cursor_ptr;   cursor_ptr += nv + 1;
    int64_t *bkt_next = cursor_ptr;   cursor_ptr += nv + 1;
    int64_t *path = cursor_ptr;       cursor_ptr += nv + 1;
    int64_t *stack_num = cursor_ptr;  cursor_ptr += nv + 1;
    int64_t *stack_cur = cursor_ptr;  cursor_ptr += nv + 1;
    int64_t *stack_end = cursor_ptr;  cursor_ptr += nv + 1;
    int64_t *pred_ptr = cursor_ptr;   cursor_ptr += nv + 1;
    int64_t *pred_dat = cursor_ptr;

    for (int64_t v = 0; v < nv; v++) {
        dfn[v] = -1;
    }

    /* The root's successor list is the blocked-filtered seed list,
     * shared by every sample in the batch. */
    int64_t *live_seeds = path; /* borrowed: path is unused until LT */
    int64_t num_live_seeds = 0;
    for (int64_t k = 0; k < num_seeds; k++) {
        if (!blocked[seeds[k]]) {
            live_seeds[num_live_seeds++] = seeds[k];
        }
    }
    int64_t *seed_copy =
        (int64_t *)malloc((size_t)(num_live_seeds + 1) * sizeof(int64_t));
    if (seed_copy == NULL) {
        free(scratch);
        return -1;
    }
    for (int64_t k = 0; k < num_live_seeds; k++) {
        seed_copy[k] = live_seeds[k];
    }
    live_seeds = seed_copy;

    int64_t out_pos = 0;
    for (int64_t i = 0; i < batch; i++) {
        int64_t t = sample_idx[i];
        int64_t slice_lo = offsets[t];
        int64_t slice_hi = offsets[t + 1];

        /* --- step 1: iterative DFS from the virtual root; vertex
         * rows are located lazily by binary search on the sample's
         * position slice --- */
        int64_t size = 1;
        dfn[n] = 0;
        order[0] = n;
        parent[0] = 0;
        row_lo[0] = 0;
        row_hi[0] = num_live_seeds;
        int64_t depth = 0;
        stack_num[0] = 0;
        stack_cur[0] = 0;
        stack_end[0] = num_live_seeds;
        while (depth >= 0) {
            int64_t u_num = stack_num[depth];
            int64_t j = stack_cur[depth];
            int64_t end = stack_end[depth];
            int advanced = 0;
            while (j < end) {
                int64_t v = (u_num == 0)
                    ? live_seeds[j]
                    : edge_dst[positions[j]];
                j++;
                if (blocked[v] || dfn[v] >= 0) {
                    continue;
                }
                int64_t v_num = size++;
                dfn[v] = v_num;
                order[v_num] = v;
                parent[v_num] = u_num;
                int64_t lo = lower_bound(
                    positions, slice_lo, slice_hi, indptr[v]);
                int64_t hi = lower_bound(
                    positions, lo, slice_hi, indptr[v + 1]);
                row_lo[v_num] = lo;
                row_hi[v_num] = hi;
                stack_cur[depth] = j;
                depth++;
                stack_num[depth] = v_num;
                stack_cur[depth] = lo;
                stack_end[depth] = hi;
                advanced = 1;
                break;
            }
            if (!advanced) {
                depth--;
            }
        }

        /* --- predecessor lists in preorder numbering, CSR form;
         * fill order matches the Python append order (preorder-major,
         * edge-position order within a row) --- */
        for (int64_t w = 0; w <= size; w++) {
            pred_ptr[w] = 0;
        }
        for (int64_t u_num = 0; u_num < size; u_num++) {
            for (int64_t j = row_lo[u_num]; j < row_hi[u_num]; j++) {
                int64_t d = (u_num == 0)
                    ? live_seeds[j]
                    : edge_dst[positions[j]];
                if (!blocked[d]) {
                    pred_ptr[dfn[d] + 1]++;
                }
            }
        }
        for (int64_t w = 0; w < size; w++) {
            pred_ptr[w + 1] += pred_ptr[w];
        }
        /* second pass fills using pred_ptr[w] as a running cursor;
         * the prefix is restored by shifting back afterwards. */
        for (int64_t u_num = 0; u_num < size; u_num++) {
            for (int64_t j = row_lo[u_num]; j < row_hi[u_num]; j++) {
                int64_t d = (u_num == 0)
                    ? live_seeds[j]
                    : edge_dst[positions[j]];
                if (!blocked[d]) {
                    pred_dat[pred_ptr[dfn[d]]++] = u_num;
                }
            }
        }
        for (int64_t w = size; w > 0; w--) {
            pred_ptr[w] = pred_ptr[w - 1];
        }
        pred_ptr[0] = 0;

        /* --- steps 2/3: semidominators + implicit idoms --- */
        for (int64_t w = 0; w < size; w++) {
            semi[w] = w;
            idom[w] = 0;
            ancestor[w] = -1;
            label[w] = w;
            bkt_head[w] = -1;
        }
        for (int64_t w = size - 1; w >= 1; w--) {
            for (int64_t j = pred_ptr[w]; j < pred_ptr[w + 1]; j++) {
                int64_t u = lt_eval(pred_dat[j], ancestor, label, semi, path);
                if (semi[u] < semi[w]) {
                    semi[w] = semi[u];
                }
            }
            /* FIFO bucket append, matching Python's list order */
            int64_t b = semi[w];
            if (bkt_head[b] < 0) {
                bkt_head[b] = w;
            } else {
                bkt_next[bkt_tail[b]] = w;
            }
            bkt_tail[b] = w;
            bkt_next[w] = -1;
            int64_t p = parent[w];
            ancestor[w] = p; /* link(p, w) */
            for (int64_t v = bkt_head[p]; v >= 0; v = bkt_next[v]) {
                int64_t u = lt_eval(v, ancestor, label, semi, path);
                idom[v] = (semi[u] < semi[v]) ? u : p;
            }
            bkt_head[p] = -1;
        }

        /* --- step 4: explicit idoms, then subtree sizes --- */
        for (int64_t w = 1; w < size; w++) {
            if (idom[w] != semi[w]) {
                idom[w] = idom[idom[w]];
            }
        }
        int64_t *sizes_out = out_sizes + out_pos;
        int64_t *order_out = out_order + out_pos;
        for (int64_t w = 0; w < size; w++) {
            order_out[w] = order[w];
            sizes_out[w] = 1;
        }
        for (int64_t w = size - 1; w >= 1; w--) {
            sizes_out[idom[w]] += sizes_out[w];
        }
        out_lengths[i] = size;
        out_pos += size;

        /* --- O(reachable) reset for the next sample --- */
        for (int64_t w = 0; w < size; w++) {
            dfn[order[w]] = -1;
        }
    }

    free(live_seeds);
    free(scratch);
    return out_pos;
}
