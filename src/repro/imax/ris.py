"""Reverse Influence Sampling (RIS) and greedy influence maximization.

Section V-B1 of the paper reviews RIS (Borgs et al., SODA 2014) as the
dominant estimator for the influence *maximization* problem — and
explains why it does **not** transfer to influence minimization:
blockers sit *between* the seed and the rest of the graph, so the
effect of a blocker set is not a union of per-vertex effects the way
seed-set coverage is (the spread is submodular in the seed set but not
supermodular in the blocker set, Theorem 2).

We implement RIS faithfully as a substrate: it documents the contrast
with the dominator-tree estimator, serves as an independent
expected-spread oracle in tests (`spread(S) ~ n * covered fraction of
RR sets`), and provides a classic IMAX solver for the examples.

Definitions: a *reverse-reachable (RR) set* is drawn by sampling a
live-edge graph and collecting every vertex that can reach a uniformly
random target vertex.  If ``S`` hits an RR set with probability ``p``,
the expected spread of ``S`` is ``n * p`` (Borgs et al.); greedy
max-cover over RR sets therefore maximizes spread with the classic
``1 - 1/e`` guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, python_rng, RngLike

__all__ = ["RRSetCollection", "generate_rr_sets", "greedy_imax"]


@dataclass(frozen=True)
class RRSetCollection:
    """A batch of reverse-reachable sets over a graph with ``n`` vertices."""

    n: int
    sets: tuple[frozenset[int], ...]

    def coverage(self, seeds: Sequence[int]) -> float:
        """Fraction of RR sets hit by ``seeds``."""
        if not self.sets:
            return 0.0
        seed_set = set(seeds)
        hit = sum(1 for rr in self.sets if seed_set & rr)
        return hit / len(self.sets)

    def estimate_spread(self, seeds: Sequence[int]) -> float:
        """Borgs et al.'s estimator: ``n *`` coverage fraction."""
        return self.n * self.coverage(seeds)


def generate_rr_sets(
    graph: DiGraph | CSRGraph,
    count: int,
    rng: RngLike = None,
) -> RRSetCollection:
    """Draw ``count`` RR sets under the IC model.

    Each draw picks a uniform target vertex and runs a reverse BFS that
    flips each incoming edge's coin lazily — equivalent to sampling the
    full live-edge graph but touching only the traversed part.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    gen = ensure_rng(rng)
    rand = python_rng(gen).random
    n = csr.n
    if n == 0:
        raise ValueError("graph has no vertices")

    # reverse adjacency with probabilities: in-edges of each vertex
    rev: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    src = csr.src_list
    dst = csr.indices_list
    probs = csr.probs_list
    for j in range(csr.m):
        rev[dst[j]].append((src[j], probs[j]))

    sets = []
    targets = ensure_rng(gen).integers(0, n, size=count)
    for target in targets.tolist():
        seen = {target}
        stack = [target]
        while stack:
            v = stack.pop()
            for u, p in rev[v]:
                if u not in seen and rand() < p:
                    seen.add(u)
                    stack.append(u)
        sets.append(frozenset(seen))
    return RRSetCollection(n=n, sets=tuple(sets))


@dataclass(frozen=True)
class IMaxResult:
    """Greedy IMAX solution with its coverage trace."""

    seeds: list[int]
    estimated_spread: float
    marginal_coverage: list[float]


def greedy_imax(
    graph: DiGraph | CSRGraph,
    budget: int,
    rr_count: int = 10000,
    rng: RngLike = None,
) -> IMaxResult:
    """Influence maximization by greedy max-cover over RR sets.

    The (1 - 1/e)-approximate algorithm of Borgs et al.: repeatedly
    pick the vertex covering the most uncovered RR sets.  Included as
    the IMAX counterpart that motivates — and contrasts with — the
    paper's IMIN machinery.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    collection = generate_rr_sets(graph, rr_count, rng)
    n = collection.n

    # vertex -> indices of RR sets containing it
    membership: dict[int, list[int]] = {}
    for index, rr in enumerate(collection.sets):
        for v in rr:
            membership.setdefault(v, []).append(index)

    covered = [False] * len(collection.sets)
    gains = {v: len(ids) for v, ids in membership.items()}
    seeds: list[int] = []
    marginals: list[float] = []
    for _ in range(min(budget, n)):
        if not gains:
            break
        best = max(gains, key=lambda v: (gains[v], -v))
        if gains[best] <= 0:
            break
        fresh = 0
        for index in membership[best]:
            if not covered[index]:
                covered[index] = True
                fresh += 1
        seeds.append(best)
        marginals.append(fresh / len(collection.sets))
        del gains[best]
        # recompute gains lazily-exactly: subtract coverage just taken
        for v in list(gains):
            gains[v] = sum(
                1 for index in membership[v] if not covered[index]
            )
    spread = collection.n * sum(marginals)
    return IMaxResult(
        seeds=seeds, estimated_spread=spread, marginal_coverage=marginals
    )
