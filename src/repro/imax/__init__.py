"""Influence maximization via reverse influence sampling (§V-B1).

Implemented as the substrate the paper contrasts with: RIS works for
seed selection (submodular coverage) but not for blocker selection
(Theorem 2's non-supermodularity) — see :mod:`repro.imax.ris`.
"""

from .ris import generate_rr_sets, greedy_imax, IMaxResult, RRSetCollection

__all__ = [
    "generate_rr_sets",
    "RRSetCollection",
    "greedy_imax",
    "IMaxResult",
]
