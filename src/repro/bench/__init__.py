"""Experiment harness shared by the ``benchmarks/`` suite and the CLI."""

from .experiments import Experiment, experiment_command, EXPERIMENTS
from .reporting import format_series, format_table, print_banner
from .runner import (
    AlgorithmRun,
    evaluate_spread,
    pick_seeds,
    prepare_graph,
    run_and_evaluate,
)

__all__ = [
    "prepare_graph",
    "pick_seeds",
    "AlgorithmRun",
    "run_and_evaluate",
    "evaluate_spread",
    "format_table",
    "format_series",
    "print_banner",
    "EXPERIMENTS",
    "Experiment",
    "experiment_command",
]
