"""Plain-text table/series formatting for experiment output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep the formatting consistent and
capturable (``EXPERIMENTS.md`` is assembled from this output).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "print_banner"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule; floats get 4 significant
    digits, which matches the paper's table precision."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """A figure rendered as a table: one x column, one column per line."""
    headers = [x_label, *series]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def print_banner(text: str) -> None:
    """Visually separated experiment banner on stdout."""
    rule = "=" * max(48, len(text) + 4)
    print(f"\n{rule}\n  {text}\n{rule}")


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
