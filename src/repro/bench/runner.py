"""Shared experiment plumbing for the benchmark harness.

Every table/figure benchmark follows the paper's protocol (Section
VI-A): pick random seed vertices, run each algorithm, evaluate the
resulting blocker set's expected spread with an *independent*
Monte-Carlo pass, and report spread and wall-clock time.  This module
centralises that protocol so each ``benchmarks/bench_*.py`` file only
declares its sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence, TYPE_CHECKING

from ..graph import DiGraph
from ..models import assign_trivalency, assign_weighted_cascade
from ..rng import ensure_rng, RngLike
from ..spread import MonteCarloEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = [
    "prepare_graph",
    "pick_seeds",
    "AlgorithmRun",
    "run_and_evaluate",
    "evaluate_spread",
]

Model = Literal["tr", "wc"]


def prepare_graph(graph: DiGraph, model: Model, rng: RngLike = None) -> DiGraph:
    """Assign edge probabilities per the paper's TR or WC scheme."""
    if model == "tr":
        return assign_trivalency(graph, rng=ensure_rng(rng))
    if model == "wc":
        return assign_weighted_cascade(graph)
    raise ValueError(f"unknown propagation model {model!r}")


def pick_seeds(
    graph: DiGraph, count: int, rng: RngLike = None
) -> list[int]:
    """Random distinct seed vertices, preferring non-isolated ones.

    The paper "randomly selects" seeds; we additionally require a
    positive out-degree when possible so tiny stand-ins do not draw
    all-isolated seed sets that trivialise the run.
    """
    gen = ensure_rng(rng)
    count = min(count, graph.n)
    candidates = [v for v in graph.vertices() if graph.out_degree(v) > 0]
    if len(candidates) < count:
        candidates = list(graph.vertices())
    picks = gen.choice(len(candidates), size=count, replace=False)
    return sorted(candidates[i] for i in picks)


@dataclass
class AlgorithmRun:
    """One algorithm execution: blockers, evaluated spread, timing."""

    name: str
    blockers: list[int]
    spread: float
    elapsed_seconds: float
    extra: dict = field(default_factory=dict)


def evaluate_spread(
    graph: DiGraph,
    seeds: Sequence[int],
    blockers: Sequence[int],
    rounds: int = 2000,
    rng: RngLike = None,
    evaluator: "SpreadEvaluator | None" = None,
) -> float:
    """Independent MCS evaluation of a blocker set's final spread.

    The paper evaluates final quality with 10^5 MCS rounds; 2000 keeps
    pure-Python benches tractable with a ~2% standard error at our
    spread magnitudes.

    ``evaluator`` (built on ``graph``; see
    :func:`repro.engine.make_evaluator`) routes the evaluation through
    a vectorized/parallel/pooled backend; the default is a fresh
    scalar engine, reproducing historical fixed-seed values exactly.
    Precedence: when ``evaluator`` is given, ``rng`` is ignored — the
    evaluator's own stream (fixed at its construction) is used, and a
    *stateful* evaluator advances that stream across calls, so
    repeated calls score on different random worlds.  To preserve the
    common-random-numbers comparison that a fixed ``rng`` gives across
    algorithms, inject a ``pooled`` evaluator (every call reuses the
    same sample worlds) or a fresh evaluator per call.
    """
    if evaluator is not None:
        return evaluator.expected_spread(list(seeds), rounds, list(blockers))
    engine = MonteCarloEngine(graph, rng)
    return engine.expected_spread(list(seeds), rounds, list(blockers))


def run_and_evaluate(
    name: str,
    select: Callable[[], Sequence[int]],
    graph: DiGraph,
    seeds: Sequence[int],
    eval_rounds: int = 2000,
    eval_rng: RngLike = 12345,
    evaluator: "SpreadEvaluator | None" = None,
) -> AlgorithmRun:
    """Time ``select()`` and evaluate its blockers with a common MCS."""
    start = time.perf_counter()
    blockers = list(select())
    elapsed = time.perf_counter() - start
    spread = evaluate_spread(
        graph, seeds, blockers, rounds=eval_rounds, rng=eval_rng,
        evaluator=evaluator,
    )
    return AlgorithmRun(
        name=name,
        blockers=blockers,
        spread=spread,
        elapsed_seconds=elapsed,
    )
