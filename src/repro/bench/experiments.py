"""Registry mapping the paper's tables/figures to benchmark targets.

DESIGN.md's per-experiment index lives here in executable form: each
experiment id (``fig5`` … ``table7``, plus ablations/extensions) maps
to the ``benchmarks/`` file that regenerates it.  The CLI's
``experiment`` subcommand uses this to launch individual
reproductions, and a test pins the registry to the files actually on
disk.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "experiment_command"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment from the paper's evaluation."""

    key: str
    paper_item: str
    description: str
    bench_file: str


EXPERIMENTS: dict[str, Experiment] = {
    e.key: e
    for e in (
        Experiment(
            "table4", "Table IV",
            "dataset statistics, original vs stand-in",
            "bench_table4_datasets.py",
        ),
        Experiment(
            "fig5", "Figure 5",
            "GR effectiveness vs number of sampled graphs",
            "bench_fig5_theta_effectiveness.py",
        ),
        Experiment(
            "fig6", "Figure 6",
            "GR running time vs number of sampled graphs",
            "bench_fig6_theta_runtime.py",
        ),
        Experiment(
            "table5", "Table V",
            "Exact vs GreedyReplace under the TR model",
            "bench_table5_exact_vs_gr_tr.py",
        ),
        Experiment(
            "table6", "Table VI",
            "Exact vs GreedyReplace under the WC model",
            "bench_table6_exact_vs_gr_wc.py",
        ),
        Experiment(
            "table7", "Table VII",
            "RA/OD/AG/GR expected spread across datasets and budgets",
            "bench_table7_heuristics.py",
        ),
        Experiment(
            "fig7", "Figure 7",
            "running time of BG/AG/GR under the TR model",
            "bench_fig7_runtime_tr.py",
        ),
        Experiment(
            "fig8", "Figure 8",
            "running time of BG/AG/GR under the WC model",
            "bench_fig8_runtime_wc.py",
        ),
        Experiment(
            "fig9", "Figure 9",
            "running time vs budget (Facebook/DBLP stand-ins)",
            "bench_fig9_budget.py",
        ),
        Experiment(
            "fig10", "Figure 10",
            "GR running time vs number of seeds (TR model)",
            "bench_fig10_seeds_tr.py",
        ),
        Experiment(
            "fig11", "Figure 11",
            "GR running time vs number of seeds (WC model)",
            "bench_fig11_seeds_wc.py",
        ),
        Experiment(
            "ablation-estimator", "§V-C",
            "dominator-tree estimator vs per-candidate MCS",
            "bench_ablation_ag_vs_bg.py",
        ),
        Experiment(
            "ablation-gr", "§V-D",
            "GR vs its components (AG / OutNeighbors)",
            "bench_ablation_gr_components.py",
        ),
        Experiment(
            "ablation-dominators", "§V-B3",
            "Lengauer–Tarjan vs iterative dominator construction",
            "bench_ablation_dominators.py",
        ),
        Experiment(
            "ablation-samples", "(extension)",
            "fresh samples per round vs one fixed pool",
            "bench_ablation_sample_reuse.py",
        ),
        Experiment(
            "ext-triggering", "§V-E",
            "AG/GR under the Linear Threshold triggering model",
            "bench_ext_triggering.py",
        ),
        Experiment(
            "engine-throughput", "(extension)",
            "scalar vs vectorized vs parallel vs pooled spread oracle",
            "bench_engine_throughput.py",
        ),
        Experiment(
            "sketch-vs-mc", "§V-B/C",
            "dominator-tree sketch index vs vectorized Monte Carlo",
            "bench_sketch_vs_mc.py",
        ),
        Experiment(
            "sketch-build", "§V-B3",
            "batched array-native sketch construction vs legacy Python",
            "bench_sketch_build.py",
        ),
        Experiment(
            "sketch-query", "§V-C",
            "arena-backed greedy selection loop vs the pre-arena path",
            "bench_sketch_query.py",
        ),
        Experiment(
            "mmap-artifacts", "(extension)",
            "persisted sketch artifacts: mmap rehydrate vs cold build",
            "bench_mmap_artifacts.py",
        ),
        Experiment(
            "service-latency", "(extension)",
            "warm repro.service queries vs cold single-shot CLI",
            "bench_service_latency.py",
        ),
        Experiment(
            "graph-updates", "(extension)",
            "incremental delta apply vs cold rebuild on edge mutations",
            "bench_graph_updates.py",
        ),
        Experiment(
            "service-saturation", "(extension)",
            "client-ladder saturation knee, shed/coalescing telemetry, "
            "and sampling-profiler overhead",
            "bench_service_saturation.py",
        ),
    )
}


def experiment_command(key: str) -> list[str]:
    """The pytest invocation that reproduces experiment ``key``."""
    experiment = EXPERIMENTS.get(key)
    if experiment is None:
        raise KeyError(
            f"unknown experiment {key!r}; available: "
            + ", ".join(EXPERIMENTS)
        )
    return [
        "pytest",
        f"benchmarks/{experiment.bench_file}",
        "--benchmark-only",
        "-s",
    ]
