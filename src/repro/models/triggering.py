"""The triggering model and its Linear Threshold instance (Section V-E).

The triggering model generalises both IC and LT: every vertex ``u``
draws a *triggering set* from a distribution ``T(u)`` over subsets of
its in-neighbours, and an in-edge survives iff its source is in the
drawn set.  The paper's extension observes that AG/GR work unchanged on
triggering-model samples — only the sampler differs — so this module
implements the :class:`~repro.sampling.EdgeSampler` protocol:

* :class:`LinearThresholdSampler` — the classic LT model: each vertex
  keeps at most one in-edge, edge ``(u, v)`` with probability equal to
  its weight (weights per vertex must sum to <= 1).  Fully vectorised.
* :class:`GeneralTriggeringSampler` — arbitrary per-vertex triggering
  distributions via a user callback; flexible but Python-loop paced.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, RngLike

__all__ = ["LinearThresholdSampler", "GeneralTriggeringSampler"]


def _in_edge_index(csr: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Edge positions grouped by target: ``(order, offsets)`` such that
    ``order[offsets[v]:offsets[v + 1]]`` are the in-edges of ``v``."""
    order = np.argsort(csr.indices, kind="stable")
    counts = np.bincount(csr.indices, minlength=csr.n)
    offsets = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


class LinearThresholdSampler:
    """Live-edge sampler for the Linear Threshold model.

    Edge weights default to the graph's stored probabilities; under the
    weighted-cascade assignment (``p = 1/in_degree``) they sum to
    exactly 1 per vertex, the standard uniform LT instance.  Weights
    summing to more than 1 (within a small tolerance) are rejected.
    """

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        weights: np.ndarray | None = None,
    ):
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self._gen = ensure_rng(rng)
        self._in_order, self._in_offsets = _in_edge_index(self.csr)
        base = self.csr.probs if weights is None else np.asarray(
            weights, dtype=np.float64
        )
        if base.shape != (self.csr.m,):
            raise ValueError("weights must have one entry per edge")
        self._weights = base.copy()
        sums = np.add.reduceat(
            np.concatenate((self._weights[self._in_order], [0.0])),
            np.minimum(self._in_offsets[:-1], self.csr.m),
        ) if self.csr.m else np.zeros(self.csr.n)
        live = np.diff(self._in_offsets) > 0
        if np.any(sums[live] > 1.0 + 1e-9):
            raise ValueError(
                "LT weights must sum to at most 1 per vertex; "
                "use assign_weighted_cascade or normalise explicitly"
            )
        self._blocked: set[int] = set()
        self._refresh()

    @property
    def blocked(self) -> frozenset[int]:
        return frozenset(self._blocked)

    def block(self, vertices: Iterable[int]) -> None:
        changed = False
        for v in vertices:
            if v not in self._blocked:
                self._blocked.add(v)
                changed = True
        if changed:
            self._refresh()

    def unblock(self, vertices: Iterable[int]) -> None:
        changed = False
        for v in vertices:
            if v in self._blocked:
                self._blocked.discard(v)
                changed = True
        if changed:
            self._refresh()

    def sample_surviving_edges(self) -> np.ndarray:
        """One LT triggering draw: <= 1 surviving in-edge per vertex.

        Vectorised inverse-CDF over the per-vertex weight segments: a
        uniform draw ``r_v`` lands in segment position
        ``searchsorted(cumw, base_v + r_v)``; if that position is still
        inside the vertex's segment, the corresponding edge survives.
        """
        if self.csr.m == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._in_offsets[:-1]
        ends = self._in_offsets[1:]
        r = self._gen.random(self.csr.n)
        targets = self._cumw0[starts] + r
        positions = np.searchsorted(self._cumw, targets, side="right")
        survive = positions < ends
        return np.sort(self._in_order[positions[survive]])

    def _refresh(self) -> None:
        weights = self._weights.copy()
        if self._blocked:
            blocked = np.fromiter(self._blocked, dtype=np.int64)
            targets = self.csr.indices
            sources = self.csr.src
            dead = np.isin(targets, blocked) | np.isin(sources, blocked)
            weights[dead] = 0.0
        ordered = weights[self._in_order]
        self._cumw = np.cumsum(ordered)
        self._cumw0 = np.concatenate(([0.0], self._cumw))


class GeneralTriggeringSampler:
    """Triggering model with an arbitrary per-vertex distribution.

    ``draw(v, in_sources, rng)`` must return the subset (any iterable)
    of ``in_sources`` forming the triggering set of ``v`` for this
    sample.  ``in_sources`` is the tuple of in-neighbour ids aligned
    with the vertex's in-edge positions.
    """

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        draw: Callable[
            [int, tuple[int, ...], np.random.Generator], Iterable[int]
        ],
        rng: RngLike = None,
    ):
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self._draw = draw
        self._gen = ensure_rng(rng)
        self._in_order, self._in_offsets = _in_edge_index(self.csr)
        src = self.csr.src
        self._in_sources: list[tuple[int, ...]] = [
            tuple(
                int(src[j])
                for j in self._in_order[
                    self._in_offsets[v]: self._in_offsets[v + 1]
                ]
            )
            for v in range(self.csr.n)
        ]
        self._blocked: set[int] = set()

    @property
    def blocked(self) -> frozenset[int]:
        return frozenset(self._blocked)

    def block(self, vertices: Iterable[int]) -> None:
        self._blocked.update(vertices)

    def unblock(self, vertices: Iterable[int]) -> None:
        self._blocked.difference_update(vertices)

    def sample_surviving_edges(self) -> np.ndarray:
        surviving: list[int] = []
        blocked = self._blocked
        for v in range(self.csr.n):
            if v in blocked:
                continue
            sources = self._in_sources[v]
            if not sources:
                continue
            chosen = set(self._draw(v, sources, self._gen))
            if not chosen:
                continue
            seg = self._in_order[
                self._in_offsets[v]: self._in_offsets[v + 1]
            ]
            for source, j in zip(sources, seg):
                if source in chosen and source not in blocked:
                    surviving.append(int(j))
        return np.asarray(sorted(surviving), dtype=np.int64)


def independent_cascade_draw(
    v: int, in_sources: tuple[int, ...], gen: np.random.Generator
) -> list[int]:  # pragma: no cover - simple reference distribution
    """Reference draw showing IC as a triggering instance (each
    in-neighbour joins the triggering set independently with p = 0.5).

    Real IC sampling should use :class:`~repro.sampling.ICSampler`; this
    exists for documentation and tests of the general sampler.
    """
    mask = gen.random(len(in_sources)) < 0.5
    return [s for s, keep in zip(in_sources, mask) if keep]
