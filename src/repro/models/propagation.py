"""Propagation-probability assignment models.

The paper's experiments (Section VI-A) assign IC edge probabilities by
two standard schemes:

* **Trivalency (TR)** — every edge draws uniformly from
  ``{0.1, 0.01, 0.001}``;
* **Weighted Cascade (WC)** — ``p(u, v) = 1 / in_degree(v)``.

We add a constant and a uniform scheme used in tests and ablations.
All functions mutate the graph's edge probabilities in place and return
the graph to allow chaining.
"""

from __future__ import annotations

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike

__all__ = [
    "TRIVALENCY_VALUES",
    "assign_trivalency",
    "assign_weighted_cascade",
    "assign_constant",
    "assign_uniform",
]

TRIVALENCY_VALUES: tuple[float, ...] = (0.1, 0.01, 0.001)


def assign_trivalency(
    graph: DiGraph,
    rng: RngLike = None,
    values: tuple[float, ...] = TRIVALENCY_VALUES,
) -> DiGraph:
    """TR model: each edge gets a probability drawn uniformly from
    ``values`` (default ``{0.1, 0.01, 0.001}``)."""
    gen = ensure_rng(rng)
    for u, v, _ in list(graph.edges()):
        graph.add_edge(u, v, values[int(gen.integers(len(values)))])
    return graph


def assign_weighted_cascade(graph: DiGraph) -> DiGraph:
    """WC model: ``p(u, v) = 1 / in_degree(v)``.

    With this assignment every vertex is activated by one in-neighbour
    in expectation, the classic weighted-cascade setting of Kempe et al.
    """
    for u, v, _ in list(graph.edges()):
        graph.add_edge(u, v, 1.0 / graph.in_degree(v))
    return graph


def assign_constant(graph: DiGraph, p: float) -> DiGraph:
    """Uniform constant probability on every edge."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    for u, v, _ in list(graph.edges()):
        graph.add_edge(u, v, p)
    return graph


def assign_uniform(
    graph: DiGraph, low: float, high: float, rng: RngLike = None
) -> DiGraph:
    """Independent uniform probability in ``[low, high]`` per edge."""
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
    gen = ensure_rng(rng)
    for u, v, _ in list(graph.edges()):
        graph.add_edge(u, v, low + (high - low) * float(gen.random()))
    return graph
