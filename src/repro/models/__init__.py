"""Diffusion-model machinery: probability assignment and triggering."""

from .propagation import (
    TRIVALENCY_VALUES,
    assign_constant,
    assign_trivalency,
    assign_uniform,
    assign_weighted_cascade,
)
from .triggering import GeneralTriggeringSampler, LinearThresholdSampler

__all__ = [
    "TRIVALENCY_VALUES",
    "assign_trivalency",
    "assign_weighted_cascade",
    "assign_constant",
    "assign_uniform",
    "LinearThresholdSampler",
    "GeneralTriggeringSampler",
]
