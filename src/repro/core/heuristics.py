"""Simple blocker-selection heuristics.

The paper compares against **Rand (RA)** and **OutDegree (OD)**
(Table VII) and discusses degree- and betweenness-based selection from
prior work (Albert et al., Yao et al.).  **OutNeighbors (ON)** — greedy
restricted to the seeds' out-neighbours — is the Table III baseline
that motivates GreedyReplace.  All heuristics return plain blocker
lists in original vertex ids.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import ICSampler
from .decrease import decrease_es_computation
from .problem import unify_seeds

__all__ = [
    "random_blockers",
    "out_degree_blockers",
    "degree_blockers",
    "pagerank_blockers",
    "out_neighbors_blockers",
    "betweenness_blockers",
]


def random_blockers(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    rng: RngLike = None,
) -> list[int]:
    """RA: uniformly random non-seed blockers."""
    gen = ensure_rng(rng)
    seed_set = set(seeds)
    pool = [v for v in graph.vertices() if v not in seed_set]
    if budget >= len(pool):
        return pool
    picks = gen.choice(len(pool), size=budget, replace=False)
    return [pool[i] for i in picks]


def out_degree_blockers(
    graph: DiGraph, seeds: Sequence[int], budget: int
) -> list[int]:
    """OD: the ``b`` non-seed vertices of highest out-degree."""
    seed_set = set(seeds)
    pool = [v for v in graph.vertices() if v not in seed_set]
    pool.sort(key=lambda v: (-graph.out_degree(v), v))
    return pool[:budget]


def degree_blockers(
    graph: DiGraph, seeds: Sequence[int], budget: int
) -> list[int]:
    """Total-degree variant (Albert et al.'s attack heuristic)."""
    seed_set = set(seeds)
    pool = [v for v in graph.vertices() if v not in seed_set]
    pool.sort(key=lambda v: (-graph.degree(v), v))
    return pool[:budget]


def pagerank_blockers(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    damping: float = 0.85,
    iterations: int = 50,
) -> list[int]:
    """Highest-PageRank non-seed vertices (power iteration)."""
    n = graph.n
    if n == 0:
        return []
    rank = np.full(n, 1.0 / n)
    out_degree = np.array(
        [graph.out_degree(v) for v in graph.vertices()], dtype=np.float64
    )
    preds = [graph.in_neighbors(v) for v in graph.vertices()]
    for _ in range(iterations):
        share = np.where(out_degree > 0, rank / np.maximum(out_degree, 1), 0.0)
        dangling = rank[out_degree == 0].sum() / n
        new_rank = np.full(n, (1.0 - damping) / n)
        for v in range(n):
            incoming = sum(share[u] for u in preds[v])
            new_rank[v] += damping * (incoming + dangling)
        rank = new_rank
    seed_set = set(seeds)
    pool = [v for v in graph.vertices() if v not in seed_set]
    pool.sort(key=lambda v: (-rank[v], v))
    return pool[:budget]


def out_neighbors_blockers(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
) -> list[int]:
    """ON: greedy blocking restricted to the seeds' out-neighbours.

    This is GreedyReplace's phase 1 run alone — the Table III baseline
    whose behaviour at large budgets motivated GR.  When the seeds have
    fewer than ``budget`` out-neighbours, all of them are blocked.
    """
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    sampler = ICSampler(unified.graph, gen)
    source = unified.source
    remaining = set(unified.graph.out_neighbors(source))
    blockers: list[int] = []
    for _ in range(min(budget, len(remaining))):
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        values = result.delta.tolist()
        x = max(sorted(remaining), key=lambda u: values[u])
        remaining.discard(x)
        sampler.block([x])
        blockers.append(x)
    return unified.blockers_to_original(blockers)


def betweenness_blockers(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    pivots: int | None = None,
    rng: RngLike = None,
) -> list[int]:
    """Betweenness + out-degree heuristic (Yao et al.).

    Betweenness centrality is computed with Brandes' algorithm on
    unweighted shortest paths, optionally from a random pivot sample
    for speed; ties break towards higher out-degree (the combination
    suggested in the related work).
    """
    gen = ensure_rng(rng)
    n = graph.n
    sources = list(graph.vertices())
    if pivots is not None and pivots < n:
        picked = gen.choice(n, size=pivots, replace=False)
        sources = [int(s) for s in picked]
    centrality = np.zeros(n, dtype=np.float64)
    for s in sources:
        centrality += _brandes_single_source(graph, s)
    seed_set = set(seeds)
    pool = [v for v in graph.vertices() if v not in seed_set]
    pool.sort(key=lambda v: (-centrality[v], -graph.out_degree(v), v))
    return pool[:budget]


def _brandes_single_source(graph: DiGraph, s: int) -> np.ndarray:
    """Single-source dependency accumulation of Brandes' algorithm."""
    n = graph.n
    sigma = np.zeros(n)
    sigma[s] = 1.0
    dist = np.full(n, -1, dtype=np.int64)
    dist[s] = 0
    order: list[int] = []
    parents: list[list[int]] = [[] for _ in range(n)]
    queue = deque((s,))
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.successors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
            if dist[v] == dist[u] + 1:
                sigma[v] += sigma[u]
                parents[v].append(u)
    dependency = np.zeros(n)
    for v in reversed(order):
        for u in parents[v]:
            dependency[u] += sigma[u] / sigma[v] * (1.0 + dependency[v])
    dependency[s] = 0.0
    return dependency
