"""Sample-reuse AdvancedGreedy: common random numbers across rounds.

Plain AG (Algorithm 3) draws ``theta`` fresh sampled graphs every
round, so consecutive rounds compare candidates on *different* random
worlds — each round pays the sampling cost again and the marginal
estimates carry independent noise.  This variant draws the pool of
sampled graphs **once** and evaluates every greedy round against the
same fixed worlds, with blocked vertices filtered out of the pool's
adjacency:

* *common random numbers*: the marginal decrease of round ``i`` versus
  round ``i+1`` is measured on identical worlds, removing the
  between-round sampling variance (only the shared estimation noise of
  the pool remains);
* *determinism*: given the pool, the whole greedy trajectory is a
  deterministic function — handy for debugging and reproducibility;
* *cost*: no per-round coin flips; the per-round dominator-tree work is
  unchanged.

The trade-off is bias: all rounds share one pool, so late rounds can
overfit to the pool's idiosyncrasies (the classic train/test reuse
effect).  The ablation benchmark ``bench_ablation_sample_reuse``
measures this against plain AG.  Memory is ``O(theta * surviving
edges)``; intended for pools up to a few thousand samples.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

import numpy as np

from ..dominator import dominator_tree_arrays, subtree_sizes
from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import adjacency_from_edges, EdgeSampler, ICSampler
from .advanced_greedy import BlockingResult, lazy_blocking, SamplerFactory
from .lazy import resolve_lazy
from .problem import unify_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = ["static_sample_greedy"]


def static_sample_greedy(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
    sampler_factory: SamplerFactory | None = None,
    evaluator: "SpreadEvaluator | None" = None,
    lazy: bool | None = None,
) -> BlockingResult:
    """AdvancedGreedy over a fixed pool of ``theta`` sampled graphs.

    Parameters match
    :func:`~repro.core.advanced_greedy.advanced_greedy`; the pool is
    drawn up front from the same sampler the plain algorithm would use.
    ``evaluator`` (if given, built on the original graph) re-estimates
    the final blocker set's spread independently over ``theta`` rounds.

    ``lazy`` (default: auto, on when the evaluator answers
    ``marginal_gain``) routes selection through
    :func:`~repro.core.advanced_greedy.lazy_blocking` instead.  The
    sketch index is itself a fixed pool of sampled worlds with
    dominator trees on top, so the lazy path keeps this algorithm's
    common-random-numbers semantics while dropping the per-round tree
    rebuild for untouched samples.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if theta <= 0:
        raise ValueError("theta must be positive")
    if resolve_lazy(evaluator, sampler_factory, lazy):
        return lazy_blocking(graph, seeds, budget, theta, evaluator)
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    if sampler_factory is None:
        sampler: EdgeSampler = ICSampler(unified.graph, gen)
    else:
        sampler = sampler_factory(unified.graph, gen)
    source = unified.source
    n = unified.graph.n

    pool = [
        adjacency_from_edges(sampler.csr, sampler.sample_surviving_edges())
        for _ in range(theta)
    ]

    blocked: set[int] = set()
    blockers: list[int] = []
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    estimated = 0.0

    for _ in range(max(1, min(budget, n - 1))):
        delta = np.zeros(n, dtype=np.float64)
        spread_total = 0
        for succ in pool:
            filtered = _filtered_adjacency(succ, blocked)
            order, idom = dominator_tree_arrays(filtered, source)
            spread_total += len(order)
            if len(order) > 1:
                sizes = subtree_sizes(idom)
                np.add.at(
                    delta,
                    np.asarray(order[1:], dtype=np.int64),
                    np.asarray(sizes[1:], dtype=np.float64),
                )
        delta /= theta
        spread = spread_total / theta
        if not blockers:
            estimated = spread

        if len(blockers) >= budget:
            # budget 0: we only wanted the spread estimate
            round_spreads.append(spread)
            break

        values = delta.tolist()
        best = -1
        best_value = 0.0
        for u in range(n):
            if u != source and u not in blocked and values[u] > best_value:
                best = u
                best_value = values[u]
        round_spreads.append(spread)
        if best < 0:
            estimated = spread
            break
        blocked.add(best)
        blockers.append(best)
        round_deltas.append(best_value)
        estimated = spread - best_value

    blockers_original = unified.blockers_to_original(blockers)
    estimated_original = unified.spread_to_original(estimated)
    if evaluator is not None:
        estimated_original = evaluator.expected_spread(
            list(seeds), theta, blockers_original
        )
    return BlockingResult(
        blockers=blockers_original,
        estimated_spread=estimated_original,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )


def _filtered_adjacency(
    succ: dict[int, list[int]], blocked: set[int]
) -> dict[int, list[int]]:
    """The sampled graph with blocked vertices removed."""
    if not blocked:
        return succ
    return {
        u: [v for v in nbrs if v not in blocked]
        for u, nbrs in succ.items()
        if u not in blocked
    }
