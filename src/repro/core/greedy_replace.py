"""Algorithm 4: GreedyReplace (GR).

Motivation (Section V-D): with an unlimited budget the optimal blocking
is exactly the seeds' out-neighbours, yet plain greedy may spend its
budget on "deep" vertices and miss them (Example 3 / Table III).  GR
therefore

1. greedily picks ``min(d_out(s), b)`` blockers restricted to the
   source's out-neighbours, then
2. revisits the blockers in reverse insertion order and greedily
   *replaces* each with the globally best vertex, terminating early the
   first time the incumbent survives its own replacement round.

When the source has fewer than ``b`` out-neighbours the remaining
budget is spent with AdvancedGreedy rounds over all candidates —
the paper's pseudocode leaves this case implicit; filling the budget is
the natural reading of "returns the set B of b blockers".
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

import numpy as np

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import EdgeSampler, ICSampler
from .advanced_greedy import BlockingResult, SamplerFactory
from .decrease import decrease_es_computation
from .lazy import celf_select, GainFn, make_gain_fn, resolve_lazy
from .problem import unify_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = ["greedy_replace"]


def greedy_replace(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
    sampler_factory: SamplerFactory | None = None,
    fill_budget: bool = True,
    evaluator: "SpreadEvaluator | None" = None,
    lazy: bool | None = None,
) -> BlockingResult:
    """GreedyReplace blocker selection (Algorithm 4).

    Parameters mirror :func:`~repro.core.advanced_greedy.advanced_greedy`;
    ``fill_budget=False`` reproduces the paper's literal pseudocode,
    which leaves the blocker set smaller than ``b`` when the source has
    fewer than ``b`` out-neighbours.  ``evaluator`` (if given, built on
    the original graph) re-estimates the final blocker set's spread
    independently over ``theta`` rounds; selection is unchanged.

    ``lazy`` (default: auto, on when the evaluator answers
    ``marginal_gain``) runs all three phases through the evaluator:
    phases 1/1b priority-queue marginal gains CELF-style
    (:mod:`repro.core.lazy`) and the replacement phase reads whole
    candidate sweeps from
    :meth:`~repro.engine.sketch.SketchIndex.decrease_estimates` when
    the evaluator provides it.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if resolve_lazy(evaluator, sampler_factory, lazy):
        return _lazy_greedy_replace(
            graph, seeds, budget, theta, evaluator, fill_budget
        )
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    if sampler_factory is None:
        sampler: EdgeSampler = ICSampler(unified.graph, gen)
    else:
        sampler = sampler_factory(unified.graph, gen)
    source = unified.source

    blockers: list[int] = []
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    estimated = 0.0

    # ------------------------------------------------------------------
    # Phase 1: greedy over the source's out-neighbours (Lines 1-10).
    # ------------------------------------------------------------------
    candidate_blockers = set(unified.graph.out_neighbors(source))
    phase1_rounds = min(len(candidate_blockers), budget)
    for _ in range(phase1_rounds):
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        x = _argmax(result.delta, candidate_blockers)
        if x < 0:
            break
        candidate_blockers.discard(x)
        sampler.block([x])
        blockers.append(x)
        round_spreads.append(result.spread)
        round_deltas.append(float(result.delta[x]))
        estimated = result.spread - float(result.delta[x])

    # ------------------------------------------------------------------
    # Phase 1b: out-degree smaller than the budget — fill greedily over
    # all candidates (see module docstring).
    # ------------------------------------------------------------------
    if fill_budget:
        while len(blockers) < min(budget, unified.graph.n - 1):
            result = decrease_es_computation(sampler, source, theta, rng=gen)
            exclude = set(blockers)
            exclude.add(source)
            x = result.best_vertex(exclude=exclude)
            if x < 0 or result.delta[x] <= 0.0:
                estimated = result.spread
                round_spreads.append(result.spread)
                break
            sampler.block([x])
            blockers.append(x)
            round_spreads.append(result.spread)
            round_deltas.append(float(result.delta[x]))
            estimated = result.spread - float(result.delta[x])

    # ------------------------------------------------------------------
    # Phase 2: replacement in reverse insertion order (Lines 11-20).
    # ------------------------------------------------------------------
    for position in range(len(blockers) - 1, -1, -1):
        u = blockers[position]
        sampler.unblock([u])  # B <- B \ {u}
        others = [b for b in blockers if b != u]
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        exclude = set(others)
        exclude.add(source)
        x = result.best_vertex(exclude=exclude)
        if x < 0:
            x = u
        sampler.block([x])
        blockers[position] = x
        round_spreads.append(result.spread)
        round_deltas.append(float(result.delta[x]))
        estimated = result.spread - float(result.delta[x])
        if x == u:
            # early termination: the incumbent is already the best
            # choice, so earlier blockers would not change either
            break

    if not round_spreads:
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        round_spreads.append(result.spread)
        estimated = result.spread

    blockers_original = unified.blockers_to_original(blockers)
    estimated_original = unified.spread_to_original(estimated)
    if evaluator is not None:
        estimated_original = evaluator.expected_spread(
            list(seeds), theta, blockers_original
        )
    return BlockingResult(
        blockers=blockers_original,
        estimated_spread=estimated_original,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )


def _lazy_greedy_replace(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int,
    evaluator: "SpreadEvaluator",
    fill_budget: bool,
) -> BlockingResult:
    """GreedyReplace's three phases driven by an evaluator.

    Mirrors the eager algorithm on the *original* graph (multi-seed
    handling is the evaluator's job, so blockers come back as original
    ids): phase 1 CELF-selects over the seeds' out-neighbours, phase 1b
    fills the budget over all candidates, and the replacement phase
    revisits blockers in reverse insertion order against a
    whole-candidate gain sweep.
    """
    seed_list = list(dict.fromkeys(seeds))
    seed_set = set(seed_list)
    gain_fn = make_gain_fn(evaluator, seed_list, theta)

    current = evaluator.expected_spread(seed_list, theta)
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    blockers: list[int] = []

    def take(selection) -> None:
        nonlocal current
        for pick, gain in zip(selection.picks, selection.gains):
            round_spreads.append(current)
            blockers.append(pick)
            round_deltas.append(gain)
            current -= gain

    # ------------------------------------------------------------------
    # Phase 1: greedy over the seeds' out-neighbours — the unified
    # source's out-neighbourhood (Lines 1-10).
    # ------------------------------------------------------------------
    neighbours = sorted(
        {v for s in seed_list for v in graph.out_neighbors(s)} - seed_set
    )
    take(celf_select(neighbours, budget, gain_fn))

    # ------------------------------------------------------------------
    # Phase 1b: out-degree smaller than the budget — fill greedily over
    # all candidates (see module docstring).
    # ------------------------------------------------------------------
    cap = min(budget, graph.n - len(seed_set))
    if fill_budget and len(blockers) < cap:
        pool = [v for v in range(graph.n) if v not in seed_set]
        take(
            celf_select(
                pool, cap - len(blockers), gain_fn, picked=blockers
            )
        )

    # ------------------------------------------------------------------
    # Phase 2: replacement in reverse insertion order (Lines 11-20).
    # ------------------------------------------------------------------
    for position in range(len(blockers) - 1, -1, -1):
        u = blockers[position]
        others = blockers[:position] + blockers[position + 1:]
        spread = evaluator.expected_spread(seed_list, theta, others)
        x, gain = _best_replacement(
            evaluator, gain_fn, seed_list, theta, others, seed_set
        )
        if x < 0:  # no candidate at all: keep the incumbent
            x, gain = u, gain_fn(u, others)
        blockers[position] = x
        round_spreads.append(spread)
        round_deltas.append(gain)
        current = spread - gain
        if x == u:
            # early termination: the incumbent is already the best
            # choice, so earlier blockers would not change either
            break

    if not round_spreads:
        round_spreads.append(current)
    return BlockingResult(
        blockers=blockers,
        estimated_spread=current,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )


def _best_replacement(
    evaluator: "SpreadEvaluator",
    gain_fn: GainFn,
    seeds: Sequence[int],
    theta: int,
    others: Sequence[int],
    seed_set: set[int],
) -> tuple[int, float]:
    """``(vertex, gain)`` maximising the decrease on top of ``others``.

    Reads the whole sweep off ``decrease_estimates`` when the evaluator
    provides one (Algorithm 2's all-candidates-at-once shape, an array
    read for the sketch index); otherwise asks ``gain_fn`` per vertex.
    Ties break toward the smaller id, matching the eager
    ``best_vertex``; returns ``(-1, 0.0)`` when no candidate exists.
    """
    banned = seed_set.union(others)
    sweep = getattr(evaluator, "decrease_estimates", None)
    if sweep is not None:
        delta = np.asarray(sweep(seeds, theta, others), dtype=np.float64)
        masked = delta.copy()
        if banned:
            masked[list(banned)] = -np.inf
        x = int(np.argmax(masked))
        if not np.isfinite(masked[x]):
            return -1, 0.0
        return x, float(delta[x])
    best, best_gain = -1, 0.0
    for v in range(evaluator.csr.n):
        if v in banned:
            continue
        g = gain_fn(v, others)
        if best < 0 or g > best_gain:
            best, best_gain = v, g
    return best, best_gain


def _argmax(delta, candidates: set[int]) -> int:
    """Candidate with the largest estimated decrease (smallest id on
    ties); -1 when no candidate has positive decrease.

    Vectorized over the candidate set: ``np.argmax`` on the ascending
    candidate array returns the first maximum, matching the historical
    ascending scan's smallest-id tie break.
    """
    if not candidates:
        return -1
    cand = np.asarray(sorted(candidates), dtype=np.int64)
    values = np.asarray(delta, dtype=np.float64)[cand]
    best = int(np.argmax(values))
    if values[best] <= 0.0:
        return -1
    return int(cand[best])
