"""Algorithm 4: GreedyReplace (GR).

Motivation (Section V-D): with an unlimited budget the optimal blocking
is exactly the seeds' out-neighbours, yet plain greedy may spend its
budget on "deep" vertices and miss them (Example 3 / Table III).  GR
therefore

1. greedily picks ``min(d_out(s), b)`` blockers restricted to the
   source's out-neighbours, then
2. revisits the blockers in reverse insertion order and greedily
   *replaces* each with the globally best vertex, terminating early the
   first time the incumbent survives its own replacement round.

When the source has fewer than ``b`` out-neighbours the remaining
budget is spent with AdvancedGreedy rounds over all candidates —
the paper's pseudocode leaves this case implicit; filling the budget is
the natural reading of "returns the set B of b blockers".
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import EdgeSampler, ICSampler
from .advanced_greedy import BlockingResult, SamplerFactory
from .decrease import decrease_es_computation
from .problem import unify_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = ["greedy_replace"]


def greedy_replace(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
    sampler_factory: SamplerFactory | None = None,
    fill_budget: bool = True,
    evaluator: "SpreadEvaluator | None" = None,
) -> BlockingResult:
    """GreedyReplace blocker selection (Algorithm 4).

    Parameters mirror :func:`~repro.core.advanced_greedy.advanced_greedy`;
    ``fill_budget=False`` reproduces the paper's literal pseudocode,
    which leaves the blocker set smaller than ``b`` when the source has
    fewer than ``b`` out-neighbours.  ``evaluator`` (if given, built on
    the original graph) re-estimates the final blocker set's spread
    independently over ``theta`` rounds; selection is unchanged.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    if sampler_factory is None:
        sampler: EdgeSampler = ICSampler(unified.graph, gen)
    else:
        sampler = sampler_factory(unified.graph, gen)
    source = unified.source

    blockers: list[int] = []
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    estimated = 0.0

    # ------------------------------------------------------------------
    # Phase 1: greedy over the source's out-neighbours (Lines 1-10).
    # ------------------------------------------------------------------
    candidate_blockers = set(unified.graph.out_neighbors(source))
    phase1_rounds = min(len(candidate_blockers), budget)
    for _ in range(phase1_rounds):
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        x = _argmax(result.delta, candidate_blockers)
        if x < 0:
            break
        candidate_blockers.discard(x)
        sampler.block([x])
        blockers.append(x)
        round_spreads.append(result.spread)
        round_deltas.append(float(result.delta[x]))
        estimated = result.spread - float(result.delta[x])

    # ------------------------------------------------------------------
    # Phase 1b: out-degree smaller than the budget — fill greedily over
    # all candidates (see module docstring).
    # ------------------------------------------------------------------
    if fill_budget:
        while len(blockers) < min(budget, unified.graph.n - 1):
            result = decrease_es_computation(sampler, source, theta, rng=gen)
            exclude = set(blockers)
            exclude.add(source)
            x = result.best_vertex(exclude=exclude)
            if x < 0 or result.delta[x] <= 0.0:
                estimated = result.spread
                round_spreads.append(result.spread)
                break
            sampler.block([x])
            blockers.append(x)
            round_spreads.append(result.spread)
            round_deltas.append(float(result.delta[x]))
            estimated = result.spread - float(result.delta[x])

    # ------------------------------------------------------------------
    # Phase 2: replacement in reverse insertion order (Lines 11-20).
    # ------------------------------------------------------------------
    for position in range(len(blockers) - 1, -1, -1):
        u = blockers[position]
        sampler.unblock([u])  # B <- B \ {u}
        others = [b for b in blockers if b != u]
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        exclude = set(others)
        exclude.add(source)
        x = result.best_vertex(exclude=exclude)
        if x < 0:
            x = u
        sampler.block([x])
        blockers[position] = x
        round_spreads.append(result.spread)
        round_deltas.append(float(result.delta[x]))
        estimated = result.spread - float(result.delta[x])
        if x == u:
            # early termination: the incumbent is already the best
            # choice, so earlier blockers would not change either
            break

    if not round_spreads:
        result = decrease_es_computation(sampler, source, theta, rng=gen)
        round_spreads.append(result.spread)
        estimated = result.spread

    blockers_original = unified.blockers_to_original(blockers)
    estimated_original = unified.spread_to_original(estimated)
    if evaluator is not None:
        estimated_original = evaluator.expected_spread(
            list(seeds), theta, blockers_original
        )
    return BlockingResult(
        blockers=blockers_original,
        estimated_spread=estimated_original,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )


def _argmax(delta, candidates: set[int]) -> int:
    """Candidate with the largest estimated decrease (smallest id on
    ties); -1 when no candidate has positive decrease."""
    best = -1
    best_value = 0.0
    values = delta.tolist()
    for u in sorted(candidates):
        if values[u] > best_value:
            best = u
            best_value = values[u]
    return best
