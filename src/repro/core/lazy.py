"""CELF-style lazy evaluation for the greedy blocker loops.

Every greedy solver in :mod:`repro.core` repeats the same inner
question — "which candidate's marginal spread decrease is largest right
now?" — and the naive answer re-evaluates every candidate every round.
CELF (Leskovec et al., KDD 2007) keeps the previous round's gains in a
max-heap as optimistic bounds and re-evaluates a candidate only when it
surfaces with a stale bound; under diminishing returns the top of the
heap is re-checked a handful of times per round instead of ``n``.

IMIN's objective is **not** submodular (Theorem 3 of the paper), so a
stale bound can occasionally *under*-state a gain and lazy selection is
a heuristic rather than an exact replay of exhaustive greedy — the same
trade the paper makes by running greedy on a non-submodular objective
at all.  In practice the two agree on the benchmark graphs; the
cross-validation tests pin that down on the toy instances.

The machinery is evaluator-agnostic: :func:`make_gain_fn` asks the
evaluator's O(1) :meth:`~repro.engine.sketch.SketchIndex.marginal_gain`
when it has one and falls back to two ``expected_spread`` calls (with
the current spread cached per blocker set) otherwise.  Correct for any
:class:`~repro.engine.evaluator.SpreadEvaluator`; transformative for
the sketch index, where a re-check costs an array lookup.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TYPE_CHECKING

from ..obs import global_registry, span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = [
    "GainFn",
    "LazySelection",
    "celf_select",
    "make_gain_fn",
    "resolve_lazy",
    "supports_marginal_gain",
]


class GainFn(Protocol):
    """Marginal spread decrease of blocking ``v`` on top of ``picked``."""

    def __call__(self, v: int, picked: Sequence[int]) -> float: ...


@dataclass(frozen=True)
class LazySelection:
    """Outcome of one :func:`celf_select` run.

    ``picks``/``gains`` are aligned; ``evaluations`` counts gain-oracle
    calls — the cost driver that lazy evaluation exists to shrink.
    """

    picks: list[int]
    gains: list[float]
    evaluations: int


def supports_marginal_gain(evaluator: object) -> bool:
    """True when ``evaluator`` answers marginal gains directly (the
    sketch index) — the signal the solvers use to default to lazy."""
    return callable(getattr(evaluator, "marginal_gain", None))


def resolve_lazy(
    evaluator: object,
    sampler_factory: object,
    lazy: bool | None,
) -> bool:
    """Shared guard of the sampled-graph solvers' ``lazy`` parameter.

    ``None`` auto-enables lazy selection exactly when the evaluator
    answers ``marginal_gain`` directly; an engaged lazy path requires
    an evaluator and excludes ``sampler_factory`` (which only shapes
    the sampling path).
    """
    if lazy is None:
        lazy = supports_marginal_gain(evaluator)
    if lazy:
        if evaluator is None:
            raise ValueError("lazy selection requires an evaluator")
        if sampler_factory is not None:
            raise ValueError(
                "lazy selection queries the evaluator's diffusion "
                "model; sampler_factory only applies to the sampling "
                "path (lazy=False)"
            )
    return lazy


def make_gain_fn(
    evaluator: "SpreadEvaluator",
    seeds: Sequence[int],
    rounds: int,
) -> GainFn:
    """Marginal-gain oracle over ``evaluator`` for a fixed query shape.

    With a sketch-style evaluator the gain is a direct
    ``marginal_gain`` query.  Otherwise it is
    ``spread(picked) - spread(picked + [v])`` with ``spread(picked)``
    memoised for the most recent blocker set, so a CELF round of ``k``
    re-checks costs ``k + 1`` spread evaluations, not ``2k``.
    """
    seed_list = list(seeds)
    if supports_marginal_gain(evaluator):
        sweep = getattr(evaluator, "decrease_estimates", None)
        if sweep is not None:
            # bulk fast path: one whole-candidate sweep per blocker
            # set, memoised for the most recent one — CELF's initial
            # heap build and every same-round re-check become plain
            # array reads instead of per-vertex evaluator calls
            sweep_cache: dict[tuple[int, ...], object] = {}

            def sweep_gains(picked: Sequence[int]):
                key = tuple(picked)
                gains = sweep_cache.get(key)
                if gains is None:
                    sweep_cache.clear()
                    gains = sweep(seed_list, rounds, list(picked))
                    sweep_cache[key] = gains
                return gains

            def gain(v: int, picked: Sequence[int]) -> float:
                return float(sweep_gains(picked)[v])

            # expose the whole-candidate sweep so celf_select can
            # build its initial heap from one array instead of one
            # Python call per candidate (one rebase total; no
            # per-vertex re-query)
            gain.bulk = sweep_gains
            return gain

        def gain(v: int, picked: Sequence[int]) -> float:
            return evaluator.marginal_gain(
                v, seed_list, rounds, list(picked)
            )

        return gain

    cache: dict[tuple[int, ...], float] = {}

    def gain(v: int, picked: Sequence[int]) -> float:
        key = tuple(picked)
        current = cache.get(key)
        if current is None:
            current = evaluator.expected_spread(
                seed_list, rounds, list(picked)
            )
            cache.clear()  # only the newest blocker set is ever re-read
            cache[key] = current
        return current - evaluator.expected_spread(
            seed_list, rounds, list(picked) + [v]
        )

    return gain


def celf_select(
    candidates: Sequence[int],
    budget: int,
    gain_fn: GainFn,
    picked: Sequence[int] | None = None,
    stop_when_exhausted: bool = True,
) -> LazySelection:
    """Pick up to ``budget`` blockers by lazily re-checked greedy.

    Parameters
    ----------
    candidates:
        Candidate pool (need not exclude ``picked``; duplicates and
        already-picked vertices are skipped).
    gain_fn:
        Called as ``gain_fn(v, picked_so_far)``; ``picked_so_far``
        includes the ``picked`` prefix.
    picked:
        Blockers already committed (GreedyReplace's fill phase
        continues a phase-1 selection).  Not counted against
        ``budget``; not included in the returned ``picks``.
    stop_when_exhausted:
        Stop early once the best *fresh* gain is <= 0 — blocking more
        vertices cannot help (matches the eager solvers).

    Ties break toward the smaller vertex id, matching the eager
    argmax order.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    with span("celf.select"):
        base = list(picked) if picked is not None else []
        taken = set(base)
        pool = [v for v in dict.fromkeys(candidates) if v not in taken]

        picks: list[int] = []
        gains: list[float] = []
        evaluations = 0
        # heap of (-gain, vertex, round-the-gain-was-computed-in); an
        # entry whose round stamp is current is fresh (no candidate's
        # gain can have changed since) and wins the round outright
        bulk = getattr(gain_fn, "bulk", None)
        if bulk is not None and pool:
            # whole-candidate sweep: one evaluator query (one rebase)
            # seeds the entire heap — same values the per-vertex loop
            # would read, so picks and tie-breaks are unchanged
            sweep = bulk(base)
            evaluations += len(pool)
            heap = [(-float(sweep[v]), v, 0) for v in pool]
        else:
            heap = []
            for v in pool:
                g = gain_fn(v, base)
                evaluations += 1
                heap.append((-g, v, 0))
        heapq.heapify(heap)

        while heap and len(picks) < budget:
            neg_gain, v, stamp = heapq.heappop(heap)
            if stamp != len(picks):
                g = gain_fn(v, base + picks)
                evaluations += 1
                heapq.heappush(heap, (-g, v, len(picks)))
                continue
            if -neg_gain <= 0.0 and stop_when_exhausted:
                break
            picks.append(v)
            gains.append(-neg_gain)

    global_registry().counter(
        "repro_celf_evaluations_total",
        "Gain-oracle calls made by CELF lazy selection",
    ).inc(evaluations)
    return LazySelection(picks=picks, gains=gains, evaluations=evaluations)
