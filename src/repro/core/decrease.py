"""Algorithm 2: DecreaseESComputation.

The paper's key efficiency contribution: estimate, for *every*
candidate blocker ``u`` at once, the decrease of expected spread caused
by blocking ``u``.  Per sampled graph ``g``:

1. draw the live-edge graph (one vectorised coin flip per edge);
2. build the dominator tree of the part of ``g`` reachable from the
   source with Lengauer–Tarjan;
3. the subtree size of ``u`` equals ``sigma->u(s, g)`` (Theorem 6), and
   averaging over ``theta`` samples estimates the spread decrease
   (Theorem 4, with the Theorem 5 error guarantee).

The same pass also yields ``sigma(s, g)`` (= the reachable count), so a
spread estimate of the *current* graph comes for free — used by the
greedy loops for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from ..dominator import dominator_tree_arrays, subtree_sizes
from ..graph import CSRGraph, DiGraph
from ..rng import RngLike
from ..sampling import adjacency_from_edges, EdgeSampler, ICSampler

__all__ = ["DecreaseResult", "decrease_es_computation"]


@dataclass(frozen=True)
class DecreaseResult:
    """Output of Algorithm 2.

    Attributes
    ----------
    delta:
        ``float64[n]``; ``delta[u]`` estimates the decrease of expected
        spread if ``u`` were blocked (0 for the source, blocked and
        unreachable vertices).
    spread:
        Estimate of the current expected spread ``E({s}, G[V \\ B])``
        from the same samples (Lemma 1).
    theta:
        Number of sampled graphs used.
    """

    delta: np.ndarray
    spread: float
    theta: int

    def best_vertex(self, exclude: Iterable[int] = ()) -> int:
        """Vertex with the largest estimated decrease, skipping
        ``exclude``; ties break towards the smaller id (argmax order).

        Vectorized: the greedy loops call this once per round, and the
        historical Python scan over all ``n`` estimates was a
        measurable slice of every eager round.  ``np.argmax`` returns
        the first maximum, which reproduces the scan's smallest-id tie
        break exactly.
        """
        n = self.delta.shape[0]
        keep = np.ones(n, dtype=bool)
        for u in exclude:
            if 0 <= u < n:
                keep[u] = False
        candidates = np.flatnonzero(keep)
        if candidates.shape[0] == 0:
            return -1
        return int(candidates[np.argmax(self.delta[candidates])])


def decrease_es_computation(
    graph_or_sampler: Union[DiGraph, CSRGraph, EdgeSampler],
    source: int,
    theta: int,
    rng: RngLike = None,
    blocked: Iterable[int] = (),
) -> DecreaseResult:
    """Estimate every vertex's expected-spread decrease (Algorithm 2).

    Parameters
    ----------
    graph_or_sampler:
        Either a graph (an :class:`~repro.sampling.ICSampler` is created
        internally) or a pre-built :class:`~repro.sampling.EdgeSampler`
        — the greedy loops pass their long-lived sampler so blocking
        state and probability tables persist across rounds, and the
        triggering-model extension passes an LT sampler.
    source:
        The (unified) seed vertex.
    theta:
        Number of sampled graphs; see
        :func:`repro.sampling.required_samples` for the Theorem 5
        guidance.
    blocked:
        Extra vertices to block for this call (merged into the
        sampler's state).
    """
    if theta <= 0:
        raise ValueError("theta must be positive")
    if isinstance(graph_or_sampler, (DiGraph, CSRGraph)):
        sampler: EdgeSampler = ICSampler(graph_or_sampler, rng)
    else:
        sampler = graph_or_sampler
    blocked_list = list(blocked)
    if blocked_list:
        if source in blocked_list:
            raise ValueError("the source cannot be blocked")
        sampler.block(blocked_list)

    n = sampler.csr.n
    if not 0 <= source < n:
        raise IndexError(f"source {source} is not a vertex")

    delta = np.zeros(n, dtype=np.float64)
    spread_total = 0
    for _ in range(theta):
        succ = adjacency_from_edges(
            sampler.csr, sampler.sample_surviving_edges()
        )
        order, idom = dominator_tree_arrays(succ, source)
        spread_total += len(order)
        if len(order) > 1:
            sizes = subtree_sizes(idom)
            np.add.at(
                delta,
                np.asarray(order[1:], dtype=np.int64),
                np.asarray(sizes[1:], dtype=np.float64),
            )
    delta /= theta
    return DecreaseResult(
        delta=delta, spread=spread_total / theta, theta=theta
    )
