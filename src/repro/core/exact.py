"""Exhaustive optimal blocker search (the paper's "Exact" algorithm).

Enumerates every size-``b`` combination of candidate blockers and keeps
the one with the smallest expected spread.  Because the spread function
is monotone in the blocker set (Theorem 2), searching exactly ``b``
blockers suffices for "at most ``b``".  Spread is evaluated exactly by
possible-world enumeration when the graph has few probabilistic edges
(as in the Tables V/VI subgraphs) and by Monte-Carlo otherwise — the
paper's Exact uses MCS with r = 10^4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Literal, Sequence

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..spread import (
    exact_expected_spread,
    MonteCarloEngine,
    UncertainEdgeLimitError,
)

__all__ = ["ExactResult", "exact_blockers"]


@dataclass(frozen=True)
class ExactResult:
    """Optimal blocker set found by exhaustive search."""

    blockers: tuple[int, ...]
    spread: float
    combinations_checked: int
    evaluator: str
    """Either ``"exact"`` (world enumeration) or ``"mcs"``."""


def exact_blockers(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    evaluator: Literal["auto", "exact", "mcs"] = "auto",
    rounds: int = 1000,
    rng: RngLike = None,
    candidates: Sequence[int] | None = None,
    max_combinations: int = 2_000_000,
) -> ExactResult:
    """Find the optimal blocker set by exhaustive search.

    Parameters
    ----------
    evaluator:
        ``"exact"`` forces possible-world enumeration (raises on graphs
        with too many probabilistic edges), ``"mcs"`` forces
        Monte-Carlo with ``rounds`` rounds, ``"auto"`` tries exact and
        falls back to MCS.
    max_combinations:
        Safety valve — combination counts beyond this raise instead of
        silently running for hours.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    seed_list = list(seeds)
    seed_set = set(seed_list)
    if candidates is None:
        pool = [v for v in graph.vertices() if v not in seed_set]
    else:
        pool = [v for v in candidates if v not in seed_set]
    size = min(budget, len(pool))

    total = math.comb(len(pool), size)
    if total > max_combinations:
        raise ValueError(
            f"{total} candidate combinations exceed max_combinations="
            f"{max_combinations}; restrict `candidates` or lower the budget"
        )

    mode = evaluator
    if mode in ("auto", "exact"):
        try:
            baseline = exact_expected_spread(graph, seed_list)
            mode = "exact"
        except UncertainEdgeLimitError:
            if evaluator == "exact":
                raise
            mode = "mcs"
    engine = None
    if mode == "mcs":
        engine = MonteCarloEngine(graph, ensure_rng(rng))
        baseline = engine.expected_spread(seed_list, rounds)

    best: tuple[int, ...] = ()
    best_spread = baseline
    checked = 0
    for combo in combinations(pool, size):
        checked += 1
        if mode == "exact":
            spread = exact_expected_spread(graph, seed_list, blocked=combo)
        else:
            assert engine is not None
            spread = engine.expected_spread(seed_list, rounds, combo)
        if spread < best_spread:
            best = combo
            best_spread = spread

    return ExactResult(
        blockers=best,
        spread=best_spread,
        combinations_checked=checked,
        evaluator=mode,
    )
