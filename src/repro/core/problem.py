"""IMIN problem definition and the multi-seed unification transform.

Problem statement (Section III-B): given ``G``, edge probabilities, a
seed set ``S`` and budget ``b``, find ``B ⊆ V \\ S`` with ``|B| <= b``
minimising ``E(S, G[V \\ B])``.

All paper algorithms are presented for a single seed; Section V's
"From Multiple Seeds to One Seed" transform replaces the seed set by a
unified source ``s'``: for each vertex ``u`` fed by seeds with
probabilities ``p_1 .. p_h``, the seed edges are replaced by one edge
``s' -> u`` with probability ``1 - prod(1 - p_i)``.  Because an active
vertex gets exactly one activation attempt per out-edge, this preserves
the distribution of the cascade over non-seed vertices, hence the
optimal blocker set.  :func:`unify_seeds` implements the transform and
records the bookkeeping needed to translate blockers and spreads back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..graph import DiGraph

__all__ = ["IMINInstance", "UnifiedProblem", "unify_seeds"]


@dataclass(frozen=True)
class IMINInstance:
    """An influence-minimization instance.

    ``graph`` carries the propagation probabilities on its edges;
    ``seeds`` are the misinformation sources; ``budget`` is the maximum
    number of blockers.
    """

    graph: DiGraph
    seeds: tuple[int, ...]
    budget: int

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if not self.seeds:
            raise ValueError("at least one seed is required")
        seen = set()
        for s in self.seeds:
            if not 0 <= s < self.graph.n:
                raise IndexError(f"seed {s} is not a vertex")
            if s in seen:
                raise ValueError(f"duplicate seed {s}")
            seen.add(s)
        candidates = self.graph.n - len(self.seeds)
        if self.budget > candidates:
            # an oversized budget is a caller error (typo'd budget,
            # wrong graph), not something to paper over: silently
            # mutating a frozen dataclass hid the mismatch from every
            # downstream consumer comparing budgets across runs
            raise ValueError(
                f"budget {self.budget} exceeds the {candidates} "
                "non-seed vertices available as blockers"
            )

    @property
    def candidates(self) -> list[int]:
        """Vertices eligible as blockers (``V \\ S``)."""
        seed_set = set(self.seeds)
        return [v for v in self.graph.vertices() if v not in seed_set]


@dataclass(frozen=True)
class UnifiedProblem:
    """Result of the multi-seed unification.

    Attributes
    ----------
    graph:
        The transformed graph whose only seed is ``source``.
    source:
        The unified seed vertex id in ``graph``.
    seeds:
        The original seed tuple.
    to_original:
        ``to_original[i]`` is the original id of the unified vertex
        ``i`` (``None`` for a synthetic source).
    from_original:
        Inverse mapping for non-seed vertices.
    spread_offset:
        ``E_original = E_unified + spread_offset``; equals
        ``len(seeds) - 1`` because the ``|S|`` always-active seeds
        collapse into one always-active source.
    """

    graph: DiGraph
    source: int
    seeds: tuple[int, ...]
    to_original: tuple[int | None, ...]
    from_original: dict[int, int] = field(repr=False)
    spread_offset: float

    def blockers_to_original(self, blockers: Iterable[int]) -> list[int]:
        """Translate unified blocker ids back to original ids."""
        out = []
        for b in blockers:
            original = self.to_original[b]
            if original is None:
                raise ValueError("the unified source cannot be a blocker")
            out.append(original)
        return out

    def spread_to_original(self, unified_spread: float) -> float:
        return unified_spread + self.spread_offset


def unify_seeds(graph: DiGraph, seeds: Sequence[int]) -> UnifiedProblem:
    """Collapse ``seeds`` into a single source (Section V transform).

    A single seed is returned as-is (identity mapping, zero offset); a
    multi-seed instance gets a rebuilt graph where the source occupies
    the last vertex id.
    """
    seed_tuple = tuple(dict.fromkeys(seeds))
    if not seed_tuple:
        raise ValueError("at least one seed is required")
    for s in seed_tuple:
        if not 0 <= s < graph.n:
            raise IndexError(f"seed {s} is not a vertex")

    if len(seed_tuple) == 1:
        identity = tuple(range(graph.n))
        return UnifiedProblem(
            graph=graph,
            source=seed_tuple[0],
            seeds=seed_tuple,
            to_original=identity,
            from_original={v: v for v in graph.vertices()},
            spread_offset=0.0,
        )

    seed_set = set(seed_tuple)
    non_seeds = [v for v in graph.vertices() if v not in seed_set]
    from_original = {v: i for i, v in enumerate(non_seeds)}
    source = len(non_seeds)

    unified = DiGraph(source + 1)
    for v in non_seeds:
        new_v = from_original[v]
        for w, p in graph.successors(v).items():
            if w not in seed_set:
                unified.add_edge(new_v, from_original[w], p)
    # noisy-or combination of all seed -> u edges into source -> u
    for s in seed_tuple:
        for u, p in graph.successors(s).items():
            if u not in seed_set:
                unified.combine_edge(source, from_original[u], p)

    to_original: list[int | None] = [None] * (source + 1)
    for v, new_v in from_original.items():
        to_original[new_v] = v

    return UnifiedProblem(
        graph=unified,
        source=source,
        seeds=seed_tuple,
        to_original=tuple(to_original),
        from_original=from_original,
        spread_offset=float(len(seed_tuple) - 1),
    )
