"""Optimal influence minimization on out-trees by dynamic programming.

Yan et al. (cited in the related work) give an optimal DP for the IMIN
problem when the network is a tree.  On an out-tree rooted at the seed
there is exactly one path to each vertex, so the activation probability
of ``v`` is the product of edge probabilities along its path, and the
spread removed by blocking ``u`` (with no other blocker on its path) is
the total path-probability mass of ``u``'s subtree.  Choosing at most
``b`` blockers then becomes a tree knapsack: maximise the removed mass
over antichains of size <= b (an ancestor of a chosen vertex subsumes
it).

``f[u][j]`` = maximum mass removable from ``u``'s subtree with ``j``
blockers, either by blocking ``u`` itself (all of ``W(u)``) or by
distributing the budget over children.  Complexity ``O(n * b^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import DiGraph, is_out_tree
from ..spread import exact_spread_dag

__all__ = ["TreeDPResult", "optimal_tree_blockers"]


@dataclass(frozen=True)
class TreeDPResult:
    """Optimal blockers on a tree with the exact resulting spread."""

    blockers: tuple[int, ...]
    spread: float
    removed_mass: float


def optimal_tree_blockers(
    tree: DiGraph, seed: int, budget: int
) -> TreeDPResult:
    """Optimal IMIN solution on an out-tree rooted at ``seed``.

    Raises ``ValueError`` when the graph is not an out-tree rooted at
    the seed.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if not is_out_tree(tree, seed):
        raise ValueError("graph must be an out-tree rooted at the seed")
    n = tree.n
    b = min(budget, max(0, n - 1))

    # post-order over the tree (children before parents)
    order: list[int] = []
    stack = [seed]
    while stack:
        u = stack.pop()
        order.append(u)
        stack.extend(tree.successors(u))
    order.reverse()

    # path probability from the seed and subtree mass W(u)
    path_prob = [0.0] * n
    path_prob[seed] = 1.0
    for u in reversed(order):  # parents before children
        for v, p in tree.successors(u).items():
            path_prob[v] = path_prob[u] * p
    mass = [0.0] * n
    for u in order:  # children before parents
        mass[u] = path_prob[u] + sum(
            mass[v] for v in tree.successors(u)
        )

    # f[u] = list over budget 0..b of (value, choice) where choice
    # records either ("self",) or the child budget split for traceback
    NEG = float("-inf")
    f: dict[int, list[float]] = {}
    picks: dict[int, list[tuple]] = {}
    for u in order:
        children = list(tree.successors(u))
        best = [0.0] * (b + 1)
        choice: list[tuple] = [("none",)] * (b + 1)
        # knapsack over children
        combined = [0.0]
        combined_choice: list[tuple[tuple[int, int], ...]] = [()]
        for child in children:
            new_len = min(b, len(combined) - 1 + b) + 1
            new = [NEG] * new_len
            new_choice: list[tuple[tuple[int, int], ...]] = [()] * new_len
            for used in range(len(combined)):
                for extra in range(b - used + 1):
                    value = combined[used] + f[child][extra]
                    if value > new[used + extra]:
                        new[used + extra] = value
                        new_choice[used + extra] = combined_choice[used] + (
                            (child, extra),
                        )
            combined = new
            combined_choice = new_choice
        for j in range(b + 1):
            if j < len(combined) and combined[j] > best[j]:
                best[j] = combined[j]
                choice[j] = ("children", combined_choice[j])
            if j >= 1 and u != seed and mass[u] > best[j]:
                best[j] = mass[u]
                choice[j] = ("self",)
        # enforce monotonicity in the budget
        for j in range(1, b + 1):
            if best[j - 1] > best[j]:
                best[j] = best[j - 1]
                choice[j] = choice[j - 1]
        f[u] = best
        picks[u] = choice

    # traceback
    blockers: list[int] = []
    frontier: list[tuple[int, int]] = [(seed, b)]
    while frontier:
        u, j = frontier.pop()
        # follow the monotonicity copy-down to the budget actually used
        while j > 0 and f[u][j] == f[u][j - 1] and picks[u][j] == picks[u][j - 1]:
            j -= 1
        kind = picks[u][j]
        if kind[0] == "self":
            blockers.append(u)
        elif kind[0] == "children":
            for child, extra in kind[1]:
                if extra > 0 and f[child][extra] > 0.0:
                    frontier.append((child, extra))

    removed = f[seed][b]
    spread = exact_spread_dag(tree, seed, blocked=blockers)
    return TreeDPResult(
        blockers=tuple(sorted(blockers)),
        spread=spread,
        removed_mass=removed,
    )
