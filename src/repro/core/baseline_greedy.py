"""Algorithm 1: BaselineGreedy (BG) — the state of the art before AG.

Each greedy round enumerates every candidate blocker, estimates the
blocked spread with Monte-Carlo simulation, and keeps the candidate
with the largest decrease.  The cost is ``O(b * n * r * m)``, which is
exactly why the paper's Figures 7/8 show it timing out on most
datasets; we reproduce it faithfully as the efficiency baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..spread import MonteCarloEngine
from .lazy import celf_select, make_gain_fn, supports_marginal_gain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = ["BaselineGreedyResult", "baseline_greedy"]


@dataclass(frozen=True)
class BaselineGreedyResult:
    """Blockers plus the MCS spread trace of the greedy selection."""

    blockers: list[int]
    estimated_spread: float
    round_spreads: list[float]
    evaluations: int
    """Number of expected-spread evaluations performed (the cost driver)."""


def baseline_greedy(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    rounds: int = 1000,
    rng: RngLike = None,
    candidates: Sequence[int] | None = None,
    evaluator: "SpreadEvaluator | None" = None,
    lazy: bool | None = None,
) -> BaselineGreedyResult:
    """BaselineGreedy with Monte-Carlo spread estimation (Algorithm 1).

    Parameters
    ----------
    rounds:
        Monte-Carlo rounds ``r`` per spread evaluation (the paper uses
        10^4 in C++; pure-Python callers should budget carefully — the
        total work is ``budget * len(candidates) * rounds`` cascades).
    candidates:
        Restrict the candidate pool (defaults to all non-seed
        vertices).  Used by the benchmark harness to keep BG's runtime
        measurable on the larger stand-ins, mirroring how the paper
        caps BG with a 24-hour timeout.
    evaluator:
        Spread oracle for the inner loop (see
        :func:`repro.engine.make_evaluator`).  Defaults to a fresh
        scalar :class:`~repro.spread.MonteCarloEngine`, which
        reproduces the historical fixed-seed results exactly; the
        vectorized/parallel/pooled backends trade the RNG stream for
        throughput.
    lazy:
        CELF-style lazy evaluation (see :mod:`repro.core.lazy`):
        marginal gains are priority-queued and re-checked only when
        stale, instead of every candidate being re-simulated every
        round.  ``None`` (default) enables it exactly when the
        evaluator answers ``marginal_gain`` directly (the sketch
        index); pass ``True``/``False`` to force either path.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    seed_list = list(seeds)
    seed_set = set(seed_list)
    engine = (
        MonteCarloEngine(graph, ensure_rng(rng))
        if evaluator is None
        else evaluator
    )
    if candidates is None:
        pool = [v for v in range(engine.csr.n) if v not in seed_set]
    else:
        pool = [v for v in candidates if v not in seed_set]

    blockers: list[int] = []
    round_spreads: list[float] = []
    evaluations = 0
    current = engine.expected_spread(seed_list, rounds)
    evaluations += 1

    if lazy is None:
        lazy = supports_marginal_gain(engine)
    if lazy:
        gain_fn = make_gain_fn(engine, seed_list, rounds)
        # BG's eager loop always spends the budget (it minimises the
        # blocked spread, never tests positivity), so the lazy replay
        # does too
        selection = celf_select(
            pool, budget, gain_fn, stop_when_exhausted=False
        )
        for pick, gain in zip(selection.picks, selection.gains):
            round_spreads.append(current)
            blockers.append(pick)
            # gain was measured as spread(B) - spread(B + [pick]) on
            # the evaluator's worlds, so this is the same estimate the
            # eager loop would have recorded
            current -= gain
        return BaselineGreedyResult(
            blockers=blockers,
            estimated_spread=current,
            round_spreads=round_spreads,
            evaluations=evaluations + selection.evaluations,
        )

    for _ in range(min(budget, len(pool))):
        round_spreads.append(current)
        best = -1
        best_spread = float("inf")
        for u in pool:
            if u in blockers:
                continue
            spread = engine.expected_spread(
                seed_list, rounds, blockers + [u]
            )
            evaluations += 1
            if spread < best_spread:
                best = u
                best_spread = spread
        if best < 0:
            break
        blockers.append(best)
        current = best_spread

    return BaselineGreedyResult(
        blockers=blockers,
        estimated_spread=current,
        round_spreads=round_spreads,
        evaluations=evaluations,
    )
