"""Unified entry point: ``solve_imin`` dispatches to any algorithm.

Downstream users mostly want "give me blockers, pick the method by
name" — this façade wraps every blocker-selection algorithm in the
library behind one signature and normalises the result, so application
code (and the CLI) need not import each module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

from ..graph import DiGraph
from ..rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator
from .advanced_greedy import advanced_greedy
from .baseline_greedy import baseline_greedy
from .exact import exact_blockers
from .greedy_replace import greedy_replace
from .heuristics import (
    betweenness_blockers,
    degree_blockers,
    out_degree_blockers,
    out_neighbors_blockers,
    pagerank_blockers,
    random_blockers,
)
from .static_greedy import static_sample_greedy

__all__ = ["ALGORITHMS", "SolveResult", "solve_imin"]

ALGORITHMS: tuple[str, ...] = (
    "greedy-replace",
    "advanced-greedy",
    "static-greedy",
    "baseline-greedy",
    "exact",
    "out-neighbors",
    "out-degree",
    "degree",
    "pagerank",
    "betweenness",
    "random",
)


@dataclass(frozen=True)
class SolveResult:
    """Normalised output of :func:`solve_imin`."""

    algorithm: str
    blockers: list[int]
    estimated_spread: float | None
    """The algorithm's own spread estimate where it produces one
    (sampling/greedy methods); ``None`` for pure ranking heuristics —
    evaluate with :func:`repro.bench.evaluate_spread`."""


def solve_imin(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    algorithm: str = "greedy-replace",
    theta: int = 1000,
    mcs_rounds: int = 1000,
    rng: RngLike = None,
    evaluator: "SpreadEvaluator | None" = None,
    lazy: bool | None = None,
) -> SolveResult:
    """Select blockers with the named algorithm.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`.  ``theta`` applies to the
        sampled-graph methods, ``mcs_rounds`` to ``baseline-greedy``
        and the MCS fallback of ``exact``.
    evaluator:
        Optional spread evaluator built on ``graph`` (see
        :func:`repro.engine.make_evaluator`).  ``baseline-greedy``
        uses it as its inner-loop oracle; the sampled-graph greedy
        methods use it to re-estimate the final spread.  Heuristics
        and ``exact`` ignore it.  Default ``None`` reproduces
        historical fixed-seed results exactly.
    lazy:
        CELF-style lazy selection through the evaluator (see
        :mod:`repro.core.lazy`) for the four greedy methods.  ``None``
        (default) auto-enables it exactly when ``evaluator`` answers
        ``marginal_gain`` directly (the sketch index); ``True``/
        ``False`` force either path.  Heuristics and ``exact`` ignore
        it.
    """
    name = algorithm.lower()
    if name == "greedy-replace":
        result = greedy_replace(
            graph, seeds, budget, theta=theta, rng=rng, evaluator=evaluator,
            lazy=lazy,
        )
        return SolveResult(name, result.blockers, result.estimated_spread)
    if name == "advanced-greedy":
        result = advanced_greedy(
            graph, seeds, budget, theta=theta, rng=rng, evaluator=evaluator,
            lazy=lazy,
        )
        return SolveResult(name, result.blockers, result.estimated_spread)
    if name == "static-greedy":
        result = static_sample_greedy(
            graph, seeds, budget, theta=theta, rng=rng, evaluator=evaluator,
            lazy=lazy,
        )
        return SolveResult(name, result.blockers, result.estimated_spread)
    if name == "baseline-greedy":
        result = baseline_greedy(
            graph, seeds, budget, rounds=mcs_rounds, rng=rng,
            evaluator=evaluator, lazy=lazy,
        )
        return SolveResult(name, result.blockers, result.estimated_spread)
    if name == "exact":
        result = exact_blockers(
            graph, seeds, budget, rounds=mcs_rounds, rng=rng
        )
        return SolveResult(name, list(result.blockers), result.spread)
    if name == "out-neighbors":
        blockers = out_neighbors_blockers(
            graph, seeds, budget, theta=theta, rng=rng
        )
        return SolveResult(name, blockers, None)
    if name == "out-degree":
        return SolveResult(
            name, out_degree_blockers(graph, seeds, budget), None
        )
    if name == "degree":
        return SolveResult(name, degree_blockers(graph, seeds, budget), None)
    if name == "pagerank":
        return SolveResult(
            name, pagerank_blockers(graph, seeds, budget), None
        )
    if name == "betweenness":
        return SolveResult(
            name, betweenness_blockers(graph, seeds, budget, rng=rng), None
        )
    if name == "random":
        return SolveResult(
            name, random_blockers(graph, seeds, budget, rng=rng), None
        )
    raise ValueError(
        f"unknown algorithm {algorithm!r}; expected one of "
        + ", ".join(ALGORITHMS)
    )
