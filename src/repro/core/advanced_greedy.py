"""Algorithm 3: AdvancedGreedy (AG).

The greedy blocker selection of the baseline, but driven by the
dominator-tree estimator (Algorithm 2) instead of per-candidate
Monte-Carlo simulation: each round costs ``O(theta * m * alpha(m, n))``
for *all* candidates together, versus ``O(n * r * m)`` for the
baseline.  Effectiveness is unchanged — with ``r = theta`` both
methods average the same live-edge statistic (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TYPE_CHECKING

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import EdgeSampler, ICSampler
from .decrease import decrease_es_computation
from .lazy import celf_select, make_gain_fn, resolve_lazy
from .problem import unify_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = [
    "BlockingResult",
    "advanced_greedy",
    "lazy_blocking",
    "SamplerFactory",
]

SamplerFactory = Callable[[DiGraph, RngLike], EdgeSampler]


@dataclass(frozen=True)
class BlockingResult:
    """A blocker set with its selection trace.

    Attributes
    ----------
    blockers:
        Chosen blockers in insertion order, as *original* vertex ids.
    estimated_spread:
        Sampled-graph estimate of the expected spread *after* blocking,
        on the original-graph scale (all seeds counted).
    round_spreads:
        Estimated spread before each round's pick — ``round_spreads[0]``
        is the unblocked spread.
    round_deltas:
        The estimated decrease attributed to each chosen blocker.
    """

    blockers: list[int]
    estimated_spread: float
    round_spreads: list[float]
    round_deltas: list[float]


def lazy_blocking(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int,
    evaluator: "SpreadEvaluator",
    candidates: Sequence[int] | None = None,
    stop_when_exhausted: bool = True,
) -> BlockingResult:
    """Greedy blocking driven by an evaluator through CELF.

    The lazy counterpart of the AG/SG selection loop: marginal gains
    come from :func:`repro.core.lazy.make_gain_fn` over ``evaluator``
    (O(1) per re-check for the sketch index, two spread queries
    otherwise) and are re-checked only when stale.  Works on the
    *original* graph — multi-seed handling is the evaluator's job — so
    blockers come back as original ids with no unification round-trip.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    seed_list = list(dict.fromkeys(seeds))
    seed_set = set(seed_list)
    if candidates is None:
        pool: Sequence[int] = [
            v for v in range(graph.n) if v not in seed_set
        ]
    else:
        pool = [v for v in candidates if v not in seed_set]

    current = evaluator.expected_spread(seed_list, theta)
    gain_fn = make_gain_fn(evaluator, seed_list, theta)
    selection = celf_select(
        pool, budget, gain_fn, stop_when_exhausted=stop_when_exhausted
    )

    round_spreads = [current]
    round_deltas: list[float] = []
    blockers: list[int] = []
    for pick, gain in zip(selection.picks, selection.gains):
        if blockers:
            round_spreads.append(current)
        blockers.append(pick)
        round_deltas.append(gain)
        current -= gain
    return BlockingResult(
        blockers=blockers,
        estimated_spread=current,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )


def advanced_greedy(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
    sampler_factory: SamplerFactory | None = None,
    stop_when_exhausted: bool = True,
    evaluator: "SpreadEvaluator | None" = None,
    lazy: bool | None = None,
) -> BlockingResult:
    """AdvancedGreedy blocker selection (Algorithm 3).

    Parameters
    ----------
    graph:
        Directed graph with IC probabilities on its edges.
    seeds:
        Misinformation sources (internally unified into one source).
    budget:
        Maximum number of blockers ``b``.
    theta:
        Sampled graphs per greedy round.  The paper uses 10^4 in C++;
        10^2–10^3 reproduces its effectiveness at our scales (the paper
        itself reports < 0.1% quality change from 10^4 to 10^5).
    sampler_factory:
        Optional ``(unified_graph, rng) -> EdgeSampler`` to run the
        greedy under a different diffusion model (Section V-E), e.g.
        ``LinearThresholdSampler``.
    stop_when_exhausted:
        When True (default), stop early once no candidate decreases the
        spread — blocking more vertices cannot help, and the problem
        statement asks for *at most* ``b`` blockers.
    evaluator:
        Optional spread evaluator built on the **original** graph (see
        :func:`repro.engine.make_evaluator`).  When given, the returned
        ``estimated_spread`` is that evaluator's independent estimate
        of the final blocker set over ``theta`` rounds, instead of the
        selection's own sampled-graph estimate.  Selection itself is
        unchanged — unless ``lazy`` engages (below), which hands
        selection to the evaluator too.
    lazy:
        CELF-style lazy selection through the evaluator (see
        :func:`lazy_blocking` and :mod:`repro.core.lazy`).  ``None``
        (default) enables it exactly when the evaluator answers
        ``marginal_gain`` directly (the sketch index, whose per-round
        candidate sweep is an array read); ``True`` forces it for any
        evaluator; ``False`` keeps the sampling path.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if resolve_lazy(evaluator, sampler_factory, lazy):
        return lazy_blocking(
            graph, seeds, budget, theta, evaluator,
            stop_when_exhausted=stop_when_exhausted,
        )
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    if sampler_factory is None:
        sampler: EdgeSampler = ICSampler(unified.graph, gen)
    else:
        sampler = sampler_factory(unified.graph, gen)

    blockers_unified: list[int] = []
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    estimated = 0.0

    for _ in range(min(budget, unified.graph.n - 1)):
        result = decrease_es_computation(
            sampler, unified.source, theta, rng=gen
        )
        exclude = set(blockers_unified)
        exclude.add(unified.source)
        x = result.best_vertex(exclude=exclude)
        if x < 0:
            break
        delta = float(result.delta[x])
        if delta <= 0.0 and stop_when_exhausted:
            round_spreads.append(result.spread)
            estimated = result.spread
            break
        sampler.block([x])
        blockers_unified.append(x)
        round_spreads.append(result.spread)
        round_deltas.append(delta)
        estimated = result.spread - delta

    if not round_spreads:
        # budget 0 (or a single-vertex graph): report the current spread
        result = decrease_es_computation(
            sampler, unified.source, theta, rng=gen
        )
        round_spreads.append(result.spread)
        estimated = result.spread

    blockers = unified.blockers_to_original(blockers_unified)
    estimated_original = unified.spread_to_original(estimated)
    if evaluator is not None:
        estimated_original = evaluator.expected_spread(
            list(seeds), theta, blockers
        )
    return BlockingResult(
        blockers=blockers,
        estimated_spread=estimated_original,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )
