"""Algorithm 3: AdvancedGreedy (AG).

The greedy blocker selection of the baseline, but driven by the
dominator-tree estimator (Algorithm 2) instead of per-candidate
Monte-Carlo simulation: each round costs ``O(theta * m * alpha(m, n))``
for *all* candidates together, versus ``O(n * r * m)`` for the
baseline.  Effectiveness is unchanged — with ``r = theta`` both
methods average the same live-edge statistic (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TYPE_CHECKING

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import EdgeSampler, ICSampler
from .decrease import decrease_es_computation
from .problem import unify_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..engine import SpreadEvaluator

__all__ = ["BlockingResult", "advanced_greedy", "SamplerFactory"]

SamplerFactory = Callable[[DiGraph, RngLike], EdgeSampler]


@dataclass(frozen=True)
class BlockingResult:
    """A blocker set with its selection trace.

    Attributes
    ----------
    blockers:
        Chosen blockers in insertion order, as *original* vertex ids.
    estimated_spread:
        Sampled-graph estimate of the expected spread *after* blocking,
        on the original-graph scale (all seeds counted).
    round_spreads:
        Estimated spread before each round's pick — ``round_spreads[0]``
        is the unblocked spread.
    round_deltas:
        The estimated decrease attributed to each chosen blocker.
    """

    blockers: list[int]
    estimated_spread: float
    round_spreads: list[float]
    round_deltas: list[float]


def advanced_greedy(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
    sampler_factory: SamplerFactory | None = None,
    stop_when_exhausted: bool = True,
    evaluator: "SpreadEvaluator | None" = None,
) -> BlockingResult:
    """AdvancedGreedy blocker selection (Algorithm 3).

    Parameters
    ----------
    graph:
        Directed graph with IC probabilities on its edges.
    seeds:
        Misinformation sources (internally unified into one source).
    budget:
        Maximum number of blockers ``b``.
    theta:
        Sampled graphs per greedy round.  The paper uses 10^4 in C++;
        10^2–10^3 reproduces its effectiveness at our scales (the paper
        itself reports < 0.1% quality change from 10^4 to 10^5).
    sampler_factory:
        Optional ``(unified_graph, rng) -> EdgeSampler`` to run the
        greedy under a different diffusion model (Section V-E), e.g.
        ``LinearThresholdSampler``.
    stop_when_exhausted:
        When True (default), stop early once no candidate decreases the
        spread — blocking more vertices cannot help, and the problem
        statement asks for *at most* ``b`` blockers.
    evaluator:
        Optional spread evaluator built on the **original** graph (see
        :func:`repro.engine.make_evaluator`).  When given, the returned
        ``estimated_spread`` is that evaluator's independent estimate
        of the final blocker set over ``theta`` rounds, instead of the
        selection's own sampled-graph estimate.  Selection itself is
        unchanged.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    if sampler_factory is None:
        sampler: EdgeSampler = ICSampler(unified.graph, gen)
    else:
        sampler = sampler_factory(unified.graph, gen)

    blockers_unified: list[int] = []
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    estimated = 0.0

    for _ in range(min(budget, unified.graph.n - 1)):
        result = decrease_es_computation(
            sampler, unified.source, theta, rng=gen
        )
        exclude = set(blockers_unified)
        exclude.add(unified.source)
        x = result.best_vertex(exclude=exclude)
        if x < 0:
            break
        delta = float(result.delta[x])
        if delta <= 0.0 and stop_when_exhausted:
            round_spreads.append(result.spread)
            estimated = result.spread
            break
        sampler.block([x])
        blockers_unified.append(x)
        round_spreads.append(result.spread)
        round_deltas.append(delta)
        estimated = result.spread - delta

    if not round_spreads:
        # budget 0 (or a single-vertex graph): report the current spread
        result = decrease_es_computation(
            sampler, unified.source, theta, rng=gen
        )
        round_spreads.append(result.spread)
        estimated = result.spread

    blockers = unified.blockers_to_original(blockers_unified)
    estimated_original = unified.spread_to_original(estimated)
    if evaluator is not None:
        estimated_original = evaluator.expected_spread(
            list(seeds), theta, blockers
        )
    return BlockingResult(
        blockers=blockers,
        estimated_spread=estimated_original,
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )
