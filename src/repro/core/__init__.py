"""The IMIN problem and its solution algorithms."""

from .advanced_greedy import (
    advanced_greedy,
    BlockingResult,
    lazy_blocking,
    SamplerFactory,
)
from .baseline_greedy import baseline_greedy, BaselineGreedyResult
from .decrease import decrease_es_computation, DecreaseResult
from .edge_blocking import (
    edge_decrease_computation,
    EdgeBlockingResult,
    greedy_edge_blocking,
)
from .exact import exact_blockers, ExactResult
from .greedy_replace import greedy_replace
from .heuristics import (
    betweenness_blockers,
    degree_blockers,
    out_degree_blockers,
    out_neighbors_blockers,
    pagerank_blockers,
    random_blockers,
)
from .lazy import celf_select, LazySelection, make_gain_fn
from .problem import IMINInstance, unify_seeds, UnifiedProblem
from .solve import ALGORITHMS, solve_imin, SolveResult
from .static_greedy import static_sample_greedy
from .tree_dp import optimal_tree_blockers, TreeDPResult

__all__ = [
    "IMINInstance",
    "UnifiedProblem",
    "unify_seeds",
    "decrease_es_computation",
    "DecreaseResult",
    "advanced_greedy",
    "greedy_replace",
    "lazy_blocking",
    "celf_select",
    "LazySelection",
    "make_gain_fn",
    "BlockingResult",
    "SamplerFactory",
    "baseline_greedy",
    "BaselineGreedyResult",
    "exact_blockers",
    "ExactResult",
    "static_sample_greedy",
    "solve_imin",
    "SolveResult",
    "ALGORITHMS",
    "greedy_edge_blocking",
    "edge_decrease_computation",
    "EdgeBlockingResult",
    "optimal_tree_blockers",
    "TreeDPResult",
    "random_blockers",
    "out_degree_blockers",
    "degree_blockers",
    "pagerank_blockers",
    "out_neighbors_blockers",
    "betweenness_blockers",
]
