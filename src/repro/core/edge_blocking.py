"""Edge-blocking influence minimization (the link-blocking variant).

The related work (Kimura et al., "Minimizing the spread of
contamination by blocking links") studies the edge version of IMIN:
remove at most ``k`` edges to minimize the expected spread.  The
paper's dominator-tree estimator extends naturally to edges through a
standard trick: *subdivide* every edge of the sampled graph with a
middle vertex, so an edge of ``g`` becomes a vertex of ``g'`` and the
vertices its blocking would strand are exactly the original vertices in
its dominator subtree in ``g'``.  One Lengauer–Tarjan pass on ``g'``
therefore scores every candidate edge at once, mirroring Algorithm 2.

This module implements that estimator and the corresponding greedy
(the edge analogue of AdvancedGreedy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dominator import dominator_tree_arrays
from ..graph import DiGraph
from ..rng import ensure_rng, RngLike
from ..sampling import ICSampler
from .problem import unify_seeds

__all__ = [
    "EdgeBlockingResult",
    "edge_decrease_computation",
    "greedy_edge_blocking",
]


@dataclass(frozen=True)
class EdgeBlockingResult:
    """Chosen edges (as ``(u, v)`` pairs in original ids) and trace."""

    edges: list[tuple[int, int]]
    estimated_spread: float
    round_spreads: list[float]
    round_deltas: list[float]


def edge_decrease_computation(
    sampler: ICSampler,
    source: int,
    theta: int,
    blocked_edges: Sequence[int] = (),
) -> tuple[np.ndarray, float]:
    """Expected-spread decrease of blocking each *edge* (CSR position).

    Returns ``(delta, spread)`` where ``delta[j]`` estimates the spread
    decrease if edge ``j`` were removed and ``spread`` estimates the
    current expected spread.  Works by subdividing each surviving edge
    with a middle vertex ``n + j`` and counting only original vertices
    in the dominator subtrees.
    """
    if theta <= 0:
        raise ValueError("theta must be positive")
    csr = sampler.csr
    n = csr.n
    src = csr.src_list
    dst = csr.indices_list
    banned = set(blocked_edges)

    delta = np.zeros(csr.m, dtype=np.float64)
    spread_total = 0
    for _ in range(theta):
        # subdivided sampled graph: u -> (n + j) -> v per surviving edge
        succ: dict[int, list[int]] = {}
        for j in sampler.sample_surviving_edges().tolist():
            if j in banned:
                continue
            u = src[j]
            middle = n + j
            nbrs = succ.get(u)
            if nbrs is None:
                succ[u] = [middle]
            else:
                nbrs.append(middle)
            succ[middle] = [dst[j]]
        order, idom = dominator_tree_arrays(succ, source)
        # weighted subtree sizes: middle vertices weigh 0
        size = len(order)
        weights = [1] * size
        for i in range(1, size):
            if order[i] >= n:
                weights[i] = 0
        for w in range(size - 1, 0, -1):
            weights[idom[w]] += weights[w]
        spread_total += weights[0]
        for i in range(1, size):
            vertex = order[i]
            if vertex >= n:
                delta[vertex - n] += weights[i]
    delta /= theta
    return delta, spread_total / theta


def greedy_edge_blocking(
    graph: DiGraph,
    seeds: Sequence[int],
    budget: int,
    theta: int = 1000,
    rng: RngLike = None,
) -> EdgeBlockingResult:
    """Greedy edge removal driven by the subdivision estimator.

    The edge analogue of AdvancedGreedy: each round scores every edge
    with one estimator pass and removes the best one.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    gen = ensure_rng(rng)
    unified = unify_seeds(graph, seeds)
    sampler = ICSampler(unified.graph, gen)
    csr = sampler.csr
    source = unified.source

    chosen_positions: list[int] = []
    round_spreads: list[float] = []
    round_deltas: list[float] = []
    estimated = 0.0

    for _ in range(max(1, min(budget, csr.m))):
        delta, spread = edge_decrease_computation(
            sampler, source, theta, blocked_edges=chosen_positions
        )
        if not chosen_positions:
            estimated = spread
        if len(chosen_positions) >= budget:
            round_spreads.append(spread)
            break
        values = delta.tolist()
        best = -1
        best_value = 0.0
        for j in range(csr.m):
            if j not in chosen_positions and values[j] > best_value:
                best = j
                best_value = values[j]
        round_spreads.append(spread)
        if best < 0:
            estimated = spread
            break
        chosen_positions.append(best)
        sampler.block_edges([best])
        round_deltas.append(best_value)
        estimated = spread - best_value

    def original_edge(position: int) -> tuple[int, int]:
        u = unified.to_original[int(csr.src[position])]
        v = unified.to_original[int(csr.indices[position])]
        if u is None:
            # edge out of the unified source corresponds to a seed edge;
            # report it as (seed placeholder -1, target)
            return (-1, v)  # type: ignore[return-value]
        return (u, v)  # type: ignore[return-value]

    return EdgeBlockingResult(
        edges=[original_edge(j) for j in chosen_positions],
        estimated_spread=unified.spread_to_original(estimated),
        round_spreads=round_spreads,
        round_deltas=round_deltas,
    )
