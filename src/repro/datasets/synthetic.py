"""Synthetic stand-ins for the paper's eight SNAP datasets.

The experiments of Section VI run on SNAP downloads (Table IV) that are
unavailable offline, so each dataset is replaced by a seeded synthetic
graph with the same directedness, a comparable average degree and a
heavy-tailed degree distribution, at a scale a pure-Python
implementation can sweep (n scaled down, d_avg preserved).  The paper's
qualitative claims — AG/GR beating BG by orders of magnitude, GR
matching or beating AG's quality, scalability in the seed count — are
all driven by degree skew and reachable-set sizes, which these models
reproduce.

Every stand-in records the original Table IV statistics in its
:class:`DatasetInfo` so reports can show both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph import (
    barabasi_albert,
    DiGraph,
    directed_scale_free,
    forest_fire,
    powerlaw_cluster,
)

__all__ = ["DatasetInfo", "DATASETS", "load_dataset", "dataset_keys"]


@dataclass(frozen=True)
class DatasetInfo:
    """A named dataset stand-in and the statistics of its original."""

    key: str
    paper_name: str
    directed: bool
    paper_n: int
    paper_m: int
    paper_davg: float
    paper_dmax: int
    builder: Callable[[float], DiGraph]
    description: str

    def load(self, scale: float = 1.0) -> DiGraph:
        """Build the stand-in; ``scale`` multiplies the vertex count."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.builder(scale)


def _email_core(scale: float) -> DiGraph:
    # dense directed email graph: full original vertex count
    n = max(50, int(1005 * scale))
    return directed_scale_free(n, int(n * 24.0), rng=101)


def _facebook(scale: float) -> DiGraph:
    # undirected social graph, d_avg ~ 43.7 -> attach ~ 22
    n = max(60, int(1200 * scale))
    return barabasi_albert(n, 22, rng=102)


def _wiki_vote(scale: float) -> DiGraph:
    # directed voting graph, d_avg ~ 29 -> m ~ 14.5 n
    n = max(50, int(1500 * scale))
    return directed_scale_free(n, int(n * 14.5), rng=103)


def _email_all(scale: float) -> DiGraph:
    # very sparse directed email network, d_avg ~ 3.2
    n = max(80, int(6000 * scale))
    return forest_fire(n, 0.30, 0.15, rng=104)


def _dblp(scale: float) -> DiGraph:
    # undirected collaboration graph with clustering, d_avg ~ 6.6
    n = max(60, int(5000 * scale))
    return powerlaw_cluster(n, 3, 0.4, rng=105)


def _twitter(scale: float) -> DiGraph:
    # dense directed follower graph, d_avg ~ 59.5
    n = max(50, int(2000 * scale))
    return directed_scale_free(n, int(n * 29.5), rng=106)


def _stanford(scale: float) -> DiGraph:
    # directed web graph, d_avg ~ 16.4
    n = max(60, int(4000 * scale))
    return directed_scale_free(n, int(n * 8.2), rng=107)


def _youtube(scale: float) -> DiGraph:
    # sparse undirected social graph, d_avg ~ 5.3
    n = max(60, int(6000 * scale))
    return barabasi_albert(n, 3, rng=108)


DATASETS: dict[str, DatasetInfo] = {
    info.key: info
    for info in (
        DatasetInfo(
            "email-core", "EmailCore", True, 1005, 25571, 49.6, 544,
            _email_core,
            "EU research-institution email core (dense, directed)",
        ),
        DatasetInfo(
            "facebook", "Facebook", False, 4039, 88234, 43.7, 1045,
            _facebook,
            "Facebook ego-network union (dense, undirected)",
        ),
        DatasetInfo(
            "wiki-vote", "Wiki-Vote", True, 7115, 103689, 29.1, 1167,
            _wiki_vote,
            "Wikipedia adminship votes (directed)",
        ),
        DatasetInfo(
            "email-all", "EmailAll", True, 265214, 420045, 3.2, 7636,
            _email_all,
            "EU email network, all institutions (sparse, directed)",
        ),
        DatasetInfo(
            "dblp", "DBLP", False, 317080, 1049866, 6.6, 343,
            _dblp,
            "DBLP co-authorship (undirected, clustered)",
        ),
        DatasetInfo(
            "twitter", "Twitter", True, 81306, 1768149, 59.5, 10336,
            _twitter,
            "Twitter follower circles (dense, directed)",
        ),
        DatasetInfo(
            "stanford", "Stanford", True, 281903, 2312497, 16.4, 38626,
            _stanford,
            "Stanford web graph (directed)",
        ),
        DatasetInfo(
            "youtube", "Youtube", False, 1134890, 2987624, 5.3, 28754,
            _youtube,
            "YouTube friendships (sparse, undirected)",
        ),
    )
}

# short codes used in the paper's figures (EC F W EA D T S Y)
_ALIASES = {
    "ec": "email-core",
    "f": "facebook",
    "w": "wiki-vote",
    "ea": "email-all",
    "d": "dblp",
    "t": "twitter",
    "s": "stanford",
    "y": "youtube",
}


def dataset_keys() -> list[str]:
    """The eight dataset keys in the paper's (edge-count) order."""
    return list(DATASETS)


def load_dataset(key: str, scale: float = 1.0) -> DiGraph:
    """Load a stand-in dataset by key (or the paper's short code)."""
    canonical = _ALIASES.get(key.lower(), key.lower())
    info = DATASETS.get(canonical)
    if info is None:
        raise KeyError(
            f"unknown dataset {key!r}; available: {', '.join(DATASETS)}"
        )
    return info.load(scale)
