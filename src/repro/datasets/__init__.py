"""Datasets: the paper's toy example, SNAP stand-ins and subgraph tools."""

from .subgraph import extract_neighborhood_subgraph, extract_subgraphs
from .synthetic import DATASETS, DatasetInfo, dataset_keys, load_dataset
from .toy import figure1_graph, figure1_seed, V

__all__ = [
    "figure1_graph",
    "figure1_seed",
    "V",
    "DATASETS",
    "DatasetInfo",
    "dataset_keys",
    "load_dataset",
    "extract_neighborhood_subgraph",
    "extract_subgraphs",
]
