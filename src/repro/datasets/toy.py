"""The paper's running example graphs (Figures 1 and 2).

:func:`figure1_graph` reconstructs the 9-vertex toy graph of Figure 1
from the constraints stated in Examples 1–4 and Table III; the module
docstring of :mod:`tests.test_paper_examples` lists the exact values it
must reproduce (expected spread 7.66, blocking v5 -> 3, the Example 2
per-vertex decreases, and the Table III algorithm outcomes).

Vertex ``v_i`` of the paper is id ``i - 1`` here.
"""

from __future__ import annotations

from ..graph import DiGraph

__all__ = ["figure1_graph", "figure1_seed", "V"]


def V(i: int) -> int:
    """Paper vertex name ``v_i`` -> library id (``V(1) == 0``)."""
    if i < 1:
        raise ValueError("paper vertices are numbered from 1")
    return i - 1


figure1_seed = V(1)


def figure1_graph() -> DiGraph:
    """The Figure 1 toy graph.

    Edge structure (propagation probability 1 unless noted):

    * ``v1 -> v2``, ``v1 -> v4`` — the seed's out-neighbours
      (OutNeighbors considers exactly {v2, v4}, Example 3);
    * ``v2 -> v5``, ``v4 -> v5`` — both must be blocked to cut v5 off
      (Table III: blocking {v2, v4} leaves spread 1);
    * ``v5 -> v3``, ``v5 -> v6``, ``v5 -> v9`` — blocking v5 strands
      v3, v6, v7, v8, v9 (Example 3), spread drops to 3 (Example 1);
    * ``v5 -> v8`` with p = 0.5 and ``v9 -> v8`` with p = 0.2 — gives
      ``P(v8) = 1 - (1 - 0.5)(1 - 0.2) = 0.6`` (Example 1);
    * ``v8 -> v7`` with p = 0.1 — gives ``P(v7) = 0.06`` (Example 1).

    Total expected spread: 7 certain vertices + 0.6 + 0.06 = 7.66.
    """
    graph = DiGraph(9)
    graph.add_edge(V(1), V(2), 1.0)
    graph.add_edge(V(1), V(4), 1.0)
    graph.add_edge(V(2), V(5), 1.0)
    graph.add_edge(V(4), V(5), 1.0)
    graph.add_edge(V(5), V(3), 1.0)
    graph.add_edge(V(5), V(6), 1.0)
    graph.add_edge(V(5), V(9), 1.0)
    graph.add_edge(V(5), V(8), 0.5)
    graph.add_edge(V(9), V(8), 0.2)
    graph.add_edge(V(8), V(7), 0.1)
    return graph
