"""Small-subgraph extraction for the Exact comparison (Tables V/VI).

The paper: "Due to the huge time cost of Exact, we extract small
datasets by iteratively extracting a vertex and all its neighbors,
until the number of extracted vertices reaches 100."  This module
reproduces that procedure so the Exact-vs-GreedyReplace experiment runs
on the same kind of neighbourhood subgraphs.
"""

from __future__ import annotations

from ..graph import DiGraph
from ..rng import ensure_rng, RngLike

__all__ = ["extract_neighborhood_subgraph", "extract_subgraphs"]


def extract_neighborhood_subgraph(
    graph: DiGraph,
    target_size: int = 100,
    rng: RngLike = None,
) -> tuple[DiGraph, list[int]]:
    """One neighbourhood subgraph of roughly ``target_size`` vertices.

    Repeatedly picks a random vertex not yet extracted and adds it with
    all of its (in- and out-) neighbours until the vertex count reaches
    ``target_size``; returns the induced subgraph and the original ids.
    """
    gen = ensure_rng(rng)
    chosen: set[int] = set()
    n = graph.n
    attempts = 0
    while len(chosen) < target_size and attempts < 50 * n:
        attempts += 1
        v = int(gen.integers(n))
        if v in chosen:
            continue
        chosen.add(v)
        for w in graph.out_neighbors(v):
            chosen.add(w)
        for w in graph.in_neighbors(v):
            chosen.add(w)
    sub, to_original = graph.induced_subgraph(chosen)
    return sub, to_original


def extract_subgraphs(
    graph: DiGraph,
    count: int = 5,
    target_size: int = 100,
    rng: RngLike = None,
) -> list[tuple[DiGraph, list[int]]]:
    """``count`` independent neighbourhood subgraphs (paper uses 5)."""
    gen = ensure_rng(rng)
    return [
        extract_neighborhood_subgraph(graph, target_size, gen)
        for _ in range(count)
    ]
