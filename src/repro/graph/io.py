"""Edge-list I/O and optional networkx interoperability.

SNAP distributes graphs as whitespace-separated edge lists with ``#``
comments; :func:`read_edge_list` accepts that format (with or without a
third probability column) and relabels arbitrary vertex ids to the
contiguous ``0 .. n-1`` range the library requires.  Real-world edge
lists are messy, so the parser is deliberately tolerant — and applies
the same tolerance whether the input is a plain file, an open handle,
or a ``.gz`` path (decompressed transparently, so SNAP downloads can
be registered with the service without manual decompression):

* ``#`` and ``%`` comment lines (SNAP and KONECT conventions), also
  after leading whitespace;
* blank and whitespace-only lines;
* any mix of tabs and spaces between columns (SNAP files are
  tab-separated, hand-edited ones rarely stay that way);
* CRLF line endings and a UTF-8 byte-order mark;

while malformed data lines raise a :class:`ValueError` that names the
1-based line number, so a broken download is diagnosable.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import TextIO, Union

from .digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "from_networkx",
    "to_networkx",
]


def read_edge_list(
    path_or_file: Union[str, Path, TextIO],
    directed: bool = True,
    default_probability: float = 1.0,
) -> tuple[DiGraph, dict[int, int]]:
    """Parse a SNAP-style edge list.

    Returns ``(graph, id_map)`` where ``id_map`` maps original vertex
    labels to the new contiguous ids.  Lines starting with ``#`` or
    ``%`` (after optional leading whitespace) are comments, blank or
    whitespace-only lines are skipped, and columns may be separated by
    any mix of tabs and spaces; each data line is ``u v`` or
    ``u v p``.  When ``directed=False`` both directions of every edge
    are added.  A path with a ``.gz`` suffix is opened through
    :mod:`gzip`, with identical parsing behaviour.
    """
    if isinstance(path_or_file, (str, Path)):
        path = Path(path_or_file)
        opener = gzip.open if path.suffix.lower() == ".gz" else open
        with opener(
            path, "rt", encoding="utf-8", errors="replace"
        ) as handle:
            return read_edge_list(handle, directed, default_probability)

    rows: list[tuple[int, int, float]] = []
    id_map: dict[int, int] = {}

    def intern(label: int) -> int:
        mapped = id_map.get(label)
        if mapped is None:
            mapped = len(id_map)
            id_map[label] = mapped
        return mapped

    for lineno, line in enumerate(path_or_file, start=1):
        if lineno == 1:
            line = line.lstrip("\ufeff")  # tolerate a UTF-8 BOM
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(
                f"malformed edge-list line {lineno}: {line!r} "
                "(expected 'u v' or 'u v p')"
            )
        try:
            u = intern(int(parts[0]))
            v = intern(int(parts[1]))
            p = (
                float(parts[2])
                if len(parts) >= 3
                else default_probability
            )
        except ValueError as error:
            raise ValueError(
                f"malformed edge-list line {lineno}: {line!r} ({error})"
            ) from None
        rows.append((u, v, p))

    graph = DiGraph(len(id_map))
    for u, v, p in rows:
        if u == v:
            continue  # SNAP lists occasionally contain self loops
        graph.add_edge(u, v, p)
        if not directed and not graph.has_edge(v, u):
            graph.add_edge(v, u, p)
    return graph, id_map


def write_edge_list(
    graph: DiGraph,
    path_or_file: Union[str, Path, TextIO],
    include_probabilities: bool = True,
) -> None:
    """Write the graph as ``u v [p]`` lines (one directed edge per line)."""
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            write_edge_list(graph, handle, include_probabilities)
            return
    handle = path_or_file
    handle.write(f"# DiGraph n={graph.n} m={graph.m}\n")
    for u, v, p in graph.edges():
        if include_probabilities:
            handle.write(f"{u} {v} {p:.10g}\n")
        else:
            handle.write(f"{u} {v}\n")


def from_networkx(nx_graph) -> DiGraph:
    """Convert a networkx (Di)Graph; reads the ``probability`` edge attr.

    Vertices are relabelled to ``0 .. n-1`` in sorted order when the
    labels are sortable, otherwise in iteration order.
    """
    nodes = list(nx_graph.nodes())
    try:
        nodes.sort()
    except TypeError:
        pass
    index = {v: i for i, v in enumerate(nodes)}
    graph = DiGraph(len(nodes))
    directed = nx_graph.is_directed()
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        p = float(data.get("probability", 1.0))
        graph.add_edge(index[u], index[v], p)
        if not directed and not graph.has_edge(index[v], index[u]):
            graph.add_edge(index[v], index[u], p)
    return graph


def to_networkx(graph: DiGraph):
    """Convert to ``networkx.DiGraph`` with ``probability`` edge attrs."""
    import networkx as nx

    out = nx.DiGraph()
    out.add_nodes_from(graph.vertices())
    for u, v, p in graph.edges():
        out.add_edge(u, v, probability=p)
    return out
