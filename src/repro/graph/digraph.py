"""A compact directed graph with propagation probabilities on edges.

This module provides :class:`DiGraph`, the central graph type of the
library.  Vertices are contiguous integers ``0 .. n-1`` which keeps every
algorithm array-friendly; edges carry the propagation probability
``p(u, v)`` of the independent cascade (IC) model (Section III-A of the
paper).  The class intentionally implements only what the influence
algorithms need — adjacency, degrees, induced subgraphs and a few
transformations — rather than a general graph toolkit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["DiGraph"]


class DiGraph:
    """Directed graph over vertices ``0 .. n-1`` with edge probabilities.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are implicit: every integer in
        ``range(n)`` is a vertex, even if isolated.

    Notes
    -----
    The successor structure maps each vertex to a dict
    ``neighbour -> probability`` so edge lookups and probability updates
    are O(1); the predecessor structure stores plain lists because the
    algorithms only ever iterate in-neighbours.
    """

    __slots__ = ("_succ", "_pred", "_m", "_version", "__weakref__")

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise ValueError(f"number of vertices must be >= 0, got {n}")
        self._succ: list[dict[int, float]] = [{} for _ in range(n)]
        self._pred: list[list[int]] = [[] for _ in range(n)]
        self._m = 0
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        default_probability: float = 1.0,
    ) -> "DiGraph":
        """Build a graph from ``(u, v)`` or ``(u, v, p)`` tuples.

        Edges given without a probability receive ``default_probability``.
        Duplicate edges overwrite the earlier probability.
        """
        graph = cls(n)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                graph.add_edge(u, v, default_probability)
            else:
                u, v, p = edge  # type: ignore[misc]
                graph.add_edge(u, v, p)
        return graph

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its id."""
        self._succ.append({})
        self._pred.append([])
        self._version += 1
        return len(self._succ) - 1

    def add_edge(self, u: int, v: int, probability: float = 1.0) -> None:
        """Insert edge ``u -> v`` with the given propagation probability.

        Re-adding an existing edge replaces its probability.  Self loops
        are rejected: they never change IC spread and only complicate the
        dominator-tree machinery.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {probability!r}"
            )
        if v not in self._succ[u]:
            self._pred[v].append(u)
            self._m += 1
        self._succ[u][v] = probability
        self._version += 1

    def combine_edge(self, u: int, v: int, probability: float) -> None:
        """Merge a parallel edge ``u -> v`` using the noisy-or rule.

        If the edge already exists with probability ``q``, the stored
        probability becomes ``1 - (1 - q) * (1 - probability)`` — exactly
        the multi-seed unification rule of Section V of the paper.
        """
        existing = self._succ[u].get(v)
        if existing is None:
            self.add_edge(u, v, probability)
        else:
            self.add_edge(u, v, 1.0 - (1.0 - existing) * (1.0 - probability))

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``u -> v``.

        Raises the same named errors as :meth:`add_edge`:
        :class:`IndexError` for an out-of-range vertex and
        :class:`KeyError` naming ``(u, v)`` when the edge is absent.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._succ[u]:
            raise KeyError(f"no edge ({u}, {v}) to remove")
        del self._succ[u][v]
        self._pred[v].remove(u)
        self._m -= 1
        self._version += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._succ)

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return self._m

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every edge insert/update/delete.

        Lets caches of derived structures (frozen CSRs, simulation
        engines) detect that a graph changed — including in-place
        probability reassignment, which leaves ``n`` and ``m`` alone.
        """
        return self._version

    def vertices(self) -> range:
        """All vertex ids."""
        return range(len(self._succ))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, probability)`` triples in vertex order."""
        for u, nbrs in enumerate(self._succ):
            for v, p in nbrs.items():
                yield u, v, p

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._succ[u]

    def probability(self, u: int, v: int) -> float:
        """Propagation probability of edge ``u -> v``."""
        return self._succ[u][v]

    def out_neighbors(self, u: int) -> Sequence[int]:
        return list(self._succ[u])

    def in_neighbors(self, u: int) -> Sequence[int]:
        return list(self._pred[u])

    def successors(self, u: int) -> Mapping[int, float]:
        """Read-only view of ``u``'s out-edges as ``{v: probability}``."""
        return self._succ[u]

    def out_degree(self, u: int) -> int:
        return len(self._succ[u])

    def in_degree(self, u: int) -> int:
        return len(self._pred[u])

    def degree(self, u: int) -> int:
        """Total degree (in + out), matching ``d_avg`` of Table IV."""
        return len(self._succ[u]) + len(self._pred[u])

    def average_degree(self) -> float:
        """Average total degree; 0.0 for the empty graph."""
        if not self._succ:
            return 0.0
        return 2.0 * self._m / len(self._succ)

    def max_degree(self) -> int:
        if not self._succ:
            return 0
        return max(self.degree(u) for u in self.vertices())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        clone = DiGraph(self.n)
        for u, nbrs in enumerate(self._succ):
            clone._succ[u] = dict(nbrs)
        for v, preds in enumerate(self._pred):
            clone._pred[v] = list(preds)
        clone._m = self._m
        return clone

    def reverse(self) -> "DiGraph":
        """Graph with every edge flipped (probabilities preserved)."""
        rev = DiGraph(self.n)
        for u, v, p in self.edges():
            rev.add_edge(v, u, p)
        return rev

    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["DiGraph", list[int]]:
        """Subgraph induced by ``vertices`` with relabelled ids.

        Returns ``(subgraph, to_original)`` where ``to_original[i]`` is
        the original id of the subgraph's vertex ``i``.
        """
        keep = sorted(set(vertices))
        index = {v: i for i, v in enumerate(keep)}
        sub = DiGraph(len(keep))
        for v in keep:
            for w, p in self._succ[v].items():
                if w in index:
                    sub.add_edge(index[v], index[w], p)
        return sub, keep

    def without_vertices(self, blocked: Iterable[int]) -> "DiGraph":
        """Copy with all edges incident to ``blocked`` removed.

        Vertex ids are preserved (blocked vertices stay as isolated
        placeholders), which matches the paper's ``G[V \\ B]`` semantics
        for spread computation: a blocked vertex can never be activated.
        """
        drop = set(blocked)
        out = DiGraph(self.n)
        for u, v, p in self.edges():
            if u not in drop and v not in drop:
                out.add_edge(u, v, p)
        return out

    def as_bidirectional(self) -> "DiGraph":
        """Treat every edge as undirected: add the reverse of each edge.

        Reverse edges copy the forward probability unless they already
        exist.  This mirrors the paper's handling of undirected SNAP
        graphs ("we consider each edge as bi-directional").
        """
        out = self.copy()
        for u, v, p in list(self.edges()):
            if not out.has_edge(v, u):
                out.add_edge(v, u, p)
        return out

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self.n}, m={self.m})"

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._succ):
            raise IndexError(
                f"vertex {u} out of range for graph with {len(self._succ)} "
                "vertices"
            )
