"""Batched graph mutations: the unit of the incremental update path.

A long-lived deployment tracking a changing network edits its graph —
an edge appears, one disappears, a probability drifts — and before
this module every edit invalidated every derived structure (sample
pools, sketch indexes, served artifacts) back to a cold rebuild.
:class:`GraphDelta` names one *batch* of edits as a validated value
object so each layer can patch instead:

* :meth:`~repro.engine.pool.SamplePool.apply_delta` patches the pooled
  live-edge samples bit-identically to a from-scratch regeneration of
  the mutated graph;
* :meth:`~repro.engine.sketch.SketchIndex.apply_delta` rebuilds only
  the dominator trees of samples whose survived-edge set changed;
* the serving layer's ``update`` op applies one delta to a warm
  artifact and journals it so rebuilt or restarted workers replay the
  same history.

The three edit kinds are disjoint by construction — an edge may appear
in at most one of ``inserts``, ``deletes`` and ``reweights`` — because
mixed semantics (delete-then-insert in one batch) would make the
post-delta adjacency order ambiguous.  Sequencing across batches is
the caller's job (the service threads a monotone ``seq`` through its
journal).

Application order within a batch is fixed: deletes, then reweights,
then inserts, with inserts appended to their source row in delta
order.  This pins the post-delta CSR layout exactly, which is what
lets the pool patch arrays instead of rebuilding them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .digraph import DiGraph

__all__ = ["GraphDelta"]


def _edge_pair(value, what: str) -> tuple[int, int]:
    try:
        u, v = value
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} entries must be (u, v) pairs, got {value!r}"
        ) from None
    if isinstance(u, bool) or isinstance(v, bool):
        raise ValueError(f"{what} vertex ids must be integers")
    u, v = int(u), int(v)
    if u == v:
        raise ValueError(f"self loop on vertex {u} is not allowed")
    if u < 0 or v < 0:
        raise ValueError(f"{what} vertex ids must be >= 0, got ({u}, {v})")
    return u, v


def _edge_triple(value, what: str) -> tuple[int, int, float]:
    try:
        u, v, p = value
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} entries must be (u, v, p) triples, got {value!r}"
        ) from None
    u, v = _edge_pair((u, v), what)
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(
            f"probability must be within [0, 1], got {p!r} for edge "
            f"({u}, {v})"
        )
    return u, v, p


@dataclass(frozen=True)
class GraphDelta:
    """One validated batch of edge mutations.

    Parameters
    ----------
    inserts:
        ``(u, v, p)`` triples of edges to add.  The probability is
        explicit — a delta mutates the *prepared* graph, it does not
        re-run a probability model.
    deletes:
        ``(u, v)`` pairs of edges to remove.
    reweights:
        ``(u, v, p)`` triples of existing edges whose probability
        changes.
    """

    inserts: tuple[tuple[int, int, float], ...] = ()
    deletes: tuple[tuple[int, int], ...] = ()
    reweights: tuple[tuple[int, int, float], ...] = ()

    def __init__(
        self,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[Sequence] = (),
        reweights: Iterable[Sequence] = (),
    ) -> None:
        ins = tuple(_edge_triple(e, "inserts") for e in inserts)
        dels = tuple(_edge_pair(e, "deletes") for e in deletes)
        rews = tuple(_edge_triple(e, "reweights") for e in reweights)
        seen: set[tuple[int, int]] = set()
        for u, v in (
            [(u, v) for u, v, _ in ins]
            + list(dels)
            + [(u, v) for u, v, _ in rews]
        ):
            if (u, v) in seen:
                raise ValueError(
                    f"edge ({u}, {v}) appears more than once in the "
                    "delta — each edge may be inserted, deleted or "
                    "reweighted at most once per batch"
                )
            seen.add((u, v))
        object.__setattr__(self, "inserts", ins)
        object.__setattr__(self, "deletes", dels)
        object.__setattr__(self, "reweights", rews)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of edge edits in the batch."""
        return len(self.inserts) + len(self.deletes) + len(self.reweights)

    def __bool__(self) -> bool:
        return len(self) > 0

    def max_vertex(self) -> int:
        """Largest vertex id the delta names; -1 for an empty delta."""
        best = -1
        for u, v, _ in self.inserts:
            best = max(best, u, v)
        for u, v in self.deletes:
            best = max(best, u, v)
        for u, v, _ in self.reweights:
            best = max(best, u, v)
        return best

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def check_against(self, graph: "DiGraph") -> None:
        """Validate the delta against a concrete graph without
        mutating it: vertices in range, deletes/reweights name existing
        edges, inserts name absent ones.  Raises :class:`ValueError`
        with the offending edge named."""
        n = graph.n
        top = self.max_vertex()
        if top >= n:
            raise ValueError(
                f"vertex {top} out of range for graph with {n} vertices"
            )
        for u, v in self.deletes:
            if not graph.has_edge(u, v):
                raise ValueError(f"cannot delete missing edge ({u}, {v})")
        for u, v, _ in self.reweights:
            if not graph.has_edge(u, v):
                raise ValueError(
                    f"cannot reweight missing edge ({u}, {v})"
                )
        for u, v, _ in self.inserts:
            if graph.has_edge(u, v):
                raise ValueError(
                    f"cannot insert existing edge ({u}, {v}) — use a "
                    "reweight"
                )

    def apply_to(self, graph: "DiGraph") -> "DiGraph":
        """Mutate ``graph`` in place and return it.

        Order is deletes -> reweights -> inserts, inserts in delta
        order, so the mutated graph's CSR layout is exactly the one
        :meth:`~repro.engine.pool.SamplePool.apply_delta` derives by
        array surgery (dict insertion order: removals keep the
        survivors' order, reweights keep their slot, inserts append).
        """
        self.check_against(graph)
        for u, v in self.deletes:
            graph.remove_edge(u, v)
        for u, v, p in self.reweights:
            graph.add_edge(u, v, p)
        for u, v, p in self.inserts:
            graph.add_edge(u, v, p)
        return graph

    # ------------------------------------------------------------------
    # wire format (the service's `update` op payload)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, list]:
        return {
            "inserts": [list(e) for e in self.inserts],
            "deletes": [list(e) for e in self.deletes],
            "reweights": [list(e) for e in self.reweights],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "GraphDelta":
        """Parse the wire form; unknown keys are rejected so a typo'd
        field never silently drops half an update."""
        extra = set(payload) - {"inserts", "deletes", "reweights"}
        if extra:
            raise ValueError(
                "unknown delta fields: " + ", ".join(sorted(extra))
            )
        return cls(
            inserts=payload.get("inserts") or (),
            deletes=payload.get("deletes") or (),
            reweights=payload.get("reweights") or (),
        )
