"""Seeded random-graph generators.

The paper evaluates on eight SNAP graphs that cannot be downloaded in
this offline environment, so :mod:`repro.datasets.synthetic` builds
stand-ins from the generators below.  Each generator is implemented from
scratch (no networkx dependency in the library core) and is fully
deterministic given an ``rng`` seed.

All generators return a :class:`~repro.graph.DiGraph`; "undirected"
models emit both edge directions, matching how the paper treats
undirected SNAP graphs.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng, RngLike
from .digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_cluster",
    "directed_scale_free",
    "forest_fire",
    "random_out_tree",
    "random_dag",
]


def erdos_renyi(
    n: int,
    m: int,
    rng: RngLike = None,
    directed: bool = True,
) -> DiGraph:
    """G(n, m) random graph with exactly ``m`` distinct (directed) edges."""
    gen = ensure_rng(rng)
    max_edges = n * (n - 1) if directed else n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges in a graph with n={n}")
    graph = DiGraph(n)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        u = int(gen.integers(n))
        v = int(gen.integers(n))
        if u == v:
            continue
        if not directed and u > v:
            u, v = v, u
        if (u, v) in chosen:
            continue
        chosen.add((u, v))
        graph.add_edge(u, v)
        if not directed:
            graph.add_edge(v, u)
    return graph


def barabasi_albert(n: int, attach: int, rng: RngLike = None) -> DiGraph:
    """Preferential-attachment graph (undirected, emitted bidirectionally).

    Starts from a clique on ``attach + 1`` vertices; every later vertex
    attaches to ``attach`` distinct existing vertices chosen with
    probability proportional to their degree.  Produces the heavy-tailed
    degree distribution of graphs such as Facebook/DBLP in Table IV.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n <= attach:
        raise ValueError("need n > attach")
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    # Repeated-endpoint list: sampling uniformly from it is sampling
    # proportionally to degree.
    endpoints: list[int] = []
    core = attach + 1
    for u in range(core):
        for v in range(u + 1, core):
            graph.add_edge(u, v)
            graph.add_edge(v, u)
            endpoints.extend((u, v))
    for u in range(core, n):
        targets: set[int] = set()
        while len(targets) < attach:
            targets.add(endpoints[int(gen.integers(len(endpoints)))])
        for v in targets:
            graph.add_edge(u, v)
            graph.add_edge(v, u)
            endpoints.extend((u, v))
    return graph


def watts_strogatz(
    n: int, k: int, beta: float, rng: RngLike = None
) -> DiGraph:
    """Small-world ring lattice with rewiring (bidirectional edges)."""
    if k % 2 or k <= 0:
        raise ValueError("k must be a positive even integer")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    gen = ensure_rng(rng)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for (u, v) in sorted(edges):
        if gen.random() < beta:
            w = int(gen.integers(n))
            attempts = 0
            while (
                w == u
                or (min(u, w), max(u, w)) in rewired
                or (min(u, w), max(u, w)) in edges
            ) and attempts < 32:
                w = int(gen.integers(n))
                attempts += 1
            if attempts < 32:
                v = w
        rewired.add((min(u, v), max(u, v)))
    graph = DiGraph(n)
    for u, v in sorted(rewired):
        graph.add_edge(u, v)
        graph.add_edge(v, u)
    return graph


def powerlaw_cluster(
    n: int, attach: int, triangle_prob: float, rng: RngLike = None
) -> DiGraph:
    """Holme–Kim power-law graph with tunable clustering (bidirectional).

    Like Barabási–Albert, but after each preferential attachment a
    triangle is closed with probability ``triangle_prob``, raising the
    clustering coefficient towards social-network levels.
    """
    if not 0.0 <= triangle_prob <= 1.0:
        raise ValueError("triangle_prob must be in [0, 1]")
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    endpoints: list[int] = []
    core = attach + 1
    for u in range(core):
        for v in range(u + 1, core):
            graph.add_edge(u, v)
            graph.add_edge(v, u)
            endpoints.extend((u, v))
    for u in range(core, n):
        added: list[int] = []
        while len(added) < attach:
            if added and gen.random() < triangle_prob:
                # triangle step: connect to a neighbour of the previous
                # target if one is still unused
                prev = added[-1]
                candidates = [
                    w
                    for w in graph.out_neighbors(prev)
                    if w != u and not graph.has_edge(u, w)
                ]
                if candidates:
                    v = candidates[int(gen.integers(len(candidates)))]
                else:
                    v = endpoints[int(gen.integers(len(endpoints)))]
            else:
                v = endpoints[int(gen.integers(len(endpoints)))]
            if v == u or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
            graph.add_edge(v, u)
            endpoints.extend((u, v))
            added.append(v)
    return graph


def directed_scale_free(
    n: int,
    m_target: int,
    rng: RngLike = None,
    alpha: float = 0.41,
    gamma: float = 0.05,
) -> DiGraph:
    """Directed scale-free graph (Bollobás et al. style growth).

    Edges are added one at a time until ``m_target`` distinct edges
    exist.  With probability ``alpha`` a new vertex points to an existing
    vertex chosen by in-degree; with probability ``gamma`` an existing
    vertex (chosen by out-degree) points to a new vertex; otherwise an
    edge is added between existing vertices (out-degree source,
    in-degree target).  New-vertex events stop once ``n`` vertices
    exist.  Produces skewed in/out-degree graphs like Wiki-Vote or
    Twitter in Table IV.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    graph.add_edge(0, 1)
    # +1 smoothing keeps zero-degree vertices reachable by the sampler.
    in_ends: list[int] = [1]
    out_ends: list[int] = [0]
    grown = 2

    def pick(ends: list[int]) -> int:
        # degree-proportional with uniform smoothing over grown vertices
        if ends and gen.random() < 0.8:
            return ends[int(gen.integers(len(ends)))]
        return int(gen.integers(grown))

    while graph.m < m_target:
        r = gen.random()
        if r < alpha and grown < n:
            u = grown
            grown += 1
            v = pick(in_ends)
            if u == v:
                continue
        elif r < alpha + gamma and grown < n:
            v = grown
            grown += 1
            u = pick(out_ends)
            if u == v:
                continue
        else:
            u = pick(out_ends)
            v = pick(in_ends)
            if u == v or graph.has_edge(u, v):
                continue
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            in_ends.append(v)
            out_ends.append(u)
    return graph


def forest_fire(
    n: int,
    forward_prob: float,
    backward_prob: float = 0.0,
    rng: RngLike = None,
) -> DiGraph:
    """Leskovec's forest-fire model (directed).

    Each arriving vertex picks a random ambassador, links to it, then
    "burns" through the ambassador's neighbourhood: a geometric number
    of out-links (mean ``forward_prob / (1 - forward_prob)``) and
    in-links (scaled by ``backward_prob``) are followed recursively, and
    the new vertex links to everything burned.  Produces densifying,
    heavy-tailed graphs like the web/email graphs in Table IV.
    """
    if not 0.0 <= forward_prob < 1.0:
        raise ValueError("forward_prob must be in [0, 1)")
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    if n >= 2:
        graph.add_edge(1, 0)
    for u in range(2, n):
        ambassador = int(gen.integers(u))
        # the new vertex must never burn back to itself
        burned = {ambassador, u}
        frontier = [ambassador]
        graph.add_edge(u, ambassador)
        while frontier:
            w = frontier.pop()
            x = gen.geometric(1.0 - forward_prob) - 1
            y = (
                gen.geometric(1.0 - forward_prob * backward_prob) - 1
                if backward_prob > 0.0
                else 0
            )
            out_nbrs = [v for v in graph.out_neighbors(w) if v not in burned]
            in_nbrs = [v for v in graph.in_neighbors(w) if v not in burned]
            gen.shuffle(out_nbrs)
            gen.shuffle(in_nbrs)
            for v in out_nbrs[:x] + in_nbrs[:y]:
                if v not in burned:
                    burned.add(v)
                    if not graph.has_edge(u, v):
                        graph.add_edge(u, v)
                    frontier.append(v)
    return graph


def random_out_tree(
    n: int, rng: RngLike = None, max_children: int = 4
) -> DiGraph:
    """Random out-tree rooted at vertex 0 (for the optimal tree DP).

    Each vertex ``u >= 1`` attaches under a uniformly chosen earlier
    vertex that still has capacity ``max_children``.
    """
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    capacity = [max_children] * n
    for u in range(1, n):
        while True:
            parent = int(gen.integers(u))
            if capacity[parent] > 0:
                break
        capacity[parent] -= 1
        graph.add_edge(parent, u)
    return graph


def random_dag(n: int, edge_prob: float, rng: RngLike = None) -> DiGraph:
    """Random DAG: edge ``u -> v`` (u < v) present with ``edge_prob``."""
    gen = ensure_rng(rng)
    graph = DiGraph(n)
    mask = gen.random((n, n)) < edge_prob
    upper = np.triu(mask, k=1)
    for u, v in zip(*np.nonzero(upper)):
        graph.add_edge(int(u), int(v))
    return graph
