"""Directed-graph substrate: structure, CSR layout, traversal, generators."""

from .csr import CSRGraph
from .delta import GraphDelta
from .digraph import DiGraph
from .generators import (
    barabasi_albert,
    directed_scale_free,
    erdos_renyi,
    forest_fire,
    powerlaw_cluster,
    random_dag,
    random_out_tree,
    watts_strogatz,
)
from .io import from_networkx, read_edge_list, to_networkx, write_edge_list
from .metrics import degree_gini, graph_stats, GraphStats, reciprocity
from .traversal import (
    bfs_order,
    dfs_preorder,
    is_out_tree,
    reachable_set,
    reachable_set_adj,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "GraphDelta",
    "bfs_order",
    "dfs_preorder",
    "reachable_set",
    "reachable_set_adj",
    "is_out_tree",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_cluster",
    "directed_scale_free",
    "forest_fire",
    "random_out_tree",
    "random_dag",
    "read_edge_list",
    "write_edge_list",
    "from_networkx",
    "to_networkx",
    "graph_stats",
    "GraphStats",
    "degree_gini",
    "reciprocity",
]
