"""Graph statistics matching the paper's Table IV columns.

Table IV characterises each dataset by vertex/edge counts, average
degree and maximum degree.  These helpers compute the same statistics
for the synthetic stand-ins (plus a couple of shape diagnostics used to
sanity-check that stand-ins are heavy-tailed like their originals).
"""

from __future__ import annotations

from dataclasses import dataclass

from .digraph import DiGraph

__all__ = ["GraphStats", "graph_stats", "degree_gini", "reciprocity"]


@dataclass(frozen=True)
class GraphStats:
    """The Table IV row for a graph."""

    n: int
    m: int
    average_degree: float
    max_degree: int


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute the Table IV statistics (degree = in + out)."""
    return GraphStats(
        n=graph.n,
        m=graph.m,
        average_degree=graph.average_degree(),
        max_degree=graph.max_degree(),
    )


def degree_gini(graph: DiGraph) -> float:
    """Gini coefficient of the total-degree distribution.

    0 = perfectly uniform degrees, -> 1 = extremely heavy-tailed.
    Social networks typically land around 0.4-0.7; the stand-in tests
    use this to confirm the generators produce realistic skew.
    """
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    n = len(degrees)
    total = sum(degrees)
    if n == 0 or total == 0:
        return 0.0
    weighted = sum((i + 1) * d for i, d in enumerate(degrees))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def reciprocity(graph: DiGraph) -> float:
    """Fraction of edges whose reverse edge also exists.

    1.0 for undirected stand-ins (every edge bidirectional), lower for
    genuinely directed graphs.
    """
    if graph.m == 0:
        return 0.0
    mutual = sum(
        1 for u, v, _ in graph.edges() if graph.has_edge(v, u)
    )
    return mutual / graph.m
