"""Compressed-sparse-row (CSR) view of a :class:`~repro.graph.DiGraph`.

The influence algorithms repeatedly sample live-edge graphs (Definition 4
of the paper) and run cascades; both need the edge set as flat arrays so
that numpy can draw all edge coins at once and the Python traversal loops
touch contiguous lists.  :class:`CSRGraph` freezes a ``DiGraph`` into that
layout.  It is immutable: blocking vertices is expressed by masks handed
to the samplers, never by rebuilding the structure.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from .digraph import DiGraph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable CSR snapshot of a directed graph with edge probabilities.

    Attributes
    ----------
    indptr:
        ``int64[n + 1]``; out-edges of vertex ``u`` occupy indices
        ``indptr[u]:indptr[u + 1]`` of the edge arrays.
    indices:
        ``int64[m]``; edge targets.
    probs:
        ``float64[m]``; propagation probability of each edge.
    src:
        ``int64[m]``; edge sources (the expansion of ``indptr``), used by
        the live-edge sampler to rebuild adjacency from surviving edges.
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "probs",
        "src",
        "__dict__",
        "__weakref__",
    )

    def __init__(self, graph: DiGraph) -> None:
        self.n = graph.n
        self.m = graph.m
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        indices = np.empty(self.m, dtype=np.int64)
        probs = np.empty(self.m, dtype=np.float64)
        src = np.empty(self.m, dtype=np.int64)
        pos = 0
        for u in graph.vertices():
            indptr[u] = pos
            for v, p in graph.successors(u).items():
                indices[pos] = v
                probs[pos] = p
                src[pos] = u
                pos += 1
        indptr[self.n] = pos
        self.indptr = indptr
        self.indices = indices
        self.probs = probs
        self.src = src

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        probs: np.ndarray,
        src: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Rebuild a CSR snapshot directly from its flat arrays.

        Used to rehydrate graphs shipped across process boundaries
        (the parallel spread engine) without round-tripping through a
        ``DiGraph``.  Arrays are adopted, not copied.
        """
        self = cls.__new__(cls)
        self.n = int(indptr.shape[0]) - 1
        self.m = int(indices.shape[0])
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.probs = np.asarray(probs, dtype=np.float64)
        if src is None:
            src = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
        self.src = np.asarray(src, dtype=np.int64)
        return self

    # ------------------------------------------------------------------
    # plain-list mirrors: Python-level loops index lists substantially
    # faster than numpy arrays, and the Monte-Carlo engine lives in such
    # loops.  Built lazily so array-only users pay nothing.
    # ------------------------------------------------------------------
    @cached_property
    def indptr_list(self) -> list[int]:
        return self.indptr.tolist()

    @cached_property
    def indices_list(self) -> list[int]:
        return self.indices.tolist()

    @cached_property
    def probs_list(self) -> list[float]:
        return self.probs.tolist()

    @cached_property
    def src_list(self) -> list[int]:
        return self.src.tolist()

    def out_edge_range(self, u: int) -> range:
        """Edge-array index range of ``u``'s out-edges."""
        return range(int(self.indptr[u]), int(self.indptr[u + 1]))

    def out_neighbors(self, u: int) -> np.ndarray:
        return self.indices[self.indptr[u]: self.indptr[u + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"
