"""Graph traversals used throughout the library.

All traversals are iterative (no recursion) so they handle the deep,
path-like graphs that show up in sampled cascades without hitting the
interpreter's recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from .digraph import DiGraph

__all__ = [
    "bfs_order",
    "dfs_preorder",
    "reachable_set",
    "reachable_set_adj",
    "is_out_tree",
]


def bfs_order(graph: DiGraph, sources: Iterable[int]) -> list[int]:
    """Vertices reachable from ``sources`` in breadth-first order."""
    seen: set[int] = set()
    order: list[int] = []
    queue: deque[int] = deque()
    for s in sources:
        if s not in seen:
            seen.add(s)
            order.append(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        for v in graph.successors(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def dfs_preorder(graph: DiGraph, source: int) -> list[int]:
    """Depth-first preorder from ``source`` (iterative)."""
    seen = {source}
    order = [source]
    stack: list[Iterable[int]] = [iter(graph.successors(source))]
    while stack:
        advanced = False
        for v in stack[-1]:
            if v not in seen:
                seen.add(v)
                order.append(v)
                stack.append(iter(graph.successors(v)))
                advanced = True
                break
        if not advanced:
            stack.pop()
    return order


def reachable_set(
    graph: DiGraph,
    sources: Iterable[int],
    blocked: Iterable[int] = (),
) -> set[int]:
    """Vertices reachable from ``sources`` avoiding ``blocked``.

    Blocked vertices are never entered (they cannot be activated), but a
    blocked source is still considered unreachable — sources are assumed
    disjoint from blockers as in the problem statement.
    """
    drop = set(blocked)
    seen = {s for s in sources if s not in drop}
    queue = deque(seen)
    while queue:
        u = queue.popleft()
        for v in graph.successors(u):
            if v not in seen and v not in drop:
                seen.add(v)
                queue.append(v)
    return seen


def reachable_set_adj(
    succ: Mapping[int, Sequence[int]], source: int
) -> set[int]:
    """Reachability over a plain adjacency mapping (sampled subgraphs)."""
    seen = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in succ.get(u, ()):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def is_out_tree(graph: DiGraph, root: int) -> bool:
    """True iff ``graph`` is an out-tree rooted at ``root``.

    Every vertex except the root must have in-degree exactly one, the
    root in-degree zero, and all vertices must be reachable from the
    root.  This is the precondition of the optimal tree DP
    (:mod:`repro.core.tree_dp`).
    """
    if graph.in_degree(root) != 0:
        return False
    for u in graph.vertices():
        if u != root and graph.in_degree(u) != 1:
            return False
    return len(reachable_set(graph, [root])) == graph.n
