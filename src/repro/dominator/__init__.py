"""Dominator trees: Lengauer–Tarjan, iterative and naive algorithms."""

from .iterative import immediate_dominators_iterative
from .lengauer_tarjan import (
    dominator_tree_arrays,
    dominator_tree_csr,
    immediate_dominators,
)
from .naive import dominator_sets, immediate_dominators_naive
from .tree import (
    DominatorTree,
    dominator_order_sizes,
    dominator_order_sizes_csr,
    subtree_sizes,
)

__all__ = [
    "immediate_dominators",
    "dominator_tree_arrays",
    "dominator_tree_csr",
    "immediate_dominators_iterative",
    "immediate_dominators_naive",
    "dominator_sets",
    "DominatorTree",
    "subtree_sizes",
    "dominator_order_sizes",
    "dominator_order_sizes_csr",
]
