"""Dominator-tree structure and subtree statistics.

Theorem 6 of the paper: for a sampled graph ``g`` with source ``s``,
``sigma->u(s, g)`` — the number of vertices whose every path from ``s``
passes through ``u`` — equals the size of the subtree rooted at ``u`` in
the dominator tree of ``g``.  :func:`subtree_sizes` computes all of
those sizes in one linear pass, which is exactly the per-sample work of
Algorithm 2.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence, Union

import numpy as np

from .lengauer_tarjan import dominator_tree_arrays, dominator_tree_csr

__all__ = [
    "DominatorTree",
    "subtree_sizes",
    "dominator_order_sizes",
    "dominator_order_sizes_csr",
]

Adjacency = Union[Mapping[int, Sequence[int]], Sequence[Sequence[int]]]


def subtree_sizes(idom: Sequence[int]) -> list[int]:
    """Subtree sizes for a preorder-numbered dominator tree.

    ``idom[w]`` must be the immediate dominator of ``w`` with
    ``idom[w] < w`` for all ``w >= 1`` (as produced by
    :func:`~repro.dominator.lengauer_tarjan.dominator_tree_arrays`);
    a single descending sweep then accumulates child sizes into parents.
    """
    size = len(idom)
    sizes = [1] * size
    for w in range(size - 1, 0, -1):
        sizes[idom[w]] += sizes[w]
    return sizes


def dominator_order_sizes(
    succ: Adjacency, root: int
) -> tuple[np.ndarray, np.ndarray]:
    """DFS preorder and dominator-subtree sizes, as flat int64 arrays.

    The per-sample payload of the sketch estimator: ``order`` lists the
    reachable vertices (root first) and ``sizes[i]`` is the dominator
    subtree size of ``order[i]`` — by Theorem 6 exactly the number of
    vertices cut off when ``order[i]`` is blocked in this sample.
    Packing both into numpy arrays lets the sketch index aggregate
    thousands of samples with ``np.add.at`` scatters instead of Python
    loops.
    """
    order, idom = dominator_tree_arrays(succ, root)
    return (
        np.asarray(order, dtype=np.int64),
        np.asarray(subtree_sizes(idom), dtype=np.int64),
    )


def dominator_order_sizes_csr(
    indptr: Sequence[int], indices: Sequence[int], root: int
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`dominator_order_sizes` straight off CSR arrays.

    The hot-path form used by the batched sketch builder: the sampled
    graph arrives as flat ``indptr``/``indices`` arrays (cut out of the
    pooled sample arrays with numpy, no Python adjacency ever built)
    and the payload comes back as flat int64 arrays ready for
    ``np.add.at`` aggregation.
    """
    order, idom = dominator_tree_csr(indptr, indices, root)
    return (
        np.asarray(order, dtype=np.int64),
        np.asarray(subtree_sizes(idom), dtype=np.int64),
    )


class DominatorTree:
    """Dominator tree of the subgraph reachable from ``root``.

    A convenience wrapper used by the public API, examples and tests;
    the hot estimator path calls the array routines directly.
    """

    def __init__(self, succ: Adjacency, root: int) -> None:
        self.root = root
        self._order, self._idom_nums = dominator_tree_arrays(succ, root)
        self._dfn = {v: i for i, v in enumerate(self._order)}
        self._sizes = subtree_sizes(self._idom_nums)

    # ------------------------------------------------------------------
    # queries (all keyed by original vertex ids)
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> list[int]:
        """Reachable vertices in DFS preorder (root first)."""
        return list(self._order)

    def idom(self, v: int) -> int:
        """Immediate dominator of ``v`` (raises for the root)."""
        num = self._dfn[v]
        if num == 0:
            raise ValueError("the root has no immediate dominator")
        return self._order[self._idom_nums[num]]

    def idom_map(self) -> dict[int, int]:
        return {
            self._order[w]: self._order[self._idom_nums[w]]
            for w in range(1, len(self._order))
        }

    def subtree_size(self, v: int) -> int:
        """Number of vertices dominated by ``v`` (including ``v``)."""
        return self._sizes[self._dfn[v]]

    def subtree_size_map(self) -> dict[int, int]:
        return {v: self._sizes[i] for i, v in enumerate(self._order)}

    def dominates(self, u: int, v: int) -> bool:
        """True iff ``u`` dominates ``v`` (every vertex dominates itself)."""
        if u not in self._dfn or v not in self._dfn:
            return False
        target = self._dfn[u]
        w = self._dfn[v]
        while w > target:
            w = self._idom_nums[w]
        return w == target

    def depth(self, v: int) -> int:
        """Edge distance from the root in the dominator tree."""
        w = self._dfn[v]
        d = 0
        while w != 0:
            w = self._idom_nums[w]
            d += 1
        return d

    def children(self, v: int) -> list[int]:
        num = self._dfn[v]
        return [
            self._order[w]
            for w in range(1, len(self._order))
            if self._idom_nums[w] == num
        ]

    def bfs_levels(self) -> list[list[int]]:
        """Vertices grouped by dominator-tree depth (level 0 = root)."""
        kids: dict[int, list[int]] = {}
        for w in range(1, len(self._order)):
            kids.setdefault(self._idom_nums[w], []).append(w)
        levels: list[list[int]] = []
        frontier = deque([0])
        while frontier:
            levels.append([self._order[w] for w in frontier])
            nxt: deque[int] = deque()
            for w in frontier:
                nxt.extend(kids.get(w, ()))
            frontier = nxt
        return levels

    def render(self, label=str, max_vertices: int = 200) -> str:
        """ASCII rendering of the tree (used by examples/debugging).

        ``label`` maps a vertex id to its display string; rendering
        stops with an ellipsis beyond ``max_vertices``.
        """
        kids: dict[int, list[int]] = {}
        for w in range(1, len(self._order)):
            kids.setdefault(self._idom_nums[w], []).append(w)
        lines: list[str] = []

        def walk(num: int, prefix: str, tail: bool) -> None:
            if len(lines) >= max_vertices:
                return
            connector = "" if not prefix and not tail else (
                "`- " if tail else "|- "
            )
            lines.append(
                f"{prefix}{connector}{label(self._order[num])} "
                f"[{self._sizes[num]}]"
            )
            children = kids.get(num, [])
            child_prefix = prefix + (
                "" if not prefix and not tail else ("   " if tail else "|  ")
            )
            for index, child in enumerate(children):
                walk(child, child_prefix, index == len(children) - 1)

        walk(0, "", False)
        if len(lines) >= max_vertices:
            lines.append("...")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DominatorTree(root={self.root}, size={len(self._order)})"
