"""Definition-based dominator computation (test oracle).

``u`` dominates ``v`` iff every path from the root to ``v`` goes through
``u`` (Definition 5 of the paper) — equivalently, iff ``v`` becomes
unreachable when ``u`` is removed.  This O(n * (n + m)) routine is far
too slow for the estimator but is the perfect cross-check for the
Lengauer–Tarjan and iterative implementations.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence, Union

__all__ = ["dominator_sets", "immediate_dominators_naive"]

Adjacency = Union[Mapping[int, Sequence[int]], Sequence[Sequence[int]]]


def _out_edges(succ: Adjacency, u: int) -> Sequence[int]:
    if isinstance(succ, Mapping):
        return succ.get(u, ())
    return succ[u]


def _reachable(succ: Adjacency, root: int, removed: int = -1) -> set[int]:
    if root == removed:
        return set()
    seen = {root}
    queue = deque((root,))
    while queue:
        u = queue.popleft()
        for v in _out_edges(succ, u):
            if v != removed and v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def dominator_sets(succ: Adjacency, root: int) -> dict[int, set[int]]:
    """``{v: set of dominators of v}`` for every reachable vertex.

    Every vertex dominates itself; the root dominates everything.
    """
    base = _reachable(succ, root)
    doms: dict[int, set[int]] = {v: {v, root} for v in base}
    doms[root] = {root}
    for u in base:
        if u == root:
            continue
        still = _reachable(succ, root, removed=u)
        for v in base - still:
            doms[v].add(u)
    return doms


def immediate_dominators_naive(succ: Adjacency, root: int) -> dict[int, int]:
    """``{v: idom(v)}`` for reachable ``v != root`` by brute force.

    The immediate dominator is the dominator (other than ``v``) that is
    dominated by every other dominator of ``v`` (Definition 6), i.e. the
    one with the largest dominator set.
    """
    doms = dominator_sets(succ, root)
    idom: dict[int, int] = {}
    for v, dset in doms.items():
        if v == root:
            continue
        proper = dset - {v}
        # the immediate dominator is the proper dominator dominated by
        # all the others — it has the maximum number of dominators
        idom[v] = max(proper, key=lambda u: len(doms[u]))
    return idom
