"""Cooper–Harvey–Kennedy iterative dominator algorithm.

"A Simple, Fast Dominance Algorithm" — a data-flow fixed point over the
reverse postorder.  Asymptotically worse than Lengauer–Tarjan but with
tiny constants; we keep it both as an independent implementation for
cross-validation and for the dominator ablation benchmark.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

__all__ = ["immediate_dominators_iterative"]

Adjacency = Union[Mapping[int, Sequence[int]], Sequence[Sequence[int]]]


def _out_edges(succ: Adjacency, u: int) -> Sequence[int]:
    if isinstance(succ, Mapping):
        return succ.get(u, ())
    return succ[u]


def immediate_dominators_iterative(
    succ: Adjacency, root: int
) -> dict[int, int]:
    """``{v: idom(v)}`` for reachable ``v != root``.

    Vertices are numbered in DFS preorder; the fixed point intersects
    predecessor dominators until stable.
    """
    # DFS to number reachable vertices (preorder) and get postorder.
    dfn: dict[int, int] = {root: 0}
    order = [root]
    post: list[int] = []
    stack = [iter(_out_edges(succ, root))]
    stack_vertex = [root]
    while stack:
        advanced = False
        for v in stack[-1]:
            if v not in dfn:
                dfn[v] = len(order)
                order.append(v)
                stack.append(iter(_out_edges(succ, v)))
                stack_vertex.append(v)
                advanced = True
                break
        if not advanced:
            post.append(stack_vertex.pop())
            stack.pop()

    size = len(order)
    preds: list[list[int]] = [[] for _ in range(size)]
    for u in order:
        for v in _out_edges(succ, u):
            v_num = dfn.get(v)
            if v_num is not None:
                preds[v_num].append(dfn[u])

    rpo = [dfn[v] for v in reversed(post)]  # reverse postorder, root first
    rpo_position = [0] * size
    for position, v in enumerate(rpo):
        rpo_position[v] = position

    undefined = -1
    idom = [undefined] * size
    idom[0] = 0

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_position[a] > rpo_position[b]:
                a = idom[a]
            while rpo_position[b] > rpo_position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for w in rpo:
            if w == 0:
                continue
            new_idom = undefined
            for p in preds[w]:
                if idom[p] == undefined:
                    continue
                new_idom = p if new_idom == undefined else intersect(
                    new_idom, p
                )
            if new_idom != undefined and idom[w] != new_idom:
                idom[w] = new_idom
                changed = True

    return {order[w]: order[idom[w]] for w in range(1, size)}
