"""Lengauer–Tarjan immediate-dominator computation, array-native.

This is the algorithm the paper uses to build dominator trees of sampled
graphs (Section V-B3).  We implement the "simple" O(m log n) variant
with a union-find forest and path compression, fully iteratively so deep
sampled graphs cannot overflow the recursion limit.

The core routine, :func:`dominator_tree_csr`, consumes the graph as
flat CSR-style arrays (``indptr``/``indices``, numpy arrays or plain
sequences): vertex ``u``'s successors are
``indices[indptr[u]:indptr[u + 1]]``.  That is the layout the live-edge
sample pool already stores, so the sketch estimator's hot path never
materialises a Python adjacency mapping — the per-sample CSR is cut
straight out of the pooled arrays with numpy and handed here.  Only
vertices reachable from ``root`` participate; everything else is
ignored, which matches the estimator's needs: unreachable vertices
contribute nothing to the spread.

The historical dict/list-of-list adjacency surface
(:func:`dominator_tree_arrays`, :func:`immediate_dominators`) survives
as a thin adapter that flattens the mapping to CSR and delegates, so
every caller sees identical results — same dominator tree, same DFS
preorder — regardless of the input layout.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

__all__ = [
    "immediate_dominators",
    "dominator_tree_arrays",
    "dominator_tree_csr",
]

Adjacency = Union[Mapping[int, Sequence[int]], Sequence[Sequence[int]]]


def dominator_tree_csr(
    indptr: Sequence[int], indices: Sequence[int], root: int
) -> tuple[list[int], list[int]]:
    """Core Lengauer–Tarjan routine on CSR arrays.

    ``indptr`` has one entry per vertex plus a terminator; vertex
    ``u``'s out-neighbours are ``indices[indptr[u]:indptr[u + 1]]``.
    Both may be numpy ``int64`` arrays or plain Python sequences — the
    routine only indexes them, and only for vertices reachable from
    ``root``, so handing it a huge sample CSR costs work proportional
    to the reachable subgraph.

    Returns ``(order, idom)`` where ``order`` lists reachable vertices
    in DFS preorder (``order[0] == root``) and ``idom[i]`` is the
    preorder number of the immediate dominator of ``order[i]``
    (``idom[0] == 0``).  Working in preorder numbers keeps every
    structure a flat list, and gives the crucial invariant
    ``idom[w] < w`` used by the subtree-size accumulation of
    Algorithm 2.
    """
    # ------------------------------------------------------------------
    # Step 1: iterative DFS with an explicit edge-cursor stack —
    # preorder numbers, tree parents.  ``dfn`` is a flat list indexed
    # by vertex id (-1 = unvisited), so the walk does no hashing.
    # ------------------------------------------------------------------
    nv = len(indptr) - 1
    dfn = [-1] * nv
    dfn[root] = 0
    order: list[int] = [root]
    parent: list[int] = [0]
    stack_num = [0]
    stack_cursor = [indptr[root]]
    stack_end = [indptr[root + 1]]
    while stack_num:
        u_num = stack_num[-1]
        j = stack_cursor[-1]
        end = stack_end[-1]
        advanced = False
        while j < end:
            v = indices[j]
            j += 1
            if dfn[v] < 0:
                v_num = len(order)
                dfn[v] = v_num
                order.append(v)
                parent.append(u_num)
                stack_cursor[-1] = j
                stack_num.append(v_num)
                stack_cursor.append(indptr[v])
                stack_end.append(indptr[v + 1])
                advanced = True
                break
        if not advanced:
            stack_num.pop()
            stack_cursor.pop()
            stack_end.pop()

    size = len(order)
    # predecessor lists in preorder numbering; every successor of a
    # reachable vertex is itself reachable, so no membership test
    preds: list[list[int]] = [[] for _ in range(size)]
    for u_num in range(size):
        u = order[u_num]
        for j in range(indptr[u], indptr[u + 1]):
            preds[dfn[indices[j]]].append(u_num)

    # ------------------------------------------------------------------
    # Step 2/3: semidominators and implicit immediate dominators.
    # ------------------------------------------------------------------
    semi = list(range(size))
    idom = [0] * size
    ancestor = [-1] * size  # union-find forest over processed vertices
    label = list(range(size))  # min-semi representative on forest path
    buckets: list[list[int]] = [[] for _ in range(size)]

    def evaluate(v: int) -> int:
        """Min-semi label on the forest path from ``v`` up to its root.

        Iterative path compression: walk up collecting the path, then
        fold labels top-down so each node ends up pointing directly at
        the forest root with its label finalised.
        """
        if ancestor[v] == -1:
            return v
        # Collect v and every ancestor until the node directly below the
        # forest root (that node's label is already final).
        path = []
        u = v
        while ancestor[ancestor[u]] != -1:
            path.append(u)
            u = ancestor[u]
        # Fold top-down: each node inherits the better label of its
        # (already compressed) ancestor, then points at the root.
        for w in reversed(path):
            anc = ancestor[w]
            if semi[label[anc]] < semi[label[w]]:
                label[w] = label[anc]
            ancestor[w] = ancestor[anc]
        return label[v]

    for w in range(size - 1, 0, -1):
        for v in preds[w]:
            u = evaluate(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        buckets[semi[w]].append(w)
        p = parent[w]
        ancestor[w] = p  # link(p, w)
        for v in buckets[p]:
            u = evaluate(v)
            idom[v] = u if semi[u] < semi[v] else p
        buckets[p].clear()

    # ------------------------------------------------------------------
    # Step 4: explicit immediate dominators in preorder.
    # ------------------------------------------------------------------
    for w in range(1, size):
        if idom[w] != semi[w]:
            idom[w] = idom[idom[w]]

    return order, idom


def _csr_of_adjacency(
    succ: Adjacency, root: int
) -> tuple[list[int], list[int], list | None, int]:
    """Flatten an adjacency mapping to ``(indptr, indices, back, root)``.

    ``back`` maps dense ids used in the CSR arrays back to the original
    vertex labels (``None`` when the input was already a dense
    list-of-lists).  Per-vertex neighbour order is preserved, so the
    DFS preorder of the flattened graph is the DFS preorder of the
    original adjacency.
    """
    if not isinstance(succ, Mapping):
        indptr = [0]
        indices: list[int] = []
        for nbrs in succ:
            indices.extend(nbrs)
            indptr.append(len(indices))
        return indptr, indices, None, root

    dense: dict = {}
    back: list = []

    def intern(v) -> int:
        i = dense.get(v)
        if i is None:
            i = len(dense)
            dense[v] = i
            back.append(v)
        return i

    intern(root)
    rows: dict[int, list[int]] = {}
    for u, nbrs in succ.items():
        rows[intern(u)] = [intern(v) for v in nbrs]
    indptr = [0]
    indices = []
    for i in range(len(back)):
        indices.extend(rows.get(i, ()))
        indptr.append(len(indices))
    return indptr, indices, back, 0


def dominator_tree_arrays(
    succ: Adjacency, root: int
) -> tuple[list[int], list[int]]:
    """:func:`dominator_tree_csr` over a dict / list-of-list adjacency.

    The historical entry point, kept for the public API and tests: the
    adjacency is flattened to CSR arrays (preserving neighbour order)
    and the flat core does the work.  Returns the same ``(order,
    idom)`` pair, with ``order`` in the original vertex labels.
    """
    indptr, indices, back, dense_root = _csr_of_adjacency(succ, root)
    order, idom = dominator_tree_csr(indptr, indices, dense_root)
    if back is not None:
        order = [back[i] for i in order]
    return order, idom


def immediate_dominators(succ: Adjacency, root: int) -> dict[int, int]:
    """Immediate dominators keyed by original vertex ids.

    Returns ``{v: idom(v)}`` for every vertex ``v != root`` reachable
    from ``root``.  The root itself is omitted (it has no dominator).
    """
    order, idom = dominator_tree_arrays(succ, root)
    return {order[w]: order[idom[w]] for w in range(1, len(order))}
