"""Lengauer–Tarjan immediate-dominator computation.

This is the algorithm the paper uses to build dominator trees of sampled
graphs (Section V-B3).  We implement the "simple" O(m log n) variant
with a union-find forest and path compression, fully iteratively so deep
sampled graphs cannot overflow the recursion limit.

The input is an out-adjacency mapping (a dict or a list indexed by
vertex).  Only vertices reachable from ``root`` participate; everything
else is ignored, which matches the estimator's needs: unreachable
vertices contribute nothing to the spread.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

__all__ = ["immediate_dominators", "dominator_tree_arrays"]

Adjacency = Union[Mapping[int, Sequence[int]], Sequence[Sequence[int]]]


def _out_edges(succ: Adjacency, u: int) -> Sequence[int]:
    if isinstance(succ, Mapping):
        return succ.get(u, ())
    return succ[u]


def dominator_tree_arrays(
    succ: Adjacency, root: int
) -> tuple[list[int], list[int]]:
    """Core Lengauer–Tarjan routine on DFS-numbered arrays.

    Returns ``(order, idom)`` where ``order`` lists reachable vertices in
    DFS preorder (``order[0] == root``) and ``idom[i]`` is the preorder
    number of the immediate dominator of ``order[i]`` (``idom[0] == 0``).

    Working in preorder numbers keeps every structure a flat list, and
    gives the crucial invariant ``idom[w] < w`` used by the subtree-size
    accumulation of Algorithm 2.
    """
    # ------------------------------------------------------------------
    # Step 1: iterative DFS — preorder numbers, tree parents, and the
    # predecessor lists restricted to reachable vertices.
    # ------------------------------------------------------------------
    dfn: dict[int, int] = {root: 0}
    order: list[int] = [root]
    parent: list[int] = [0]
    stack = [iter(_out_edges(succ, root))]
    stack_vertex = [0]
    while stack:
        advanced = False
        u_num = stack_vertex[-1]
        for v in stack[-1]:
            if v not in dfn:
                dfn[v] = len(order)
                order.append(v)
                parent.append(u_num)
                stack.append(iter(_out_edges(succ, v)))
                stack_vertex.append(dfn[v])
                advanced = True
                break
        if not advanced:
            stack.pop()
            stack_vertex.pop()

    size = len(order)
    preds: list[list[int]] = [[] for _ in range(size)]
    for u in order:
        u_num = dfn[u]
        for v in _out_edges(succ, u):
            v_num = dfn.get(v)
            if v_num is not None:
                preds[v_num].append(u_num)

    # ------------------------------------------------------------------
    # Step 2/3: semidominators and implicit immediate dominators.
    # ------------------------------------------------------------------
    semi = list(range(size))
    idom = [0] * size
    ancestor = [-1] * size  # union-find forest over processed vertices
    label = list(range(size))  # min-semi representative on forest path
    buckets: list[list[int]] = [[] for _ in range(size)]

    def evaluate(v: int) -> int:
        """Min-semi label on the forest path from ``v`` up to its root.

        Iterative path compression: walk up collecting the path, then
        fold labels top-down so each node ends up pointing directly at
        the forest root with its label finalised.
        """
        if ancestor[v] == -1:
            return v
        # Collect v and every ancestor until the node directly below the
        # forest root (that node's label is already final).
        path = []
        u = v
        while ancestor[ancestor[u]] != -1:
            path.append(u)
            u = ancestor[u]
        # Fold top-down: each node inherits the better label of its
        # (already compressed) ancestor, then points at the root.
        for w in reversed(path):
            anc = ancestor[w]
            if semi[label[anc]] < semi[label[w]]:
                label[w] = label[anc]
            ancestor[w] = ancestor[anc]
        return label[v]

    for w in range(size - 1, 0, -1):
        for v in preds[w]:
            u = evaluate(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        buckets[semi[w]].append(w)
        p = parent[w]
        ancestor[w] = p  # link(p, w)
        for v in buckets[p]:
            u = evaluate(v)
            idom[v] = u if semi[u] < semi[v] else p
        buckets[p].clear()

    # ------------------------------------------------------------------
    # Step 4: explicit immediate dominators in preorder.
    # ------------------------------------------------------------------
    for w in range(1, size):
        if idom[w] != semi[w]:
            idom[w] = idom[idom[w]]

    return order, idom


def immediate_dominators(succ: Adjacency, root: int) -> dict[int, int]:
    """Immediate dominators keyed by original vertex ids.

    Returns ``{v: idom(v)}`` for every vertex ``v != root`` reachable
    from ``root``.  The root itself is omitted (it has no dominator).
    """
    order, idom = dominator_tree_arrays(succ, root)
    return {order[w]: order[idom[w]] for w in range(1, len(order))}
