"""Size-bounded LRU cache of warm serving artifacts.

A *serving artifact* is everything the engine needs resident to answer
blocker/spread queries instantly: the model-prepared graph frozen to
CSR, a materialised :class:`~repro.engine.pool.SamplePool` of
``theta`` live-edge samples, a pooled Monte-Carlo evaluator over those
samples (used for spread queries — common random numbers across every
query), and a :class:`~repro.engine.sketch.SketchIndex` sharing the
same pool (used for blocker selection — O(1) marginal gains).

Artifacts are keyed by :class:`ArtifactKey` ``(graph, model, theta,
seed, layout)`` and built deterministically from the key via an
:class:`~repro.engine.spec.EngineSpec`: the same key always yields
bit-identical samples and therefore bit-identical answers, which is
what makes cache hits *semantically* transparent, not just faster.

The cache is bounded by entry count and bytes; eviction is LRU.  With
a ``cache_dir`` the pools persist through ``repro.engine.pool``'s
``.npy`` snapshots and the sketch index persists its arena views as
mmap-able ``.npy`` artifacts next to them, so evicting an artifact
only drops memory — a later rebuild of the same key re-attaches the
samples *and* the dominator-tree arenas memory-mapped instead of
re-drawing and re-building them (counted in ``stats.rehydrations``
and the sketch's ``rehydrations`` gauge respectively).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..bench import pick_seeds, prepare_graph
from ..core import solve_imin
from ..engine import build_evaluator, EngineSpec, SamplePool
from ..engine.sketch import LAYOUTS
from ..graph import GraphDelta
from ..obs import span, track
from .registry import GraphRegistry

__all__ = [
    "Artifact",
    "ArtifactCache",
    "ArtifactKey",
    "CacheStats",
    "DeltaJournal",
    "JOURNAL_VERSION",
]

JOURNAL_VERSION = 1
"""Format version of the persisted per-graph delta journal."""


@dataclass(frozen=True, order=True)
class ArtifactKey:
    """Identity of one warm artifact: what was sampled, and how.

    ``layout`` selects the sketch view layout (see
    :class:`~repro.engine.sketch.SketchIndex`); it defaults so the
    historical four-field positional construction keeps working.
    """

    graph: str
    model: str
    theta: int
    seed: int
    layout: str = "arena"

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise ValueError("theta must be positive")
        if self.layout not in LAYOUTS:
            raise ValueError(
                f"unknown sketch layout {self.layout!r}: expected one "
                "of " + ", ".join(LAYOUTS)
            )

    @classmethod
    def from_spec(cls, graph: str, spec: EngineSpec) -> "ArtifactKey":
        """Key the artifact an :class:`EngineSpec` would build."""
        return cls(
            graph, spec.model, spec.theta, spec.seed, spec.layout
        )

    def spec(self, cache_dir=None, workers=None) -> EngineSpec:
        """The :class:`EngineSpec` this key pins (engine ``sketch``)."""
        return EngineSpec(
            engine="sketch",
            model=self.model,
            theta=self.theta,
            seed=self.seed,
            workers=workers,
            layout=self.layout,
            cache_dir=cache_dir,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "graph": self.graph,
            "model": self.model,
            "theta": self.theta,
            "seed": self.seed,
            "layout": self.layout,
        }


@dataclass
class CacheStats:
    """Observability counters for an :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    evictions: int = 0
    rehydrations: int = 0
    """Builds that re-attached a persisted pool instead of sampling."""

    def __post_init__(self) -> None:
        # re-register into the shared metrics registry (attribute API
        # unchanged): repro.obs sums these across live caches at
        # collection time (repro_cache_*_total)
        track("cache", self)

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
        }


class DeltaJournal:
    """Durable, replayable per-graph history of applied deltas.

    The serving layer's ``update`` op mutates warm artifacts in place;
    this journal is what makes those mutations survive the artifact's
    death.  One JSON file per graph *name* under ``cache_dir`` (or
    memory-only without one) records every applied delta with its
    monotone ``seq``; :meth:`ArtifactCache._build` replays the history
    onto the freshly prepared graph, so a rebuilt or restarted worker
    lands on the *post-delta* pool fingerprint and rehydrates the
    patched mmap artifacts instead of stale pre-delta ones.

    ``seq`` is the exactly-once guard: :meth:`record` refuses (without
    error) any sequence number at or below the last applied one, so a
    client that resends an update after a dropped connection gets an
    acknowledgement, never a double apply.  Writes are atomic
    (tmp-then-rename) and serialised per graph name.
    """

    def __init__(self, cache_dir=None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._lock = threading.RLock()
        self._entries: dict[str, list[dict]] = {}
        self._loaded: set[str] = set()
        self._graph_locks: dict[str, threading.RLock] = {}

    def graph_lock(self, graph: str) -> threading.RLock:
        """The per-graph mutex serialising seq-check + apply + append
        — held by the caller across the engine mutation so two updates
        to the same graph name can never interleave."""
        with self._lock:
            return self._graph_locks.setdefault(graph, threading.RLock())

    def _path(self, graph: str) -> Path | None:
        if self.cache_dir is None:
            return None
        digest = hashlib.md5(graph.encode("utf-8")).hexdigest()[:16]
        return self.cache_dir / f"deltas-{digest}.json"

    def _load(self, graph: str) -> list[dict]:
        with self._lock:
            if graph in self._loaded:
                return self._entries.setdefault(graph, [])
            self._loaded.add(graph)
            entries = self._entries.setdefault(graph, [])
        path = self._path(graph)
        if path is None or not path.exists():
            return entries
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return entries
        if (
            not isinstance(payload, dict)
            or payload.get("v") != JOURNAL_VERSION
            or payload.get("graph") != graph
        ):
            return entries
        for entry in payload.get("entries") or []:
            if isinstance(entry, dict) and isinstance(
                entry.get("seq"), int
            ):
                entries.append(entry)
        return entries

    def last_seq(self, graph: str) -> int:
        """The highest applied sequence number; 0 before any update."""
        entries = self._load(graph)
        return entries[-1]["seq"] if entries else 0

    def record(self, graph: str, delta: GraphDelta, seq: int) -> None:
        """Append one applied delta (caller holds the graph lock and
        has already applied the delta to the live artifact)."""
        entries = self._load(graph)
        if entries and seq <= entries[-1]["seq"]:
            raise ValueError(
                f"seq {seq} is not past the journal head "
                f"{entries[-1]['seq']} for graph {graph!r}"
            )
        entries.append({"seq": seq, **delta.as_dict()})
        self._persist(graph, entries)

    def _persist(self, graph: str, entries: list[dict]) -> None:
        path = self._path(graph)
        if path is None:
            return
        payload = {
            "v": JOURNAL_VERSION,
            "graph": graph,
            "entries": entries,
        }
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(
            json.dumps(payload, separators=(",", ":")), encoding="utf-8"
        )
        tmp.replace(path)

    def replay(self, graph: str, target) -> int:
        """Apply the journaled history to a freshly prepared graph;
        returns the number of deltas replayed."""
        entries = self._load(graph)
        for entry in entries:
            GraphDelta.from_dict(
                {k: v for k, v in entry.items() if k != "seq"}
            ).apply_to(target)
        return len(entries)


class Artifact:
    """One warm ``(graph, model, theta, seed)`` serving state.

    All query methods serialise on an internal lock: the pooled
    evaluator and the sketch index share mutable state (the growing
    pool, the rebased trees), and answers must be independent of
    request interleaving — the concurrency contract the service's
    tests pin down.  Results are pure functions of the key and the
    query parameters.
    """

    def __init__(
        self,
        key: ArtifactKey,
        graph,
        cache_dir=None,
        build_workers: int | None = None,
    ) -> None:
        self.key = key
        self.graph = graph
        spec = key.spec(cache_dir=cache_dir, workers=build_workers)
        self.pool = SamplePool(
            graph,
            rng=key.seed,
            cache_dir=cache_dir,
            cache_key=f"service-{spec.cache_key(stream=0)}",
        )
        self.pooled = build_evaluator(
            graph, spec.with_engine("pooled"), pool=self.pool
        )
        # build_workers fans the sketch's batched dominator-tree
        # construction (the expensive half of a cold block query)
        # across processes; answers are bit-identical at any setting.
        # With a cache_dir, the index persists each warm arena view
        # next to the pool snapshot and rehydrates it memory-mapped on
        # rebuild — the executor threads then share one read-only
        # mapping instead of re-deriving theta trees.
        self.sketch = build_evaluator(
            graph, spec.with_engine("sketch"), pool=self.pool
        )
        # final quality in block() is judged on an *independent* sample
        # stream (same discipline as the CLI's stream-0/stream-1 split):
        # judging on the selection pool would score the winning blocker
        # set on the very samples that selected it, biasing the
        # reported spread optimistically.  The judge pool draws lazily
        # on the first block query — spread-only workloads never pay it.
        self.judge = build_evaluator(
            graph, spec.with_engine("pooled"), stream=1
        )
        self.csr = self.pool.csr
        self.built_at = time.time()
        self.applied_seq = 0
        """Journal position this artifact's state reflects (set by the
        cache: the journal head at build-replay time, advanced by each
        applied update)."""
        self._lock = threading.RLock()
        # materialise (or mmap-attach) the samples up front: the cache
        # hands out *warm* artifacts, never lazily-cold ones
        self.pool.get(key.theta)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def default_seeds(self, count: int) -> list[int]:
        """The seed vertices a request gets when it names none.

        Derived from the artifact seed exactly like the CLI derives
        them from ``--rng``, so service answers line up with
        single-shot CLI runs on the same parameters.
        """
        return pick_seeds(self.graph, count, rng=self.key.seed)

    def spread(
        self,
        seeds: Sequence[int],
        blocked: Iterable[int] = (),
        theta: int | None = None,
    ) -> float:
        return self.spread_many(seeds, [list(blocked)], theta)[0]

    def spread_many(
        self,
        seeds: Sequence[int],
        blocked_sets: Sequence[Iterable[int]],
        theta: int | None = None,
    ) -> list[float]:
        """Pooled estimates for many blocked sets in one traversal.

        This is the call the server's request coalescing funnels into:
        bit-identical to evaluating each blocked set alone (same
        samples, same chunking), but the per-chunk aliveness matrix is
        materialised once for the whole batch.
        """
        with self._lock:
            return self.pooled.expected_spread_many(
                seeds, theta or self.key.theta, blocked_sets
            )

    def block(
        self,
        seeds: Sequence[int],
        budget: int,
        algorithm: str = "greedy-replace",
        theta: int | None = None,
        rng: int | None = None,
    ) -> dict[str, object]:
        """Select blockers against the warm sketch index.

        Returns blockers plus before/after spread estimates from the
        independent judge pool — common random numbers between the two
        estimates (the delta is noise-cancelled) but a different
        stream than the selection, so the winner is never scored on
        the samples that picked it.
        """
        theta = theta or self.key.theta
        rng = self.key.seed if rng is None else rng
        with self._lock:
            start = time.perf_counter()
            result = solve_imin(
                self.graph,
                list(seeds),
                budget,
                algorithm=algorithm,
                theta=theta,
                rng=rng,
                evaluator=self.sketch,
            )
            elapsed = time.perf_counter() - start
            unblocked, blocked = self.judge.expected_spread_many(
                seeds, theta, [[], list(result.blockers)]
            )
        return {
            "algorithm": result.algorithm,
            "blockers": sorted(result.blockers),
            "spread_unblocked": unblocked,
            "spread_blocked": blocked,
            "elapsed_seconds": elapsed,
        }

    def warm_sketch(self, seeds: Sequence[int], theta: int | None = None):
        """Pre-build the sketch view for a seed set (the cold half of a
        first ``block`` query)."""
        with self._lock:
            self.sketch.expected_spread(seeds, theta or self.key.theta)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> dict[str, object]:
        """Patch the warm state with one batch of edge mutations.

        Runs under the artifact lock, so it serialises with every
        in-flight query: a spread that wins the lock answers against
        the pre-delta graph, one that loses answers against the
        post-delta graph — never a half-applied mix.  The sketch's
        :meth:`~repro.engine.sketch.SketchIndex.apply_delta` patches
        the *shared* selection pool (rebasing only touched trees and
        re-persisting under the post-delta fingerprint); the judge's
        independent stream-1 pool is patched the same way, and the
        pooled evaluator just resyncs to the shared pool's new CSR.
        """
        with self._lock:
            delta.check_against(self.graph)
            rebuilt_before = self.sketch.stats.delta_trees_rebuilt
            delta.apply_to(self.graph)
            report = self.sketch.apply_delta(delta)
            self.pooled.refresh_graph()
            self.judge.apply_delta(delta)
            self.csr = self.pool.csr
            return {
                "inserts": len(delta.inserts),
                "deletes": len(delta.deletes),
                "reweights": len(delta.reweights),
                "touched_samples": report.touched_count,
                "trees_rebuilt": (
                    self.sketch.stats.delta_trees_rebuilt - rebuilt_before
                ),
                "n": self.csr.n,
                "m": self.csr.m,
            }

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Resident size estimate: both pools' sample arrays plus the
        sketch index's resident tree state — for the arena layout the
        pooled tree arenas (at capacity, slack included) and the
        inverted membership indexes, per-tree arrays for the legacy
        layout.  A live gauge: it grows as block queries warm views
        and shrinks as the index drops them, so the cache's LRU byte
        bound tracks what the artifact actually holds in memory."""
        return (
            self.pool.nbytes
            + self.judge.pool.nbytes
            + self.sketch.nbytes
        )

    def describe(self) -> dict[str, object]:
        return {
            **self.key.as_dict(),
            "n": self.csr.n,
            "m": self.csr.m,
            "nbytes": self.nbytes,
            "applied_seq": self.applied_seq,
            "pool": self.pool.stats.as_dict(),
            "sketch": self.sketch.stats.as_dict(),
        }

    def close(self) -> None:
        # taken under the artifact lock: an eviction must not clear
        # the sketch's view cache out from under an in-flight query
        with self._lock:
            self.sketch.close()
            self.pooled.close()
            self.judge.close()


class ArtifactCache:
    """Thread-safe LRU of :class:`Artifact` bounded by entries/bytes.

    ``get`` either returns the resident artifact (a *hit*, refreshing
    its recency) or builds it (a *miss*).  Builds of the same key are
    single-flight: concurrent requesters block on a per-key build lock
    and share the one build instead of duplicating the most expensive
    operation the service performs.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        max_entries: int = 8,
        max_bytes: int | None = None,
        cache_dir=None,
        build_workers: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.registry = registry
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.cache_dir = cache_dir
        self.build_workers = build_workers
        """Worker processes for each artifact's batched sketch-tree
        builds (``None`` = serial; answers identical either way)."""
        self.stats = CacheStats()
        self.journal = DeltaJournal(cache_dir)
        """Per-graph delta history; replayed in :meth:`_build` so a
        rebuilt artifact starts from the same mutated graph the live
        one was patched to."""
        self.on_evict: "Callable[[ArtifactKey, Artifact], None] | None" = (
            None
        )
        """Hook invoked (before the artifact closes) for every
        eviction — the serving layer uses it to retire the evicted
        artifact's executor thread so the cache's memory bound holds."""
        self._artifacts: OrderedDict[ArtifactKey, Artifact] = OrderedDict()
        self._building: dict[ArtifactKey, threading.Lock] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, key: ArtifactKey) -> Artifact:
        with self._lock:
            artifact = self._artifacts.get(key)
            if artifact is not None:
                self._artifacts.move_to_end(key)
                self.stats.hits += 1
                # artifact footprints grow after insertion (block
                # queries warm sketch views, counted in nbytes), so
                # the byte bound is re-enforced on hits too; the hit
                # key was just made most-recent and is never evicted
                self._shrink()
                return artifact
            self.stats.misses += 1
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                artifact = self._artifacts.get(key)
                if artifact is not None:  # built by the flight we joined
                    self._artifacts.move_to_end(key)
                    return artifact
            try:
                artifact = self._build(key)
            finally:
                # drop the single-flight entry on failure too, or a
                # permanently failing key grows the dict forever
                with self._lock:
                    self._building.pop(key, None)
            with self._lock:
                self._artifacts[key] = artifact
                self._shrink()
            return artifact

    def _build(self, key: ArtifactKey) -> Artifact:
        with span("cache.build"):
            raw = self.registry.get(key.graph)
            # prepare on a copy: the registry's raw graph is shared by
            # every (model, seed) variant and must stay
            # probability-free
            prepared = prepare_graph(raw.copy(), key.model, rng=key.seed)
            # replay the journaled delta history before sampling: the
            # pool fingerprint is a content hash of the mutated CSR,
            # so the build lands exactly on the artifacts the live
            # update path persisted — a restarted worker rehydrates
            # the patched pool and trees, never a stale pre-delta copy
            with self.journal.graph_lock(key.graph):
                self.journal.replay(key.graph, prepared)
                artifact = Artifact(
                    key,
                    prepared,
                    cache_dir=self.cache_dir,
                    build_workers=self.build_workers,
                )
                artifact.applied_seq = self.journal.last_seq(key.graph)
        self.stats.builds += 1
        if artifact.pool.stats.disk_loads:
            self.stats.rehydrations += 1
        return artifact

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        key: ArtifactKey,
        delta: GraphDelta,
        seq: int | None = None,
    ) -> dict[str, object]:
        """Apply one delta to the warm artifact for ``key``, journal
        it, and invalidate stale siblings.

        ``seq`` is the client's monotone sequence number (defaulting
        to the journal head + 1).  A duplicate or lower ``seq`` is
        *acknowledged without applying* (``applied: false``) — the
        exactly-once contract that makes a blind client resend after a
        dropped connection safe.  On success every other resident
        artifact of the same graph *name* is evicted: their pools were
        sampled from a graph that no longer matches the journal, and a
        later request rebuilds them through the replay path instead.
        """
        with self.journal.graph_lock(key.graph):
            last = self.journal.last_seq(key.graph)
            if seq is None:
                seq = last + 1
            elif seq <= last:
                return {"applied": False, "seq": seq, "last_seq": last}
            artifact = self.get(key)
            if artifact.applied_seq != last:
                # a sibling key advanced the journal after this
                # artifact was built: rebuild through the replay path
                # so history applies in order, never interleaved
                self.invalidate(key.graph, keep=None)
                artifact = self.get(key)
            outcome = artifact.apply_delta(delta)
            artifact.applied_seq = seq
            self.journal.record(key.graph, delta, seq)
        invalidated = self.invalidate(key.graph, keep=key)
        return {
            "applied": True,
            "seq": seq,
            "last_seq": seq,
            "invalidated_siblings": invalidated,
            **outcome,
        }

    def invalidate(self, graph: str, keep: ArtifactKey | None = None) -> int:
        """Evict every resident artifact of ``graph`` except ``keep``.

        Used after an update: siblings (other model/theta/seed/layout
        keys over the same name) were built against the pre-delta
        graph and must rebuild through the journal replay."""
        with self._lock:
            stale = [
                k for k in self._artifacts
                if k.graph == graph and k != keep
            ]
            evicted = 0
            for k in stale:
                artifact = self._artifacts.pop(k)
                if self.on_evict is not None:
                    self.on_evict(k, artifact)
                artifact.close()
                self.stats.evictions += 1
                evicted += 1
            return evicted

    def _shrink(self) -> None:
        # never evict below one entry: the key just inserted must
        # survive its own insertion even if it alone exceeds max_bytes
        while len(self._artifacts) > 1 and (
            len(self._artifacts) > self.max_entries
            or (
                self.max_bytes is not None
                and self._total_bytes() > self.max_bytes
            )
        ):
            evicted_key, evicted = self._artifacts.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted)
            evicted.close()
            self.stats.evictions += 1

    def _total_bytes(self) -> int:
        return sum(a.nbytes for a in self._artifacts.values())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def peek(self, key: ArtifactKey) -> Artifact | None:
        """The resident artifact for ``key``, or ``None`` — never
        builds and never counts as a hit/miss.  The service's
        per-artifact ``stats`` op uses this so an observability query
        cannot trigger (or wait on) an expensive artifact build."""
        with self._lock:
            return self._artifacts.get(key)

    def keys(self) -> list[ArtifactKey]:
        with self._lock:
            return list(self._artifacts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts)

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._artifacts),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "total_bytes": self._total_bytes(),
                "stats": self.stats.as_dict(),
                "artifacts": [
                    artifact.describe()
                    for artifact in self._artifacts.values()
                ],
            }

    def close(self) -> None:
        with self._lock:
            for artifact in self._artifacts.values():
                artifact.close()
            self._artifacts.clear()
