"""Sharded serving: an asyncio front end over per-shard worker processes.

PR 8's saturation bench pinned the single-process ceiling: the GIL
serializes the NumPy-adjacent Python in the query path, so past the
knee extra clients buy queueing, not throughput.  This module is the
scale-out answer that keeps every hard-won serial property intact:

* **Topology** — one :class:`ShardedFrontend` listener (asyncio, v1
  JSON-lines, same envelope as :mod:`repro.service.server`) routes
  each request to one of N worker *processes*.  Each worker runs
  today's :class:`~repro.service.server.ServiceServer` +
  :class:`~repro.service.server.BlockerService` core unchanged, so
  per-artifact coalescing, single-flight builds and LRU byte
  accounting stay shard-local — and answers stay bit-identical to the
  single-process serial server.
* **Sharding** — :func:`shard_for` hashes the *graph name* (stable
  md5, no process-seeded randomization) onto a worker index, so one
  artifact is only ever resident in one process and a graph's clients
  always coalesce against the same executor.
* **Artifacts** — workers share nothing in memory; with a common
  ``cache_dir`` they rehydrate pools and sketch views from the PR 7
  mmap artifacts (COW ``np.load``), so a restarted shard re-serves
  its graphs without paying cold builds.
* **Admission** — the front end bounds *global* in-flight routed
  queries (``--max-pending`` across shards) and sheds beyond it with
  the existing ``overloaded`` code; per-artifact executor bounds keep
  working inside each worker.
* **Supervision** — a crashed worker fails its in-flight requests
  (shed-counted, ``reason="worker_crash"``) and is restarted on a
  fresh port; ``/healthz`` reports ``workers: {total, alive}`` and
  goes 503 while any shard is down.
* **Drain** — shutdown stops accepting, answers new requests with the
  ``draining`` code, flushes in-flight work, persists the access log,
  then stops the workers.  On the next start the hottest keys from
  that log are prewarmed before traffic hits them.
* **Observability** — worker expositions merge into one scrape page
  with a ``worker`` label (:func:`repro.obs.merge_expositions`),
  ``stats``/``profile`` fan out and merge, and traced requests gain a
  root-level ``frontend.route`` span.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from ..engine.parallel import _start_method as _mp_start_method
from ..obs import (
    EventLog,
    install_build_info,
    merge_expositions,
    MetricsRegistry,
    NULL_LOG,
)
from .server import DEFAULTS, PROTOCOL_VERSION

__all__ = [
    "ShardedFrontend",
    "WorkerHandle",
    "WorkerSpec",
    "shard_for",
]

ACCESS_LOG_VERSION = 1
"""Format version of the persisted access-log JSON."""

_ROUTED_OPS = ("warm", "spread", "block", "update")
"""Ops owned by exactly one shard (their graph's) and counted against
the front end's global admission bound.  ``update`` routes like a
query: the owning shard's executor serialises the delta against that
graph's in-flight work, and the shared ``cache_dir`` journal makes the
mutation survive that worker's restart."""


def shard_for(graph: str, workers: int) -> int:
    """The worker index owning ``graph``.

    Stable across processes and Python versions (md5 of the name, not
    the seeded builtin ``hash``), so clients, benches and a restarted
    front end always agree which shard holds which artifact.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    digest = hashlib.md5(graph.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild its service.

    Frozen and picklable: under ``forkserver``/``spawn`` this is the
    only state that crosses the process boundary — workers rebuild
    registries and caches from it, they never inherit live objects.
    """

    scale: float = 1.0
    edge_lists: tuple[tuple[str, str], ...] = ()
    aliases: tuple[tuple[str, str], ...] = ()
    """``(name, dataset_key)`` pairs registered on top of the default
    registry — how the bench spreads one dataset across shards."""
    cache_entries: int = 8
    cache_bytes: int | None = None
    cache_dir: str | None = None
    build_workers: int | None = None
    max_pending: int | None = None
    slow_ms: float | None = None
    profile_hz: float | None = None
    slo_specs: tuple[str, ...] = ()
    log_json: bool = False
    defaults: tuple[tuple[str, object], ...] = ()


def _build_service(index: int, spec: WorkerSpec):
    """One worker's :class:`BlockerService` from its picklable spec."""
    from ..obs import parse_slo
    from .cache import ArtifactCache
    from .registry import default_registry
    from .server import BlockerService

    registry = default_registry(scale=spec.scale)
    for name, path in spec.edge_lists:
        registry.register_edge_list(name, path)
    for name, key in spec.aliases:
        registry.register_dataset(name, key, scale=spec.scale)
    cache = ArtifactCache(
        registry,
        max_entries=spec.cache_entries,
        max_bytes=spec.cache_bytes,
        cache_dir=spec.cache_dir,
        build_workers=spec.build_workers,
    )
    # a fresh registry per worker: the merged exposition relies on
    # each process reporting only its own series
    metrics = MetricsRegistry()
    service = BlockerService(
        registry=registry,
        cache=cache,
        defaults=dict(spec.defaults) or None,
        metrics=metrics,
        log=EventLog(json_mode=True) if spec.log_json else None,
        slow_ms=spec.slow_ms,
        max_pending=spec.max_pending,
        profile_hz=spec.profile_hz,
        slos=[parse_slo(s) for s in spec.slo_specs] or None,
    )
    install_build_info(metrics, worker=str(index))
    return service


def _worker_main(index: int, spec: WorkerSpec, conn) -> None:
    """Worker-process entry point: serve one shard until shut down.

    Binds an ephemeral port and reports it through ``conn`` once the
    service is ready; the TCP loop then runs until the front end sends
    the ``shutdown`` op (graceful) or the process is terminated.
    """
    from .server import ServiceServer

    try:
        service = _build_service(index, spec)
        server = ServiceServer(("127.0.0.1", 0), service)
    except BaseException as error:  # noqa: BLE001 - report, then die
        try:
            conn.send({"error": f"{type(error).__name__}: {error}"})
        finally:
            conn.close()
        raise
    conn.send({"port": server.server_address[1], "pid": os.getpid()})
    conn.close()
    try:
        server.serve_forever()
    finally:
        server.server_close()


class WorkerHandle:
    """One shard worker: process, port, restart accounting."""

    def __init__(self, index: int, spec: WorkerSpec) -> None:
        self.index = index
        self.spec = spec
        self.process: multiprocessing.process.BaseProcess | None = None
        self.port: int | None = None
        self.pid: int | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def start(self, timeout: float = 120.0) -> None:
        """Spawn the worker and wait for its ready handshake.

        The start method follows :mod:`repro.engine.parallel`'s
        policy: ``fork`` only while the parent is single-threaded
        (cheap, COW), ``forkserver``/``spawn`` otherwise — the front
        end restarts workers from supervisor threads, where forking
        could snapshot another thread's held lock.
        """
        ctx = multiprocessing.get_context(_mp_start_method())
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(self.index, self.spec, send),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        process.start()
        send.close()
        if not recv.poll(timeout):
            process.terminate()
            process.join(5.0)
            raise RuntimeError(
                f"shard worker {self.index} did not report ready "
                f"within {timeout:g}s"
            )
        ready = recv.recv()
        recv.close()
        if "error" in ready:
            process.join(5.0)
            raise RuntimeError(
                f"shard worker {self.index} failed to start: "
                f"{ready['error']}"
            )
        self.process = process
        self.port = ready["port"]
        self.pid = ready["pid"]

    def restart(self, timeout: float = 120.0) -> None:
        if self.process is not None:
            self.process.join(0.1)
        self.restarts += 1
        self.start(timeout=timeout)

    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Stop the worker: polite shutdown op first, then terminate."""
        process = self.process
        if process is None:
            return
        if graceful and process.is_alive() and self.port is not None:
            try:
                with socket.create_connection(
                    ("127.0.0.1", self.port), timeout=2.0
                ) as sock:
                    sock.sendall(b'{"op":"shutdown"}\n')
                    sock.makefile("rb").readline()
            except OSError:
                pass
        process.join(timeout)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(5.0)
        self.process = None

    def describe(self) -> dict:
        return {
            "index": self.index,
            "alive": self.alive,
            "pid": self.pid,
            "port": self.port,
            "restarts": self.restarts,
        }


class _WorkerPool:
    """A small pool of pipelined asyncio connections to one worker.

    Each pooled connection carries one request at a time (the v1
    protocol answers in order, so interleaving writers would cross
    replies); the semaphore bounds how many worker handler threads one
    front end can pin.
    """

    def __init__(self, port: int, limit: int = 64) -> None:
        self.port = port
        self.closed = False
        self._sem = asyncio.Semaphore(limit)
        self._free: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        self._free = []

    async def roundtrip(self, line: bytes) -> bytes:
        async with self._sem:
            conn = self._free.pop() if self._free else None
            if conn is None:
                conn = await asyncio.open_connection("127.0.0.1", self.port)
            reader, writer = conn
            try:
                writer.write(line)
                await writer.drain()
                reply = await reader.readline()
                if not reply:
                    raise ConnectionResetError(
                        f"worker on port {self.port} closed the connection"
                    )
            except BaseException:
                writer.close()
                raise
            if self.closed:
                writer.close()
            else:
                self._free.append(conn)
            return reply

    def close(self) -> None:
        self.closed = True
        while self._free:
            _, writer = self._free.pop()
            writer.close()


class ShardedFrontend:
    """The two-tier server: asyncio listener + N shard workers.

    ``start()`` spawns the workers, binds the listener and returns
    once both are ready (``address`` carries the bound host/port);
    ``shutdown()`` drains gracefully.  Usable as a context manager.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        worker_spec: WorkerSpec | None = None,
        max_pending: int | None = None,
        access_log: str | os.PathLike | None = None,
        prewarm_limit: int = 8,
        log: EventLog | None = None,
        supervisor_interval: float = 0.25,
        drain_timeout: float = 30.0,
        worker_start_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.host = host
        self.port = port
        self.worker_spec = (
            worker_spec if worker_spec is not None else WorkerSpec()
        )
        self.max_pending = max_pending
        self.access_log = (
            Path(access_log) if access_log is not None else None
        )
        self.prewarm_limit = prewarm_limit
        self.log = log if log is not None else NULL_LOG
        self.supervisor_interval = supervisor_interval
        self.drain_timeout = drain_timeout
        self.worker_start_timeout = worker_start_timeout
        self.defaults = dict(DEFAULTS)
        self.defaults.update(dict(self.worker_spec.defaults))
        self.handles = [
            WorkerHandle(i, self.worker_spec) for i in range(workers)
        ]
        self.address: tuple[str, int] | None = None
        self.draining = False
        # --- frontend-process observability ---
        self.metrics = MetricsRegistry()
        install_build_info(self.metrics, worker="frontend")
        self._m_requests = self.metrics.counter(
            "repro_requests_total",
            "Service requests dispatched, by op",
            labels=("op",),
        )
        self._m_errors = self.metrics.counter(
            "repro_request_errors_total",
            "Service requests answered with ok=false",
        )
        self._m_latency = self.metrics.histogram(
            "repro_request_duration_seconds",
            "Wall-clock request latency through the front end",
            labels=("op",),
        )
        self._m_inflight = self.metrics.gauge(
            "repro_inflight_requests",
            "Routed requests currently in flight to a shard",
        )
        self._m_shed = self.metrics.counter(
            "repro_shed_requests_total",
            "Requests rejected instead of queued, by reason",
            labels=("graph", "reason"),
        )
        self._m_routed = self.metrics.counter(
            "repro_frontend_routed_total",
            "Requests routed to each shard worker",
            labels=("worker",),
        )
        self._m_up = self.metrics.gauge(
            "repro_worker_up",
            "1 while the shard worker process is alive",
            labels=("worker",),
        )
        self._m_restarts = self.metrics.counter(
            "repro_worker_restarts_total",
            "Crashed shard workers restarted by the supervisor",
            labels=("worker",),
        )
        # --- loop plumbing ---
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._pools: dict[int, _WorkerPool] = {}
        self._pending = 0
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._access: dict[tuple, int] = {}
        self._access_lock = threading.Lock()
        self._access_dirty = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedFrontend":
        """Spawn workers, bind the listener, return when ready."""
        try:
            for handle in self.handles:
                handle.start(timeout=self.worker_start_timeout)
                self._pools[handle.index] = _WorkerPool(handle.port)
                self._m_up.labels(str(handle.index)).set(1.0)
        except BaseException:
            self._stop_workers_sync()
            raise
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait(30.0)
        if self._start_error is not None:
            self._stop_workers_sync()
            raise RuntimeError(
                f"front end failed to start: {self._start_error}"
            )
        if self.address is None:
            self._stop_workers_sync()
            raise RuntimeError("front end did not bind within 30s")
        self.log.event(
            "frontend_listening",
            host=self.address[0],
            port=self.address[1],
            workers=len(self.handles),
        )
        return self

    def __enter__(self) -> "ShardedFrontend":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain and stop from any thread (idempotent)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._begin_drain)
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._stop_workers_sync()

    def serve_forever(self) -> None:
        """Block until the front end stops (CLI foreground mode)."""
        thread = self._thread
        if thread is None:
            raise RuntimeError("start() the front end first")
        try:
            while thread.is_alive():
                thread.join(0.5)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            self.shutdown()

    def _stop_workers_sync(self) -> None:
        for handle in self.handles:
            handle.stop(graceful=True)
            self._m_up.labels(str(handle.index)).set(0.0)

    # ------------------------------------------------------------------
    # health / stats surfaces (called from other threads)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` payload: per-worker liveness.

        ``status`` is ``"ok"`` only while every shard is alive and the
        front end is accepting — anything else turns the HTTP probe
        into a 503 so load balancers stop routing here.
        """
        alive = sum(1 for h in self.handles if h.alive)
        total = len(self.handles)
        if self.draining:
            status = "draining"
        elif alive < total:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "workers": {"total": total, "alive": alive},
        }

    def render_metrics(self, timeout: float = 10.0) -> str:
        """The aggregated exposition page (for ``--metrics-port``).

        Synchronous wrapper over the async aggregation — safe to call
        from the HTTP listener's handler threads; degrades to the
        front end's own registry if the loop is gone.
        """
        loop = self._loop
        if loop is None or not loop.is_running():
            return self.metrics.render()
        future = asyncio.run_coroutine_threadsafe(
            self._aggregate_metrics(), loop
        )
        try:
            return future.result(timeout)
        except Exception:  # noqa: BLE001 - degrade, don't fail scrape
            return self.metrics.render()

    # ------------------------------------------------------------------
    # event loop body
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surface once
            self._start_error = error
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.address = server.sockets[0].getsockname()[:2]
        supervisor = asyncio.create_task(self._supervise())
        prewarmer = asyncio.create_task(self._prewarm())
        self._started.set()
        await self._stop_event.wait()
        # --- graceful drain ---
        server.close()
        await server.wait_closed()
        supervisor.cancel()
        prewarmer.cancel()
        deadline = time.monotonic() + self.drain_timeout
        while self._pending > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self._flush_access_log()
        await asyncio.get_running_loop().run_in_executor(
            None, self._stop_workers_sync
        )
        self.log.event("frontend_stopped", drained=self._pending == 0)

    def _begin_drain(self) -> None:
        self.draining = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def _supervise(self) -> None:
        """Watch worker liveness; restart crashed shards."""
        while True:
            await asyncio.sleep(self.supervisor_interval)
            for handle in self.handles:
                alive = handle.alive
                self._m_up.labels(str(handle.index)).set(
                    1.0 if alive else 0.0
                )
                if alive or self.draining:
                    continue
                self.log.event(
                    "worker_crashed",
                    worker=handle.index,
                    restarts=handle.restarts,
                )
                self._pools[handle.index].close()
                try:
                    await asyncio.get_running_loop().run_in_executor(
                        None, handle.restart
                    )
                except Exception as error:  # noqa: BLE001 - keep serving
                    self.log.event(
                        "worker_restart_failed",
                        worker=handle.index,
                        error=str(error),
                    )
                    continue
                self._pools[handle.index] = _WorkerPool(handle.port)
                self._m_restarts.labels(str(handle.index)).inc()
                self._m_up.labels(str(handle.index)).set(1.0)
                self.log.event(
                    "worker_restarted",
                    worker=handle.index,
                    pid=handle.pid,
                    port=handle.port,
                )

    async def _prewarm(self) -> None:
        """Warm the hottest artifact keys from the persisted log."""
        keys = self._load_access_log()
        if not keys:
            return
        for entry in keys[: self.prewarm_limit]:
            request = {"op": "warm", **entry}
            request.pop("count", None)
            shard = shard_for(
                str(request.get("graph", self.defaults["graph"])),
                len(self.handles),
            )
            try:
                reply = await self._roundtrip(shard, _encode(request))
                ok = bool(json.loads(reply).get("ok"))
            except (OSError, ValueError):
                ok = False
            self.log.event(
                "prewarm",
                graph=request.get("graph"),
                worker=shard,
                ok=ok,
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                try:
                    response, close_after = await self._handle_line(line)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - keep conn
                    response, close_after = (
                        _front_error(
                            "internal",
                            f"{type(error).__name__}: {error}",
                            None,
                        ),
                        False,
                    )
                writer.write(_encode_response(response))
                await writer.drain()
                if close_after:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def _handle_line(self, line: bytes) -> tuple[dict, bool]:
        """One raw request line -> (response dict, close-connection)."""
        started = time.monotonic()
        op = "invalid"
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return (
                self._finish(
                    op,
                    started,
                    _front_error("bad_params", f"bad JSON: {error}", None),
                ),
                False,
            )
        if not isinstance(request, dict):
            return (
                self._finish(
                    op,
                    started,
                    _front_error(
                        "bad_params", "request must be a JSON object",
                        None,
                    ),
                ),
                False,
            )
        op = request.get("op") if isinstance(request.get("op"), str) else (
            "invalid"
        )
        if self.draining and op != "ping":
            response = _front_error(
                "draining",
                "front end is draining before shutdown; reconnect and "
                "retry",
                op if op != "invalid" else None,
            )
            _stamp(response, request)
            return self._finish(op, started, response), False
        if op == "shutdown":
            response = {
                "ok": True,
                "v": PROTOCOL_VERSION,
                "op": "shutdown",
                "result": "bye",
            }
            _stamp(response, request)
            self.log.event("shutdown", op="shutdown")
            self._begin_drain()
            return self._finish(op, started, response), True
        if op == "ping":
            response = {
                "ok": True,
                "v": PROTOCOL_VERSION,
                "op": "ping",
                "result": "pong",
            }
            _stamp(response, request)
            return self._finish(op, started, response), False
        if op == "metrics":
            text = await self._aggregate_metrics()
            response = {
                "ok": True,
                "v": PROTOCOL_VERSION,
                "op": "metrics",
                "result": text,
            }
            _stamp(response, request)
            return self._finish(op, started, response), False
        if op == "stats" and not _is_keyed_stats(request):
            result = await self._merged_stats()
            response = {
                "ok": True,
                "v": PROTOCOL_VERSION,
                "op": "stats",
                "result": result,
            }
            _stamp(response, request)
            return self._finish(op, started, response), False
        if op == "profile":
            result = await self._merged_profile(request)
            if isinstance(result, dict) and result.get("_error"):
                response = _front_error(
                    result.get("_code", "internal"),
                    str(result["_error"]),
                    "profile",
                )
            else:
                response = {
                    "ok": True,
                    "v": PROTOCOL_VERSION,
                    "op": "profile",
                    "result": result,
                }
            _stamp(response, request)
            return self._finish(op, started, response), False
        # everything else — the per-graph query ops, keyed stats,
        # graphs, and unknown verbs (the worker's unknown_op error
        # lists the canonical op set) — proxies to one shard
        response = await self._route(request, line, started)
        return response, False

    async def _route(
        self, request: dict, line: bytes, started: float
    ) -> dict:
        op = request.get("op")
        graph = request.get("graph", self.defaults["graph"])
        if not isinstance(graph, str) or not graph:
            graph = str(graph)
        shard = shard_for(graph, len(self.handles))
        admit = op in _ROUTED_OPS
        if (
            admit
            and self.max_pending is not None
            and self._pending >= self.max_pending
        ):
            self._m_shed.labels(graph, "frontend_max_pending").inc()
            response = _front_error(
                "overloaded",
                f"front end has {self._pending} queries in flight "
                f"(max_pending={self.max_pending}); retry later",
                op,
            )
            _stamp(response, request)
            return self._finish(op, started, response)
        if admit:
            self._pending += 1
            self._m_inflight.set(float(self._pending))
        self._m_routed.labels(str(shard)).inc()
        try:
            reply = await self._roundtrip(shard, line)
            response = json.loads(reply)
        except (OSError, ValueError) as error:
            self._m_shed.labels(graph, "worker_crash").inc()
            self.log.event(
                "worker_crash_inflight",
                worker=shard,
                op=op,
                error=str(error),
            )
            response = _front_error(
                "internal",
                f"shard {shard} worker failed mid-request "
                f"({type(error).__name__}); it will be restarted — "
                "retry",
                op,
            )
            _stamp(response, request)
        finally:
            if admit:
                self._pending -= 1
                self._m_inflight.set(float(self._pending))
        if admit and response.get("ok"):
            self._record_access(request)
        route_ms = (time.monotonic() - started) * 1000.0
        trace = response.get("trace")
        if isinstance(trace, dict):
            trace.setdefault("spans", []).append(
                {"name": "frontend.route", "duration_ms": round(route_ms, 3)}
            )
        return self._finish(op, started, response, routed=True)

    def _finish(
        self,
        op,
        started: float,
        response: dict,
        routed: bool = False,
    ) -> dict:
        label = op if isinstance(op, str) and op else "invalid"
        self._m_requests.labels(label).inc()
        self._m_latency.labels(label).observe(time.monotonic() - started)
        if not response.get("ok"):
            self._m_errors.inc()
        return response

    async def _roundtrip(self, shard: int, line: bytes) -> bytes:
        """One request line to one shard, via its connection pool.

        A stale pooled connection (the worker restarted since it was
        pooled) gets one retry against the *current* pool — which the
        supervisor swaps on restart — as long as the worker is alive.
        """
        if not line.endswith(b"\n"):
            line += b"\n"
        try:
            return await self._pools[shard].roundtrip(line)
        except (ConnectionError, OSError):
            handle = self.handles[shard]
            if not handle.alive:
                raise
            return await self._pools[shard].roundtrip(line)

    # ------------------------------------------------------------------
    # fan-out ops
    # ------------------------------------------------------------------
    async def _fanout(self, request: dict) -> dict[int, dict]:
        """Send ``request`` to every worker; map index -> outcome.

        Each outcome is ``{"result": ...}`` or ``{"error": ...}`` — a
        dead shard degrades its own entry, never the whole op.
        """
        line = _encode(request)
        indices = list(range(len(self.handles)))
        replies = await asyncio.gather(
            *(self._roundtrip(i, line) for i in indices),
            return_exceptions=True,
        )
        out: dict[int, dict] = {}
        for index, reply in zip(indices, replies):
            if isinstance(reply, BaseException):
                out[index] = {"error": str(reply)}
                continue
            try:
                envelope = json.loads(reply)
            except ValueError as error:  # pragma: no cover - defensive
                out[index] = {"error": f"bad worker reply: {error}"}
                continue
            if envelope.get("ok"):
                out[index] = {"result": envelope.get("result")}
            else:
                error = envelope.get("error")
                message = (
                    error.get("message") if isinstance(error, dict)
                    else str(error)
                )
                code = (
                    error.get("code") if isinstance(error, dict) else None
                )
                out[index] = {"error": message, "code": code}
        return out

    async def _aggregate_metrics(self) -> str:
        """One exposition page: the front end plus every live shard,
        each sample tagged with its ``worker`` label."""
        outcomes = await self._fanout({"op": "metrics"})
        parts: list[tuple[str, str]] = [
            ("frontend", self.metrics.render())
        ]
        for index in sorted(outcomes):
            result = outcomes[index].get("result")
            if isinstance(result, str):
                parts.append((str(index), result))
        return merge_expositions(parts, label="worker")

    async def _merged_stats(self) -> dict:
        """The fleet-wide ``stats`` result.

        ``service`` sums the per-worker counters (``max_batch`` is a
        max), ``workers`` keeps each shard's full report (or its
        error), and ``frontend`` describes the tier the workers can't
        see: admission, drain state, supervision and the access log.
        """
        outcomes = await self._fanout({"op": "stats"})
        service = {
            "requests": {},
            "errors": 0,
            "batches": 0,
            "batched_queries": 0,
            "max_batch": 0,
        }
        workers: dict[str, object] = {}
        for index in sorted(outcomes):
            outcome = outcomes[index]
            workers[str(index)] = outcome.get("result", outcome)
            result = outcome.get("result")
            if not isinstance(result, dict):
                continue
            stats = result.get("service")
            if not isinstance(stats, dict):
                continue
            for op, count in (stats.get("requests") or {}).items():
                service["requests"][op] = (
                    service["requests"].get(op, 0) + count
                )
            for key in ("errors", "batches", "batched_queries"):
                service[key] += stats.get(key, 0)
            service["max_batch"] = max(
                service["max_batch"], stats.get("max_batch", 0)
            )
        with self._access_lock:
            access_entries = len(self._access)
        return {
            "service": service,
            "workers": workers,
            "frontend": {
                "draining": self.draining,
                "pending": self._pending,
                "max_pending": self.max_pending,
                "workers": {
                    "total": len(self.handles),
                    "alive": sum(1 for h in self.handles if h.alive),
                    "restarts": sum(h.restarts for h in self.handles),
                    "detail": [h.describe() for h in self.handles],
                },
                "access_log": {
                    "entries": access_entries,
                    "path": (
                        str(self.access_log)
                        if self.access_log is not None
                        else None
                    ),
                },
            },
        }

    async def _merged_profile(self, request: dict) -> dict:
        """Fan the ``profile`` op out; merge the per-worker replies.

        ``collapsed`` dumps concatenate with a ``workerN;`` stack
        prefix (flamegraphs then show the shard split as the root
        frame); counters (``samples``) sum.  A worker that rejects the
        action (e.g. ``start`` when already running) surfaces as the
        op's error when *every* worker rejected, else per-worker.
        """
        payload = {
            k: v for k, v in request.items()
            if k not in ("id", "trace", "trace_id")
        }
        outcomes = await self._fanout(payload)
        merged: dict[str, object] = {"workers": {}}
        collapsed_parts: list[str] = []
        samples = 0
        errors = 0
        active = False
        first_error: tuple[str, str | None] | None = None
        for index in sorted(outcomes):
            outcome = outcomes[index]
            merged["workers"][str(index)] = outcome.get("result", outcome)
            if "error" in outcome:
                errors += 1
                if first_error is None:
                    first_error = (
                        str(outcome["error"]),
                        outcome.get("code"),
                    )
                continue
            result = outcome.get("result")
            if not isinstance(result, dict):
                continue
            active = active or bool(result.get("active"))
            samples += int(result.get("samples", 0) or 0)
            collapsed = result.get("collapsed")
            if isinstance(collapsed, str) and collapsed:
                for stack_line in collapsed.splitlines():
                    collapsed_parts.append(f"worker{index};{stack_line}")
        if errors == len(outcomes) and first_error is not None:
            return {
                "_error": first_error[0],
                "_code": first_error[1] or "internal",
            }
        merged["active"] = active
        if request.get("action") == "dump":
            merged["collapsed"] = "\n".join(collapsed_parts)
        if samples:
            merged["samples"] = samples
        return merged

    # ------------------------------------------------------------------
    # access log
    # ------------------------------------------------------------------
    def _record_access(self, request: dict) -> None:
        key = (
            str(request.get("graph", self.defaults["graph"])),
            str(request.get("model", self.defaults["model"])),
            request.get("theta", self.defaults["theta"]),
            request.get("seed", self.defaults["seed"]),
            str(request.get("layout", "arena")),
        )
        with self._access_lock:
            self._access[key] = self._access.get(key, 0) + 1
            self._access_dirty += 1
            dirty = self._access_dirty
        if self.access_log is not None and dirty >= 128:
            self._flush_access_log()

    def _flush_access_log(self) -> None:
        if self.access_log is None:
            return
        with self._access_lock:
            entries = [
                {
                    "graph": graph,
                    "model": model,
                    "theta": theta,
                    "seed": seed,
                    "layout": layout,
                    "count": count,
                }
                for (graph, model, theta, seed, layout), count in sorted(
                    self._access.items(),
                    key=lambda item: -item[1],
                )
            ]
            self._access_dirty = 0
        payload = {"v": ACCESS_LOG_VERSION, "keys": entries}
        tmp = self.access_log.with_suffix(
            self.access_log.suffix + ".tmp"
        )
        try:
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(payload, indent=1), encoding="utf-8"
            )
            tmp.replace(self.access_log)
        except OSError as error:  # pragma: no cover - disk trouble
            self.log.event("access_log_write_failed", error=str(error))

    def _load_access_log(self) -> list[dict]:
        if self.access_log is None or not self.access_log.exists():
            return []
        try:
            payload = json.loads(
                self.access_log.read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as error:
            self.log.event("access_log_read_failed", error=str(error))
            return []
        if (
            not isinstance(payload, dict)
            or payload.get("v") != ACCESS_LOG_VERSION
        ):
            return []
        keys = payload.get("keys")
        out = []
        for entry in keys if isinstance(keys, list) else []:
            if isinstance(entry, dict) and isinstance(
                entry.get("graph"), str
            ):
                out.append(entry)
        return out


# ----------------------------------------------------------------------
# envelope helpers
# ----------------------------------------------------------------------
def _front_error(code: str, message: str, op: str | None) -> dict:
    return {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message, "op": op},
    }


def _stamp(response: dict, request: dict) -> None:
    """Echo ``id`` and carry a trace id on frontend-built envelopes,
    mirroring the worker envelope shape."""
    if "id" in request:
        response["id"] = request["id"]
    trace_id = request.get("trace_id")
    if not (isinstance(trace_id, str) and trace_id.strip()):
        trace_id = uuid.uuid4().hex[:16]
    else:
        trace_id = trace_id.strip()[:128]
    response["trace_id"] = trace_id
    if request.get("trace") and "trace" not in response:
        response["trace"] = {"trace_id": trace_id, "spans": []}


def _is_keyed_stats(request: dict) -> bool:
    return bool(
        request.get("artifact")
        or any(
            field in request
            for field in ("graph", "model", "theta", "seed")
        )
    )


def _encode(request: dict) -> bytes:
    return json.dumps(request, separators=(",", ":")).encode() + b"\n"


def _encode_response(response: dict) -> bytes:
    return json.dumps(response, separators=(",", ":")).encode() + b"\n"
