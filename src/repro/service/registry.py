"""Named-graph registry: which graphs the service can serve.

The serving layer never receives a graph object over the wire — every
request names its graph, and the registry resolves that name to a
loaded :class:`~repro.graph.DiGraph`.  Three kinds of entries:

* the paper's Figure 1 **toy** graph (always registered — it is the
  smoke-test and walkthrough graph);
* the synthetic **dataset stand-ins** of :mod:`repro.datasets`, lazily
  built at a configurable scale;
* **edge-list files** (SNAP format, optionally gzip-compressed) loaded
  through :func:`repro.graph.io.read_edge_list`.

Loading is lazy and memoised: a graph is built on first use and shared
by every artifact that references it afterwards (the registry hands
out the *raw* graph; model-probability assignment copies it, see
:mod:`repro.service.cache`).  All methods are thread-safe — the server
resolves names from many request threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..datasets import DATASETS, figure1_graph, load_dataset
from ..graph import DiGraph
from ..graph.io import read_edge_list

__all__ = ["GraphEntry", "GraphRegistry", "default_registry"]


@dataclass(frozen=True)
class GraphEntry:
    """One registered graph: a name bound to a lazy loader."""

    name: str
    loader: Callable[[], DiGraph]
    description: str = ""
    source: str = "custom"
    """Provenance tag: ``builtin`` / ``dataset`` / ``edge-list`` /
    ``custom`` — surfaced by the ``graphs`` request."""


class GraphRegistry:
    """Thread-safe name -> graph resolution with lazy memoisation."""

    def __init__(self) -> None:
        self._entries: dict[str, GraphEntry] = {}
        self._graphs: dict[str, DiGraph] = {}
        self._lock = threading.RLock()
        self._loading: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        loader: Callable[[], DiGraph],
        description: str = "",
        source: str = "custom",
    ) -> None:
        """Bind ``name`` to a zero-argument graph loader."""
        if not name:
            raise ValueError("graph name must be non-empty")
        with self._lock:
            if name in self._entries:
                raise ValueError(f"graph {name!r} is already registered")
            self._entries[name] = GraphEntry(
                name, loader, description, source
            )

    def register_dataset(
        self, name: str, key: str, scale: float = 1.0
    ) -> None:
        """Register a :mod:`repro.datasets` stand-in under ``name``."""
        info = DATASETS.get(key)
        description = info.description if info is not None else key
        self.register(
            name,
            lambda: load_dataset(key, scale=scale),
            description=f"{description} (scale={scale:g})",
            source="dataset",
        )

    def register_edge_list(
        self,
        name: str,
        path: str | Path,
        directed: bool = True,
        default_probability: float = 1.0,
    ) -> None:
        """Register a SNAP-style edge-list file (``.gz`` accepted)."""
        path = Path(path)

        def load() -> DiGraph:
            graph, _ = read_edge_list(
                path, directed=directed,
                default_probability=default_probability,
            )
            return graph

        self.register(
            name, load, description=str(path), source="edge-list"
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def get(self, name: str) -> DiGraph:
        """The graph registered under ``name``, loading it on first use.

        Loads run outside the registry-wide lock (behind a per-name
        single-flight lock), so one slow edge-list parse never stalls
        ``describe()``/``names()`` or loads of other graphs.
        """
        with self._lock:
            graph = self._graphs.get(name)
            if graph is not None:
                return graph
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(
                    f"unknown graph {name!r}; registered: "
                    + (", ".join(sorted(self._entries)) or "(none)")
                )
            load_lock = self._loading.setdefault(name, threading.Lock())
        with load_lock:
            with self._lock:
                graph = self._graphs.get(name)
                if graph is not None:  # loaded by the flight we joined
                    return graph
            graph = entry.loader()
            with self._lock:
                self._graphs[name] = graph
                self._loading.pop(name, None)
            return graph

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def describe(self) -> list[dict[str, object]]:
        """One record per entry for the ``graphs`` request.

        ``n``/``m`` are reported only for graphs that have already been
        loaded — describing must never force a load (listing graphs on
        a server with eight lazy stand-ins should stay instant).
        """
        with self._lock:
            records = []
            for name in sorted(self._entries):
                entry = self._entries[name]
                graph = self._graphs.get(name)
                record: dict[str, object] = {
                    "name": name,
                    "source": entry.source,
                    "description": entry.description,
                    "loaded": graph is not None,
                }
                if graph is not None:
                    record["n"] = graph.n
                    record["m"] = graph.m
                records.append(record)
            return records


def default_registry(scale: float = 1.0) -> GraphRegistry:
    """The out-of-the-box registry: toy graph + all dataset stand-ins."""
    registry = GraphRegistry()
    registry.register(
        "toy",
        figure1_graph,
        description="Figure 1 toy graph (9 vertices)",
        source="builtin",
    )
    for key in DATASETS:
        registry.register_dataset(key, key, scale=scale)
    return registry
